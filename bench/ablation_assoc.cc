/**
 * @file
 * Section III-C ablation — associativity: 1-way (direct-mapped) to
 * 8-way for the workloads the paper highlights (gcc's lukewarm blocks
 * gain the most from associativity; xalancbmk relies on locking
 * instead).  The paper adopts 4-way: 1->2 removes many conflicts,
 * 2->4 still helps, beyond that returns diminish.
 */

#include <cstdio>
#include <vector>

#include "sim/experiment.hh"
#include "trace/profiles.hh"

using namespace silc;
using namespace silc::sim;

int
main()
{
    ExperimentOptions opts = ExperimentOptions::fromEnv();
    ExperimentRunner runner(opts);

    const std::vector<uint32_t> ways = {1, 2, 4, 8};
    const std::vector<std::string> workloads = {
        "xalanc", "gcc", "omnet", "mcf", "milc", "lbm",
    };

    std::printf("=== Associativity ablation (speedup over no-NM) ===\n\n");
    std::vector<std::string> columns;
    for (uint32_t w : ways)
        columns.push_back(std::to_string(w) + "-way");
    printTableHeader("bench", columns);

    std::vector<std::vector<double>> per_way(ways.size());
    for (const auto &workload : workloads) {
        std::vector<double> row;
        for (size_t i = 0; i < ways.size(); ++i) {
            SystemConfig cfg =
                makeConfig(workload, PolicyKind::SilcFm, opts);
            cfg.silc.associativity = ways[i];
            SimResult r = runner.runConfig(cfg);
            const double s = runner.speedup(r);
            per_way[i].push_back(s);
            row.push_back(s);
        }
        printTableRow(workload, row);
        std::fflush(stdout);
    }
    printTableRule(columns.size());
    std::vector<double> means;
    for (const auto &col : per_way)
        means.push_back(geomean(col));
    printTableRow("geomean", means);
    std::printf("\n(paper adopts 4-way: most of the conflict removal "
                "comes by 4 ways)\n");
    return 0;
}
