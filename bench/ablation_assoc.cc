/**
 * @file
 * Section III-C ablation — associativity: 1-way (direct-mapped) to
 * 8-way for the workloads the paper highlights (gcc's lukewarm blocks
 * gain the most from associativity; xalancbmk relies on locking
 * instead).  The paper adopts 4-way: 1->2 removes many conflicts,
 * 2->4 still helps, beyond that returns diminish.
 */

#include <cstdio>
#include <vector>

#include "sim/parallel.hh"
#include "sim/result_writer.hh"
#include "trace/profiles.hh"

using namespace silc;
using namespace silc::sim;

int
main(int argc, char **argv)
{
    ExperimentOptions opts = ExperimentOptions::fromEnv();
    ParallelRunner runner(opts);
    runner.setJsonPath(jsonOutputPath(argc, argv));

    const std::vector<uint32_t> ways = {1, 2, 4, 8};
    const std::vector<std::string> workloads = {
        "xalanc", "gcc", "omnet", "mcf", "milc", "lbm",
    };

    std::printf("=== Associativity ablation (speedup over no-NM) ===\n\n");
    std::vector<std::string> columns;
    for (uint32_t w : ways)
        columns.push_back(std::to_string(w) + "-way");
    printTableHeader("bench", columns);

    std::vector<std::vector<ParallelRunner::Job>> jobs(workloads.size());
    for (size_t w = 0; w < workloads.size(); ++w) {
        runner.baseline(workloads[w]);
        for (uint32_t ways_i : ways) {
            SystemConfig cfg =
                makeConfig(workloads[w], PolicyKind::SilcFm, opts);
            cfg.silc.associativity = ways_i;
            jobs[w].push_back(runner.submitConfig(cfg));
        }
    }

    std::vector<std::vector<double>> per_way(ways.size());
    for (size_t w = 0; w < workloads.size(); ++w) {
        std::vector<double> row;
        for (size_t i = 0; i < ways.size(); ++i) {
            const double s = runner.speedup(jobs[w][i].get());
            per_way[i].push_back(s);
            row.push_back(s);
        }
        printTableRow(workloads[w], row);
        std::fflush(stdout);
    }
    printTableRule(columns.size());
    std::vector<double> means;
    for (const auto &col : per_way)
        means.push_back(geomean(col));
    printTableRow("geomean", means);
    std::printf("\n(paper adopts 4-way: most of the conflict removal "
                "comes by 4 ways)\n");
    runner.printFooter();
    return 0;
}
