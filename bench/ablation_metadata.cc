/**
 * @file
 * Metadata-path ablation (Sections III-D and III-F): how much of
 * SILC-FM's performance depends on the remap-metadata machinery —
 * the dedicated metadata channel, the way/location predictor, and the
 * history-driven batch fetch — versus an idealised free-metadata
 * configuration.
 */

#include <cstdio>
#include <vector>

#include "sim/parallel.hh"
#include "sim/result_writer.hh"
#include "trace/profiles.hh"

using namespace silc;
using namespace silc::sim;

namespace {

struct Variant
{
    const char *label;
    bool dedicated_channel;
    bool predictor;
    bool history;
    bool model_metadata;
};

constexpr Variant kVariants[] = {
    {"full", true, true, true, true},
    {"no-dedch", false, true, true, true},
    {"no-pred", true, false, true, true},
    {"no-hist", true, true, false, true},
    {"ideal-md", true, true, true, false},
};

} // namespace

int
main(int argc, char **argv)
{
    ExperimentOptions opts = ExperimentOptions::fromEnv();
    ParallelRunner runner(opts);
    runner.setJsonPath(jsonOutputPath(argc, argv));

    const std::vector<std::string> workloads = {
        "xalanc", "gcc", "omnet", "mcf", "lbm",
    };

    std::printf("=== Metadata-path ablation (speedup over no-NM) ===\n\n");
    std::vector<std::string> columns;
    for (const Variant &v : kVariants)
        columns.push_back(v.label);
    printTableHeader("bench", columns);

    std::vector<std::vector<ParallelRunner::Job>> jobs(workloads.size());
    for (size_t w = 0; w < workloads.size(); ++w) {
        runner.baseline(workloads[w]);
        for (const Variant &v : kVariants) {
            SystemConfig cfg =
                makeConfig(workloads[w], PolicyKind::SilcFm, opts);
            cfg.silc.dedicated_metadata_channel = v.dedicated_channel;
            cfg.silc.enable_predictor = v.predictor;
            cfg.silc.enable_history_fetch = v.history;
            cfg.silc.model_metadata_traffic = v.model_metadata;
            jobs[w].push_back(runner.submitConfig(cfg));
        }
    }

    std::vector<std::vector<double>> per_variant(columns.size());
    for (size_t w = 0; w < workloads.size(); ++w) {
        std::vector<double> row;
        for (size_t i = 0; i < columns.size(); ++i) {
            const double s = runner.speedup(jobs[w][i].get());
            per_variant[i].push_back(s);
            row.push_back(s);
        }
        printTableRow(workloads[w], row);
        std::fflush(stdout);
    }
    printTableRule(columns.size());
    std::vector<double> means;
    for (const auto &col : per_variant)
        means.push_back(geomean(col));
    printTableRow("geomean", means);

    std::printf("\n'ideal-md' bounds what perfect (free) metadata could "
                "buy; 'no-pred' shows the serialization cost the "
                "Section III-F predictor removes.\n");
    runner.printFooter();
    return 0;
}
