/**
 * @file
 * Section IV ablation — the hotness threshold: the paper reports that
 * a threshold of 50 (with 1M-access aging) "works the best".  This
 * scaled system ages every instructions/8 accesses, so the sweep covers
 * the proportional range around the scaled default, plus locking
 * disabled entirely.
 */

#include <cstdio>
#include <vector>

#include "sim/parallel.hh"
#include "sim/result_writer.hh"
#include "trace/profiles.hh"

using namespace silc;
using namespace silc::sim;

int
main(int argc, char **argv)
{
    ExperimentOptions opts = ExperimentOptions::fromEnv();
    ParallelRunner runner(opts);
    runner.setJsonPath(jsonOutputPath(argc, argv));

    const std::vector<uint32_t> thresholds = {0, 4, 8, 12, 24, 48};
    const std::vector<std::string> workloads = {
        "xalanc", "gcc", "mcf", "milc", "lbm",
    };

    std::printf("=== Hot-threshold ablation (speedup over no-NM; 0 = "
                "locking disabled) ===\n\n");
    std::vector<std::string> columns;
    for (uint32_t t : thresholds)
        columns.push_back(t == 0 ? "off" : "t=" + std::to_string(t));
    printTableHeader("bench", columns);

    std::vector<std::vector<ParallelRunner::Job>> jobs(workloads.size());
    for (size_t w = 0; w < workloads.size(); ++w) {
        runner.baseline(workloads[w]);
        for (uint32_t threshold : thresholds) {
            SystemConfig cfg =
                makeConfig(workloads[w], PolicyKind::SilcFm, opts);
            if (threshold == 0) {
                cfg.silc.enable_locking = false;
            } else {
                cfg.silc.hot_threshold = threshold;
            }
            jobs[w].push_back(runner.submitConfig(cfg));
        }
    }

    std::vector<std::vector<double>> per_thresh(thresholds.size());
    for (size_t w = 0; w < workloads.size(); ++w) {
        std::vector<double> row;
        for (size_t i = 0; i < thresholds.size(); ++i) {
            const double s = runner.speedup(jobs[w][i].get());
            per_thresh[i].push_back(s);
            row.push_back(s);
        }
        printTableRow(workloads[w], row);
        std::fflush(stdout);
    }
    printTableRule(columns.size());
    std::vector<double> means;
    for (const auto &col : per_thresh)
        means.push_back(geomean(col));
    printTableRow("geomean", means);
    std::printf("\n(paper: threshold 50 at 1M-access aging; this "
                "system's default is the proportional equivalent)\n");
    runner.printFooter();
    return 0;
}
