# Runs the fig7_comparison bench at tiny scale (SILC_INSTR=20000,
# SILC_CORES=2) under SILC_THREADS=1 and SILC_THREADS=4 and fails unless
# the stdout tables are byte-identical — the determinism contract of the
# parallel experiment harness.  Invoked by ctest via
#   cmake -DBENCH=<fig7 binary> -DWORKDIR=<scratch dir> -P bench_smoke.cmake

foreach(threads 1 4)
    set(out ${WORKDIR}/bench_smoke_t${threads}.out)
    execute_process(
        COMMAND ${CMAKE_COMMAND} -E env
                SILC_INSTR=20000 SILC_CORES=2 SILC_THREADS=${threads}
                ${BENCH}
        OUTPUT_FILE ${out}
        RESULT_VARIABLE rc)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR
                "fig7_comparison failed (rc=${rc}) with "
                "SILC_THREADS=${threads}")
    endif()
endforeach()

execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
            ${WORKDIR}/bench_smoke_t1.out ${WORKDIR}/bench_smoke_t4.out
    RESULT_VARIABLE diff_rc)
if(NOT diff_rc EQUAL 0)
    message(FATAL_ERROR
            "fig7_comparison output differs between SILC_THREADS=1 and "
            "SILC_THREADS=4: compare ${WORKDIR}/bench_smoke_t1.out "
            "against ${WORKDIR}/bench_smoke_t4.out")
endif()
