/**
 * @file
 * Section III-E — bandwidth balancing: sweep the bypass target access
 * rate on a bandwidth-bound workload and show that the optimum sits
 * near 0.8, not 1.0, because the system's NM:FM bandwidth ratio is 4:1
 * (servicing 1/(N+1) of requests from FM uses the idle FM bandwidth).
 */

#include <cstdio>
#include <vector>

#include "sim/parallel.hh"
#include "sim/result_writer.hh"

using namespace silc;
using namespace silc::sim;

int
main(int argc, char **argv)
{
    ExperimentOptions opts = ExperimentOptions::fromEnv();
    ParallelRunner runner(opts);
    runner.setJsonPath(jsonOutputPath(argc, argv));
    const std::string workload = "milc";   // the paper's bypass example

    std::printf("=== Bypass target sweep on %s "
                "(Section III-E; optimum should be near 0.8) ===\n\n",
                workload.c_str());
    std::printf("%8s %10s %12s %12s %12s\n", "target", "speedup",
                "accessrate", "nm demand%", "fm util");

    struct Point
    {
        double target;
        bool enabled;
    };
    const std::vector<Point> points = {
        {0.50, true}, {0.60, true}, {0.70, true},  {0.80, true},
        {0.90, true}, {0.99, true}, {1.00, false},   // disabled = "1.0"
    };

    runner.baseline(workload);
    std::vector<ParallelRunner::Job> jobs;
    for (const Point &pt : points) {
        SystemConfig cfg = makeConfig(workload, PolicyKind::SilcFm, opts);
        cfg.silc.enable_bypass = pt.enabled;
        cfg.silc.bypass_target = pt.target;
        jobs.push_back(runner.submitConfig(cfg));
    }

    double best_speedup = 0.0;
    double best_target = 0.0;
    for (size_t i = 0; i < points.size(); ++i) {
        const Point &pt = points[i];
        SimResult r = jobs[i].get();
        const double s = runner.speedup(r);
        if (s > best_speedup) {
            best_speedup = s;
            best_target = pt.target;
        }
        std::printf("%8.2f %10.3f %12.3f %12.3f %12.3f\n", pt.target, s,
                    r.access_rate, r.nmDemandFraction(),
                    r.fm_bus_utilization);
        std::fflush(stdout);
    }

    std::printf("\nbest target: %.2f (speedup %.3f)\n", best_target,
                best_speedup);
    runner.printFooter();
    return 0;
}
