/**
 * @file
 * The Energy-Delay Product claim (Sections I and V): SILC-FM reduces
 * EDP by ~13% versus CAMEO (the best state-of-the-art) because
 * die-stacked DRAM moves bits far more cheaply than off-chip DDR and
 * SILC-FM both shortens execution and shifts traffic onto NM.
 *
 * Prints per-workload energy and EDP for the baseline, CAMEO and
 * SILC-FM, then the geometric-mean EDP ratio.
 */

#include <cstdio>
#include <vector>

#include "sim/parallel.hh"
#include "sim/result_writer.hh"
#include "trace/profiles.hh"

using namespace silc;
using namespace silc::sim;

int
main(int argc, char **argv)
{
    ExperimentOptions opts = ExperimentOptions::fromEnv();
    ParallelRunner runner(opts);
    runner.setJsonPath(jsonOutputPath(argc, argv));

    std::printf("=== Energy / EDP: SILC-FM vs CAMEO ===\n\n");
    std::printf("%-10s | %10s %12s | %10s %12s | %8s\n", "bench",
                "cam mJ", "cam EDP", "silc mJ", "silc EDP",
                "EDP ratio");

    struct Row
    {
        ParallelRunner::Job cam, silc, base;
    };
    const std::vector<std::string> workloads = trace::profileNames();
    std::vector<Row> jobs;
    for (const auto &workload : workloads) {
        jobs.push_back(Row{
            runner.submit(workload, PolicyKind::Cameo),
            runner.submit(workload, PolicyKind::SilcFm),
            runner.submit(workload, PolicyKind::FmOnly),
        });
    }

    std::vector<double> ratios;
    std::vector<double> silc_vs_base;
    for (size_t w = 0; w < workloads.size(); ++w) {
        const std::string &workload = workloads[w];
        SimResult cam = jobs[w].cam.get();
        SimResult silc_r = jobs[w].silc.get();
        SimResult base = jobs[w].base.get();
        const double ratio = silc_r.edp / cam.edp;
        ratios.push_back(ratio);
        silc_vs_base.push_back(silc_r.edp / base.edp);
        std::printf("%-10s | %10.2f %12.3e | %10.2f %12.3e | %8.3f\n",
                    workload.c_str(), cam.energy_total_j * 1e3, cam.edp,
                    silc_r.energy_total_j * 1e3, silc_r.edp, ratio);
        std::fflush(stdout);
    }

    const double mean_ratio = geomean(ratios);
    std::printf("\ngeomean EDP(SILC-FM)/EDP(CAMEO) = %.3f "
                "(paper: 0.87, i.e. 13%% EDP savings)\n", mean_ratio);
    std::printf("geomean EDP(SILC-FM)/EDP(no-NM)  = %.3f\n",
                geomean(silc_vs_base));
    runner.printFooter();
    return 0;
}
