/**
 * @file
 * Figure 6 — "Performance Improvement Breakdown": the SILC-FM feature
 * ladder per workload.  The stack starts from Random static placement,
 * then adds subblock swapping (direct-mapped, no locking/bypass), then
 * locking, then 4-way associativity, then bypassing.
 *
 * Paper shape to check (Section V-A): swapping alone gives the largest
 * jump (geomean 1.55 in the paper); locking adds ~11% (xalancbmk the
 * poster child), associativity ~8% (gcc), bypassing ~8% (milc), for a
 * total of 1.82.
 */

#include <cstdio>
#include <vector>

#include "sim/parallel.hh"
#include "sim/result_writer.hh"
#include "trace/profiles.hh"

using namespace silc;
using namespace silc::sim;

namespace {

struct Variant
{
    const char *label;
    uint32_t assoc;
    bool locking;
    bool bypass;
};

constexpr Variant kVariants[] = {
    {"swap", 1, false, false},
    {"+lock", 1, true, false},
    {"+assoc", 4, true, false},
    {"+bypass", 4, true, true},
};

} // namespace

int
main(int argc, char **argv)
{
    ExperimentOptions opts = ExperimentOptions::fromEnv();
    ParallelRunner runner(opts);
    runner.setJsonPath(jsonOutputPath(argc, argv));

    std::printf("=== Figure 6: SILC-FM breakdown "
                "(speedup over no-NM baseline) ===\n\n");
    std::vector<std::string> columns = {"rand"};
    for (const Variant &v : kVariants)
        columns.push_back(v.label);
    printTableHeader("bench", columns);

    const std::vector<std::string> workloads = trace::profileNames();
    std::vector<std::vector<ParallelRunner::Job>> jobs(workloads.size());
    for (size_t w = 0; w < workloads.size(); ++w) {
        runner.baseline(workloads[w]);
        jobs[w].push_back(runner.submit(workloads[w],
                                        PolicyKind::Random));
        for (const Variant &v : kVariants) {
            SystemConfig cfg =
                makeConfig(workloads[w], PolicyKind::SilcFm, opts);
            cfg.silc.associativity = v.assoc;
            cfg.silc.enable_locking = v.locking;
            cfg.silc.enable_bypass = v.bypass;
            jobs[w].push_back(runner.submitConfig(cfg));
        }
    }

    std::vector<std::vector<double>> per_col(columns.size());
    for (size_t w = 0; w < workloads.size(); ++w) {
        std::vector<double> row;
        for (const auto &job : jobs[w])
            row.push_back(runner.speedup(job.get()));
        for (size_t i = 0; i < row.size(); ++i)
            per_col[i].push_back(row[i]);
        printTableRow(workloads[w], row);
        std::fflush(stdout);
    }

    printTableRule(columns.size());
    std::vector<double> means;
    for (const auto &col : per_col)
        means.push_back(geomean(col));
    printTableRow("geomean", means);

    std::printf("\nfeature deltas (geomean): swap %+.1f%% over rand, "
                "lock %+.1f%%, assoc %+.1f%%, bypass %+.1f%%\n",
                100.0 * (means[1] / means[0] - 1.0),
                100.0 * (means[2] / means[1] - 1.0),
                100.0 * (means[3] / means[2] - 1.0),
                100.0 * (means[4] / means[3] - 1.0));
    std::printf("(paper: +55%% swap over static, +11%% lock, +8%% "
                "assoc, +8%% bypass)\n");
    runner.printFooter();
    return 0;
}
