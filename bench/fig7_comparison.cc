/**
 * @file
 * Figure 7 — "Performance Comparison with Other Schemes": speedup over
 * the no-NM baseline for Random, HMA, CAMEO, CAMEO+P, PoM and SILC-FM
 * across all 14 Table III workloads, plus the geometric mean.
 *
 * Paper shape to check (Section V-B): SILC-FM wins overall (+36% over
 * the best alternative); CAMEO is the strongest hardware baseline; HMA
 * beats Random but reacts slowly (gems degrades); PoM pays 2KB
 * migration bandwidth.
 *
 * Scale with SILC_CORES / SILC_INSTR / SILC_NM_MIB / SILC_FM_MIB;
 * SILC_THREADS controls the simulation fan-out.
 */

#include <cstdio>
#include <cstring>
#include <vector>

#include "sample/sampling.hh"
#include "sim/parallel.hh"
#include "sim/result_writer.hh"
#include "trace/profiles.hh"

using namespace silc;
using namespace silc::sim;

namespace {

bool
hasFlag(int argc, char **argv, const char *flag)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], flag) == 0)
            return true;
    }
    return false;
}

/**
 * --sample mode: the same table, but every run goes through the
 * statistical sampler (src/sample/) sequentially.  Policies that cannot
 * checkpoint (HMA's tick-coupled state) fall back to a full run, so the
 * grid shape is unchanged.
 */
int
sampledMain(int argc, char **argv, const ExperimentOptions &opts,
            const std::vector<PolicyKind> &kinds)
{
    const sample::SamplingConfig scfg = sample::SamplingConfig::fromEnv();
    std::vector<std::string> columns;
    for (PolicyKind k : kinds)
        columns.push_back(policyKindName(k));
    printTableHeader("bench", columns);

    ResultWriter writer(jsonOutputPath(argc, argv), opts);
    const std::vector<std::string> workloads = trace::profileNames();
    std::vector<std::vector<double>> per_scheme(kinds.size());
    for (const auto &w : workloads) {
        const SimResult base = sample::runMaybeSampled(
            makeConfig(w, PolicyKind::FmOnly, opts), scfg);
        writer.add(base);
        std::vector<double> row;
        for (size_t i = 0; i < kinds.size(); ++i) {
            const SimResult r = sample::runMaybeSampled(
                makeConfig(w, kinds[i], opts), scfg);
            writer.add(r);
            const double s = static_cast<double>(base.ticks) /
                static_cast<double>(r.ticks);
            per_scheme[i].push_back(s);
            row.push_back(s);
        }
        printTableRow(w, row);
        std::fflush(stdout);
    }
    printTableRule(columns.size());
    std::vector<double> means;
    for (const auto &col : per_scheme)
        means.push_back(geomean(col));
    printTableRow("geomean", means);
    if (!writer.path().empty())
        writer.write();
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    ExperimentOptions opts = ExperimentOptions::fromEnv();

    const std::vector<PolicyKind> kinds = {
        PolicyKind::Random, PolicyKind::Hma,  PolicyKind::Cameo,
        PolicyKind::CameoP, PolicyKind::Pom,  PolicyKind::SilcFm,
    };

    std::printf("=== Figure 7: speedup over no-NM baseline ===\n");
    std::printf("(cores=%u, instr/core=%s, NM=%sMiB, FM=%sMiB)\n\n",
                opts.cores, u64str(opts.instructions_per_core).c_str(),
                u64str(opts.nm_bytes >> 20).c_str(),
                u64str(opts.fm_bytes >> 20).c_str());

    if (hasFlag(argc, argv, "--sample"))
        return sampledMain(argc, argv, opts, kinds);

    ParallelRunner runner(opts);
    runner.setJsonPath(jsonOutputPath(argc, argv));

    std::vector<std::string> columns;
    for (PolicyKind k : kinds)
        columns.push_back(policyKindName(k));
    printTableHeader("bench", columns);

    // Fan everything out first: each workload's baseline denominator,
    // then every (workload, scheme) pair.
    const std::vector<std::string> workloads = trace::profileNames();
    std::vector<std::vector<ParallelRunner::Job>> jobs(workloads.size());
    for (size_t w = 0; w < workloads.size(); ++w) {
        runner.baseline(workloads[w]);
        for (PolicyKind kind : kinds)
            jobs[w].push_back(runner.submit(workloads[w], kind));
    }

    // Collect in submission order so the table is byte-identical to a
    // sequential run regardless of thread count.
    std::vector<std::vector<double>> per_scheme(kinds.size());
    for (size_t w = 0; w < workloads.size(); ++w) {
        std::vector<double> row;
        for (size_t i = 0; i < kinds.size(); ++i) {
            const SimResult r = jobs[w][i].get();
            const double s = runner.speedup(r);
            per_scheme[i].push_back(s);
            row.push_back(s);
        }
        printTableRow(workloads[w], row);
        std::fflush(stdout);
    }

    printTableRule(columns.size());
    std::vector<double> means;
    for (const auto &col : per_scheme)
        means.push_back(geomean(col));
    printTableRow("geomean", means);

    const double silc = means.back();
    double best_other = 0.0;
    std::string best_name;
    for (size_t i = 0; i + 1 < means.size(); ++i) {
        if (means[i] > best_other) {
            best_other = means[i];
            best_name = columns[i];
        }
    }
    std::printf("\nSILC-FM vs best alternative (%s): %+.1f%% "
                "(paper: +36%% over the state of the art)\n",
                best_name.c_str(), 100.0 * (silc / best_other - 1.0));
    runner.printFooter();
    return 0;
}
