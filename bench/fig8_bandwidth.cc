/**
 * @file
 * Figure 8 — "Fraction of FM and NM Bandwidth Usage": per scheme, the
 * share of *demand* bytes serviced by NM (migration traffic excluded,
 * as in the paper).
 *
 * Paper shape to check (Section V-B): the ideal point is 0.8 (the NM
 * share of total system bandwidth); HMA ~0.71, PoM ~0.58, CAMEO lower,
 * CAMEO+P imbalanced towards NM, SILC-FM ~0.76 — within 4% of ideal
 * thanks to bypassing.
 *
 * --perf mode: run ONE fig8-class (bandwidth-bound, full channel
 * count) simulation and report simulator throughput on stderr as
 * "[simpar] T ticks in X.XXs (Y.YY mticks/sec, N lanes)".  This is the
 * fixture behind BENCH_fig8.json and the perf-smoke-fig8 CI gate: the
 * intra-simulation windowed loop (SILC_SIM_THREADS, sim/domain.hh) is
 * exercised by exactly this single-run shape, which the grid benches —
 * already saturated by run-level parallelism — cannot measure.
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <vector>

#include "sample/sampling.hh"
#include "sim/parallel.hh"
#include "sim/result_writer.hh"
#include "trace/profiles.hh"

using namespace silc;
using namespace silc::sim;

namespace {

/**
 * --sample mode: the same NM-share table via the statistical sampler
 * (src/sample/), sequentially; nmDemandFraction comes from the
 * extrapolated window demand bytes.  HMA falls back to a full run.
 */
int
runSampledMode(int argc, char **argv, const ExperimentOptions &opts,
               const std::vector<PolicyKind> &kinds)
{
    const sample::SamplingConfig scfg = sample::SamplingConfig::fromEnv();
    std::vector<std::string> columns;
    for (PolicyKind k : kinds)
        columns.push_back(policyKindName(k));
    printTableHeader("bench", columns);

    ResultWriter writer(jsonOutputPath(argc, argv), opts);
    const std::vector<std::string> workloads = trace::profileNames();
    std::vector<std::vector<double>> per_scheme(kinds.size());
    for (const auto &w : workloads) {
        std::vector<double> row;
        for (size_t i = 0; i < kinds.size(); ++i) {
            const SimResult r = sample::runMaybeSampled(
                makeConfig(w, kinds[i], opts), scfg);
            writer.add(r);
            const double f = r.nmDemandFraction();
            per_scheme[i].push_back(f);
            row.push_back(f);
        }
        printTableRow(w, row);
        std::fflush(stdout);
    }
    printTableRule(columns.size());
    std::vector<double> means;
    for (const auto &col : per_scheme) {
        double sum = 0.0;
        for (double v : col)
            sum += v;
        means.push_back(sum / static_cast<double>(col.size()));
    }
    printTableRow("average", means);
    if (!writer.path().empty())
        writer.write();
    return 0;
}

/** The fig8-class perf fixture: paper bandwidth shape, one run. */
int
runPerfMode()
{
    ExperimentOptions opts = ExperimentOptions::fromEnv();
    SystemConfig cfg = makeConfig("lbm", PolicyKind::SilcFm, opts);
    // Full paper channel counts (the table runs use the scaled-down
    // machine): 8 HBM2 pseudo-channels against 4 DDR3 channels keeps
    // both devices busy enough that channel partitioning has work.
    cfg.nm_timing = dram::hbm2Params();
    cfg.fm_timing = dram::ddr3Params();
    cfg.fm_timing.channels = 4;

    const auto t0 = std::chrono::steady_clock::now();
    System system(cfg);
    const SimResult r = system.run();
    const double secs = std::chrono::duration<double>(
        std::chrono::steady_clock::now() - t0).count();
    const double mticks = secs > 0.0
        ? static_cast<double>(r.ticks) / 1e6 / secs
        : 0.0;

    std::printf("fig8-perf %s/%s cores=%s instr=%s ticks=%s ipc=%.3f\n",
                r.workload.c_str(), r.scheme.c_str(),
                u64str(r.cores).c_str(),
                u64str(opts.instructions_per_core).c_str(),
                u64str(r.ticks).c_str(), r.ipc);
    // Locale-stable footer; CI parses it with a fixed regex.
    std::fprintf(stderr,
                 "[simpar] %s ticks in %ss (%s mticks/sec, %s lanes)\n",
                 u64str(r.ticks).c_str(),
                 fixedDecimal(secs, 2).c_str(),
                 fixedDecimal(mticks, 2).c_str(),
                 u64str(opts.sim_threads).c_str());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    bool sampled = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--perf") == 0)
            return runPerfMode();
        if (std::strcmp(argv[i], "--sample") == 0)
            sampled = true;
    }

    ExperimentOptions opts = ExperimentOptions::fromEnv();

    const std::vector<PolicyKind> kinds = {
        PolicyKind::Random, PolicyKind::Hma,  PolicyKind::Cameo,
        PolicyKind::CameoP, PolicyKind::Pom,  PolicyKind::SilcFm,
    };

    std::printf("=== Figure 8: NM share of demand bandwidth "
                "(ideal = 0.80) ===\n\n");
    if (sampled)
        return runSampledMode(argc, argv, opts, kinds);

    ParallelRunner runner(opts);
    runner.setJsonPath(jsonOutputPath(argc, argv));

    std::vector<std::string> columns;
    for (PolicyKind k : kinds)
        columns.push_back(policyKindName(k));
    printTableHeader("bench", columns);

    const std::vector<std::string> workloads = trace::profileNames();
    std::vector<std::vector<ParallelRunner::Job>> jobs(workloads.size());
    for (size_t w = 0; w < workloads.size(); ++w)
        for (PolicyKind kind : kinds)
            jobs[w].push_back(runner.submit(workloads[w], kind));

    std::vector<std::vector<double>> per_scheme(kinds.size());
    for (size_t w = 0; w < workloads.size(); ++w) {
        std::vector<double> row;
        for (size_t i = 0; i < kinds.size(); ++i) {
            const double f = jobs[w][i].get().nmDemandFraction();
            per_scheme[i].push_back(f);
            row.push_back(f);
        }
        printTableRow(workloads[w], row);
        std::fflush(stdout);
    }

    printTableRule(columns.size());
    std::vector<double> means;
    for (const auto &col : per_scheme) {
        double sum = 0.0;
        for (double v : col)
            sum += v;
        means.push_back(sum / static_cast<double>(col.size()));
    }
    printTableRow("average", means);
    std::printf("\nSILC-FM average NM share: %.2f (paper: 0.76, "
                "4%% below the 0.80 ideal)\n", means.back());
    runner.printFooter();
    return 0;
}
