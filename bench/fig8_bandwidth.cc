/**
 * @file
 * Figure 8 — "Fraction of FM and NM Bandwidth Usage": per scheme, the
 * share of *demand* bytes serviced by NM (migration traffic excluded,
 * as in the paper).
 *
 * Paper shape to check (Section V-B): the ideal point is 0.8 (the NM
 * share of total system bandwidth); HMA ~0.71, PoM ~0.58, CAMEO lower,
 * CAMEO+P imbalanced towards NM, SILC-FM ~0.76 — within 4% of ideal
 * thanks to bypassing.
 */

#include <cstdio>
#include <vector>

#include "sim/parallel.hh"
#include "sim/result_writer.hh"
#include "trace/profiles.hh"

using namespace silc;
using namespace silc::sim;

int
main(int argc, char **argv)
{
    ExperimentOptions opts = ExperimentOptions::fromEnv();
    ParallelRunner runner(opts);
    runner.setJsonPath(jsonOutputPath(argc, argv));

    const std::vector<PolicyKind> kinds = {
        PolicyKind::Random, PolicyKind::Hma,  PolicyKind::Cameo,
        PolicyKind::CameoP, PolicyKind::Pom,  PolicyKind::SilcFm,
    };

    std::printf("=== Figure 8: NM share of demand bandwidth "
                "(ideal = 0.80) ===\n\n");
    std::vector<std::string> columns;
    for (PolicyKind k : kinds)
        columns.push_back(policyKindName(k));
    printTableHeader("bench", columns);

    const std::vector<std::string> workloads = trace::profileNames();
    std::vector<std::vector<ParallelRunner::Job>> jobs(workloads.size());
    for (size_t w = 0; w < workloads.size(); ++w)
        for (PolicyKind kind : kinds)
            jobs[w].push_back(runner.submit(workloads[w], kind));

    std::vector<std::vector<double>> per_scheme(kinds.size());
    for (size_t w = 0; w < workloads.size(); ++w) {
        std::vector<double> row;
        for (size_t i = 0; i < kinds.size(); ++i) {
            const double f = jobs[w][i].get().nmDemandFraction();
            per_scheme[i].push_back(f);
            row.push_back(f);
        }
        printTableRow(workloads[w], row);
        std::fflush(stdout);
    }

    printTableRule(columns.size());
    std::vector<double> means;
    for (const auto &col : per_scheme) {
        double sum = 0.0;
        for (double v : col)
            sum += v;
        means.push_back(sum / static_cast<double>(col.size()));
    }
    printTableRow("average", means);
    std::printf("\nSILC-FM average NM share: %.2f (paper: 0.76, "
                "4%% below the 0.80 ideal)\n", means.back());
    runner.printFooter();
    return 0;
}
