/**
 * @file
 * Figure 9 — "Performance Improvement with Various NM Capacities":
 * sweep the NM:FM ratio through 1/16, 1/8 and 1/4 (FM fixed) for a
 * representative workload subset.
 *
 * Paper shape to check (Section V-C): SILC-FM improves from 1.83 to
 * 2.04 as NM grows from 1/16 to 1/4 of FM and degrades gracefully when
 * NM shrinks (locking + associativity absorb the extra conflicts);
 * CAMEO is much more sensitive to the reduced number of sets; HMA and
 * PoM are comparatively flat.
 */

#include <cstdio>
#include <vector>

#include "sim/experiment.hh"
#include "trace/profiles.hh"

using namespace silc;
using namespace silc::sim;

int
main()
{
    ExperimentOptions opts = ExperimentOptions::fromEnv();
    ExperimentRunner runner(opts);

    const std::vector<PolicyKind> kinds = {
        PolicyKind::Hma,
        PolicyKind::Cameo,
        PolicyKind::Pom,
        PolicyKind::SilcFm,
    };
    const std::vector<uint64_t> dividers = {16, 8, 4};

    std::printf("=== Figure 9: speedup vs NM:FM capacity ratio "
                "(FM fixed at %llu MiB) ===\n\n",
                static_cast<unsigned long long>(opts.fm_bytes >> 20));

    for (PolicyKind kind : kinds) {
        std::printf("--- %s ---\n", policyKindName(kind));
        std::vector<std::string> columns;
        for (uint64_t d : dividers)
            columns.push_back("1/" + std::to_string(d));
        printTableHeader("bench", columns);

        std::vector<std::vector<double>> per_ratio(dividers.size());
        for (const auto &workload : trace::representativeNames()) {
            std::vector<double> row;
            for (size_t i = 0; i < dividers.size(); ++i) {
                SystemConfig cfg = makeConfig(workload, kind, opts);
                cfg.nm_bytes = opts.fm_bytes / dividers[i];
                SimResult r = runner.runConfig(cfg);
                const double s = runner.speedup(r);
                per_ratio[i].push_back(s);
                row.push_back(s);
            }
            printTableRow(workload, row);
            std::fflush(stdout);
        }
        printTableRule(columns.size());
        std::vector<double> means;
        for (const auto &col : per_ratio)
            means.push_back(geomean(col));
        printTableRow("geomean", means);
        std::printf("\n");
    }

    std::printf("(paper: SILC-FM 1.83 -> 2.04 from 1/16 to 1/4; best "
                "alternative only 1.47 -> 1.65)\n");
    return 0;
}
