/**
 * @file
 * Figure 9 — "Performance Improvement with Various NM Capacities":
 * sweep the NM:FM ratio through 1/16, 1/8 and 1/4 (FM fixed) for a
 * representative workload subset.
 *
 * Paper shape to check (Section V-C): SILC-FM improves from 1.83 to
 * 2.04 as NM grows from 1/16 to 1/4 of FM and degrades gracefully when
 * NM shrinks (locking + associativity absorb the extra conflicts);
 * CAMEO is much more sensitive to the reduced number of sets; HMA and
 * PoM are comparatively flat.
 */

#include <cstdio>
#include <vector>

#include "sim/parallel.hh"
#include "sim/result_writer.hh"
#include "trace/profiles.hh"

using namespace silc;
using namespace silc::sim;

int
main(int argc, char **argv)
{
    ExperimentOptions opts = ExperimentOptions::fromEnv();
    ParallelRunner runner(opts);
    runner.setJsonPath(jsonOutputPath(argc, argv));

    const std::vector<PolicyKind> kinds = {
        PolicyKind::Hma,
        PolicyKind::Cameo,
        PolicyKind::Pom,
        PolicyKind::SilcFm,
    };
    const std::vector<uint64_t> dividers = {16, 8, 4};

    std::printf("=== Figure 9: speedup vs NM:FM capacity ratio "
                "(FM fixed at %s MiB) ===\n\n",
                u64str(opts.fm_bytes >> 20).c_str());

    // The whole (scheme, workload, ratio) grid shares one pool; the
    // baselines are per-workload, independent of scheme and NM size.
    const std::vector<std::string> workloads =
        trace::representativeNames();
    for (const auto &workload : workloads)
        runner.baseline(workload);
    std::vector<std::vector<std::vector<ParallelRunner::Job>>> jobs(
        kinds.size());
    for (size_t k = 0; k < kinds.size(); ++k) {
        jobs[k].resize(workloads.size());
        for (size_t w = 0; w < workloads.size(); ++w) {
            for (uint64_t d : dividers) {
                SystemConfig cfg = makeConfig(workloads[w], kinds[k],
                                              opts);
                cfg.nm_bytes = opts.fm_bytes / d;
                jobs[k][w].push_back(runner.submitConfig(cfg));
            }
        }
    }

    for (size_t k = 0; k < kinds.size(); ++k) {
        std::printf("--- %s ---\n", policyKindName(kinds[k]));
        std::vector<std::string> columns;
        for (uint64_t d : dividers)
            columns.push_back("1/" + std::to_string(d));
        printTableHeader("bench", columns);

        std::vector<std::vector<double>> per_ratio(dividers.size());
        for (size_t w = 0; w < workloads.size(); ++w) {
            std::vector<double> row;
            for (size_t i = 0; i < dividers.size(); ++i) {
                const double s = runner.speedup(jobs[k][w][i].get());
                per_ratio[i].push_back(s);
                row.push_back(s);
            }
            printTableRow(workloads[w], row);
            std::fflush(stdout);
        }
        printTableRule(columns.size());
        std::vector<double> means;
        for (const auto &col : per_ratio)
            means.push_back(geomean(col));
        printTableRow("geomean", means);
        std::printf("\n");
    }

    std::printf("(paper: SILC-FM 1.83 -> 2.04 from 1/16 to 1/4; best "
                "alternative only 1.47 -> 1.65)\n");
    runner.printFooter();
    return 0;
}
