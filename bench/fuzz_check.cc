/**
 * fuzz_check: seeded differential-fuzzing campaigns for SILC-FM.
 *
 * Each campaign derives a parameter point (associativity, feature
 * flags, thresholds, windows) and an adversarial access pattern from
 * its seed, then replays the stream through a live SilcFmPolicy with
 * the untimed reference model attached in lockstep (src/check/).  On
 * the first divergence the failing trace is shrunk to a 1-minimal
 * reproducer and written as a replayable silctrace file.
 *
 *   fuzz_check [--campaigns N] [--accesses M] [--seed S]
 *              [--replay FILE]
 *
 * The base seed defaults to the SILC_FUZZ_SEED environment variable
 * (then 1); campaign c uses seed S + c.  --replay re-runs one recorded
 * trace under the campaign derived from --seed (print-outs of failures
 * name the exact command).  Exit status: 0 clean, 1 divergence.
 *
 * Registered in ctest as `fuzz_check --campaigns 25` so every tier-1
 * run fuzzes the oracle; see TESTING.md.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "check/campaign.hh"
#include "common/config.hh"
#include "trace/fuzz.hh"

using namespace silc;

namespace {

uint64_t
envSeed()
{
    const char *v = std::getenv("SILC_FUZZ_SEED");
    return v == nullptr ? 1 : parseSize(v);
}

int
reportAndPersist(const check::CampaignConfig &cfg,
                 const std::vector<trace::FuzzAccess> &trace,
                 const check::CampaignFailure &failure)
{
    std::fprintf(stderr,
                 "fuzz_check: DIVERGENCE in campaign seed %llu (%s)\n"
                 "  at access %zu/%zu: %s\n",
                 static_cast<unsigned long long>(cfg.seed),
                 check::describeCampaign(cfg).c_str(),
                 failure.access_index, trace.size(),
                 failure.why.c_str());

    std::fprintf(stderr, "fuzz_check: shrinking...\n");
    auto fails = [&cfg](const std::vector<trace::FuzzAccess> &t) {
        return check::runCampaignTrace(cfg, t).has_value();
    };
    const std::vector<trace::FuzzAccess> minimal =
        check::shrinkTrace(trace, fails);

    const std::string path = "fuzz_fail_" + std::to_string(cfg.seed) +
        ".silctrace";
    check::writeFuzzTrace(path, minimal);
    const auto final_failure = check::runCampaignTrace(cfg, minimal);

    std::fprintf(stderr,
                 "fuzz_check: shrunk %zu -> %zu accesses, wrote %s\n"
                 "  minimal failure: %s\n"
                 "  replay: fuzz_check --replay %s --seed %llu\n",
                 trace.size(), minimal.size(), path.c_str(),
                 final_failure ? final_failure->why.c_str() : "(gone?)",
                 path.c_str(),
                 static_cast<unsigned long long>(cfg.seed));
    return 1;
}

} // namespace

int
main(int argc, char **argv)
{
    uint64_t campaigns = 25;
    uint64_t accesses = 4000;
    uint64_t base_seed = envSeed();
    std::string replay_path;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "fuzz_check: %s needs a value\n",
                             flag);
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--campaigns") {
            campaigns = parseSize(value("--campaigns"));
        } else if (arg == "--accesses") {
            accesses = parseSize(value("--accesses"));
        } else if (arg == "--seed") {
            base_seed = parseSize(value("--seed"));
        } else if (arg == "--replay") {
            replay_path = value("--replay");
        } else {
            std::fprintf(stderr,
                         "usage: fuzz_check [--campaigns N] "
                         "[--accesses M] [--seed S] [--replay FILE]\n");
            return 2;
        }
    }

    if (!replay_path.empty()) {
        const check::CampaignConfig cfg =
            check::makeCampaign(base_seed, accesses);
        const std::vector<trace::FuzzAccess> trace =
            check::loadFuzzTrace(replay_path);
        std::printf("fuzz_check: replaying %zu accesses from %s under "
                    "seed %llu (%s)\n",
                    trace.size(), replay_path.c_str(),
                    static_cast<unsigned long long>(base_seed),
                    check::describeCampaign(cfg).c_str());
        const auto failure = check::runCampaignTrace(cfg, trace);
        if (failure) {
            std::printf("fuzz_check: DIVERGENCE at access %zu: %s\n",
                        failure->access_index, failure->why.c_str());
            return 1;
        }
        std::printf("fuzz_check: replay clean\n");
        return 0;
    }

    uint64_t total_accesses = 0;
    for (uint64_t c = 0; c < campaigns; ++c) {
        const uint64_t seed = base_seed + c;
        const check::CampaignConfig cfg =
            check::makeCampaign(seed, accesses);
        const std::vector<trace::FuzzAccess> trace =
            trace::generateAdversarialTrace(cfg.pattern, cfg.geometry,
                                            seed, accesses);
        const auto failure = check::runCampaignTrace(cfg, trace);
        if (failure)
            return reportAndPersist(cfg, trace, *failure);
        total_accesses += trace.size();
        std::printf("campaign %3llu seed %-6llu %-72s ok\n",
                    static_cast<unsigned long long>(c),
                    static_cast<unsigned long long>(seed),
                    check::describeCampaign(cfg).c_str());
    }
    std::printf("fuzz_check: %llu campaigns, %llu accesses, "
                "0 divergences\n",
                static_cast<unsigned long long>(campaigns),
                static_cast<unsigned long long>(total_accesses));
    return 0;
}
