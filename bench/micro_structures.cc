/**
 * @file
 * Microbenchmarks (google-benchmark) for SILC-FM's hardware-modelled
 * metadata structures: remap way lookup, victim selection, bit vector
 * history table, way predictor, and the full demand-resolution path.
 * These guard the simulator's own performance — the figure benches run
 * hundreds of millions of these operations.
 */

#include <benchmark/benchmark.h>

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/event_queue.hh"
#include "common/rng.hh"
#include "core/bitvector_table.hh"
#include "core/predictor.hh"
#include "core/set_metadata.hh"
#include "core/silc_fm.hh"
#include "dram/dram_system.hh"

using namespace silc;
using namespace silc::core;

static void
BM_FindWay(benchmark::State &state)
{
    NmMetadata meta(2048, static_cast<uint32_t>(state.range(0)));
    Rng rng(1);
    // Populate every way with a plausible remap.
    for (uint64_t s = 0; s < meta.numSets(); ++s) {
        for (uint32_t w = 0; w < meta.associativity(); ++w) {
            meta.meta(meta.frameOf(s, w)).remap =
                2048 + s + w * meta.numSets();
        }
    }
    uint64_t set = 0;
    for (auto _ : state) {
        (void)_;
        set = (set + 1) % meta.numSets();
        benchmark::DoNotOptimize(
            meta.findWay(set, 2048 + set + meta.numSets()));
    }
}
BENCHMARK(BM_FindWay)->Arg(1)->Arg(4)->Arg(8);

static void
BM_VictimWay(benchmark::State &state)
{
    NmMetadata meta(2048, 4);
    Rng rng(2);
    for (uint64_t f = 0; f < meta.frames(); ++f) {
        meta.meta(f).remap = 2048 + f;
        meta.meta(f).locked = rng.chance(0.25);
        meta.touch(f);
    }
    uint64_t set = 0;
    for (auto _ : state) {
        (void)_;
        set = (set + 1) % meta.numSets();
        benchmark::DoNotOptimize(meta.victimWay(set));
    }
}
BENCHMARK(BM_VictimWay);

static void
BM_HistoryTable(benchmark::State &state)
{
    BitVectorTable table(uint64_t(1) << 20);
    Rng rng(3);
    SubblockVector bv;
    bv.set(3);
    bv.set(9);
    for (auto _ : state) {
        (void)_;
        const Addr pc = 0x400 + rng.below(64) * 4;
        const Addr addr = rng.below(1 << 20) * kSubblockSize;
        table.save(pc, addr, bv);
        benchmark::DoNotOptimize(table.lookup(pc, addr));
    }
}
BENCHMARK(BM_HistoryTable);

static void
BM_WayPredictor(benchmark::State &state)
{
    WayPredictor pred(4096);
    Rng rng(4);
    for (auto _ : state) {
        (void)_;
        const Addr pc = 0x400 + rng.below(64) * 4;
        const Addr addr = rng.below(1 << 22) * kSubblockSize;
        pred.update(pc, addr, static_cast<uint8_t>(rng.below(4)),
                    rng.chance(0.5));
        benchmark::DoNotOptimize(pred.predict(pc, addr));
    }
}
BENCHMARK(BM_WayPredictor);

static void
BM_SilcDemandAccess(benchmark::State &state)
{
    EventQueue events;
    dram::DramSystem nm(dram::hbm2Params(), 4_MiB, events);
    dram::DramSystem fm(dram::ddr3Params(), 16_MiB, events);
    policy::PolicyEnv env{&nm, &fm, &events};
    SilcFmParams params;
    params.hot_threshold = 12;
    SilcFmPolicy policy(env, params);
    Rng rng(5);
    Tick now = 0;
    const uint64_t blocks = policy.flatSpaceBytes() / kSubblockSize;
    ZipfSampler zipf(blocks, 0.8);
    for (auto _ : state) {
        (void)_;
        const Addr a = zipf.sample(rng) * kSubblockSize;
        policy.demandAccess(a, false, 0, 0x400, nullptr, now);
        now += 4;
        // Keep the DRAM queues bounded without timing the full drain.
        if ((now & 0xFFF) == 0) {
            state.PauseTiming();
            for (Tick t = now; t < now + 200'000; ++t) {
                nm.tick(t);
                fm.tick(t);
                events.runDue(t);
                if (nm.idle() && fm.idle() && events.empty())
                    break;
            }
            now += 200'000;
            state.ResumeTiming();
        }
    }
}
BENCHMARK(BM_SilcDemandAccess);

namespace {

/**
 * The shape of the simulator's hottest event: a completion lambda
 * capturing a DemandCallback (a 32-byte std::function on libstdc++)
 * plus a word of context — too big for std::function's inline buffer,
 * comfortably inside EventCallback's 64-byte one.
 */
struct EventPayload
{
    std::function<void(Tick)> done;
    Tick context;
};

} // namespace

/**
 * schedule/runDue throughput with the capture held directly in the
 * EventCallback (the post-SmallFunction hot path).  Counter
 * "events/sec" is the figure the EventQueue optimisation targets;
 * compare against BM_EventScheduleStdFunction below for the before.
 */
static void
BM_EventScheduleInline(benchmark::State &state)
{
    EventQueue q;
    uint64_t sink = 0;
    std::function<void(Tick)> done = [&sink](Tick t) { sink += t; };
    Tick now = 0;
    for (auto _ : state) {
        (void)_;
        for (int i = 0; i < 64; ++i) {
            EventPayload payload{done, now};
            q.scheduleIn(now, 1 + (i & 3),
                         [payload = std::move(payload)](Tick t) mutable {
                             payload.done(t + payload.context);
                         });
        }
        now += 4;
        q.runDue(now);
    }
    benchmark::DoNotOptimize(sink);
    state.counters["events/sec"] = benchmark::Counter(
        static_cast<double>(q.executed()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EventScheduleInline);

/**
 * The pre-optimisation behavior: every callback funnelled through a
 * std::function first, so each schedule() heap-allocates the oversized
 * capture exactly as the old std::function-based EventCallback did.
 */
static void
BM_EventScheduleStdFunction(benchmark::State &state)
{
    EventQueue q;
    uint64_t sink = 0;
    std::function<void(Tick)> done = [&sink](Tick t) { sink += t; };
    Tick now = 0;
    for (auto _ : state) {
        (void)_;
        for (int i = 0; i < 64; ++i) {
            EventPayload payload{done, now};
            std::function<void(Tick)> boxed =
                [payload = std::move(payload)](Tick t) mutable {
                    payload.done(t + payload.context);
                };
            q.scheduleIn(now, 1 + (i & 3), std::move(boxed));
        }
        now += 4;
        q.runDue(now);
    }
    benchmark::DoNotOptimize(sink);
    state.counters["events/sec"] = benchmark::Counter(
        static_cast<double>(q.executed()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EventScheduleStdFunction);

/**
 * The old FR-FCFS pick: std::deque keyed queue, erase from the middle.
 * Kept as the baseline for BM_FrFcfsPickArena — the erase shifts
 * everything behind the picked element.
 */
static void
BM_FrFcfsPickDequeErase(benchmark::State &state)
{
    const size_t depth = static_cast<size_t>(state.range(0));
    std::deque<uint64_t> q;
    Rng rng(7);
    uint64_t next_id = 0;
    for (size_t i = 0; i < depth; ++i)
        q.push_back(next_id++);
    for (auto _ : state) {
        (void)_;
        // Pick from the middle (a row hit deep in the window), erase,
        // refill at the tail — the steady state of a saturated channel.
        const size_t pick = rng.below(q.size());
        benchmark::DoNotOptimize(q[pick]);
        q.erase(q.begin() + static_cast<ptrdiff_t>(pick));
        q.push_back(next_id++);
    }
}
BENCHMARK(BM_FrFcfsPickDequeErase)->Arg(8)->Arg(32)->Arg(128);

/**
 * The replacement: request arena with an intrusive singly-linked FIFO.
 * The pick unlinks in O(1) once found; the freed slot is recycled.
 */
static void
BM_FrFcfsPickArena(benchmark::State &state)
{
    const size_t depth = static_cast<size_t>(state.range(0));
    std::vector<uint64_t> slots;
    std::vector<uint32_t> next;
    constexpr uint32_t kNull = ~uint32_t(0);
    uint32_t head = kNull, tail = kNull, free_head = kNull;
    size_t count = 0;
    uint64_t next_id = 0;
    auto push = [&](uint64_t v) {
        uint32_t idx;
        if (free_head != kNull) {
            idx = free_head;
            free_head = next[idx];
            slots[idx] = v;
        } else {
            idx = static_cast<uint32_t>(slots.size());
            slots.push_back(v);
            next.push_back(kNull);
        }
        next[idx] = kNull;
        if (tail == kNull)
            head = idx;
        else
            next[tail] = idx;
        tail = idx;
        ++count;
    };
    Rng rng(8);
    for (size_t i = 0; i < depth; ++i)
        push(next_id++);
    for (auto _ : state) {
        (void)_;
        // Walk to a random window position (the FR-FCFS scan), unlink.
        const size_t target = rng.below(count);
        uint32_t prev = kNull, i = head;
        for (size_t n = 0; n < target; ++n) {
            prev = i;
            i = next[i];
        }
        benchmark::DoNotOptimize(slots[i]);
        if (prev == kNull)
            head = next[i];
        else
            next[prev] = next[i];
        if (tail == i)
            tail = prev;
        --count;
        next[i] = free_head;
        free_head = i;
        push(next_id++);
    }
}
BENCHMARK(BM_FrFcfsPickArena)->Arg(8)->Arg(32)->Arg(128);

/**
 * A saturated channel controller end to end: queues never empty, one
 * scan per memory cycle.  Counter "issues/sec" is the scheduling
 * throughput the event-driven rework targets.
 */
static void
BM_ControllerSaturatedScan(benchmark::State &state)
{
    dram::DramTimingParams p = dram::ddr3Params();
    p.t_refi = 0;
    EventQueue events;
    dram::ChannelController ctrl(p, events);
    Rng rng(9);
    const uint32_t banks = static_cast<uint32_t>(ctrl.numBanks());
    Tick now = 0;
    const Tick step = p.toTicks(1);
    Addr a = 0;
    for (auto _ : state) {
        (void)_;
        while (ctrl.queuedRequests() < p.queue_depth) {
            dram::DecodedRequest dec;
            dec.req.addr = (a += kSubblockSize);
            dec.req.is_write = rng.below(4) == 0;
            dec.req.traffic = dec.req.is_write
                ? dram::TrafficClass::Writeback
                : dram::TrafficClass::Demand;
            dec.bank = static_cast<uint32_t>(rng.below(banks));
            dec.row = static_cast<int64_t>(rng.below(8));
            ctrl.enqueue(std::move(dec), now);
        }
        ctrl.scan(now);
        events.runDue(now);
        now += step;
    }
    state.counters["issues/sec"] = benchmark::Counter(
        static_cast<double>(ctrl.readsServed() + ctrl.writesServed()),
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ControllerSaturatedScan);

/**
 * scheduleCancellable + cancel churn: the cancel/re-arm pattern an
 * event-driven wakeup consumer would generate at worst case (every
 * armed deadline superseded before it fires).  Tombstones are lazy, so
 * the cost to beat is one hash insert/erase per cancel.
 */
static void
BM_EventCancelRearm(benchmark::State &state)
{
    EventQueue q;
    uint64_t sink = 0;
    Tick now = 0;
    for (auto _ : state) {
        (void)_;
        EventId id = q.scheduleCancellable(
            now + 100, [&sink](Tick t) { sink += t; });
        for (int i = 0; i < 4; ++i) {
            q.cancel(id);
            id = q.scheduleCancellable(
                now + 10 + i, [&sink](Tick t) { sink += t; });
        }
        now += 16;
        q.runDue(now);
    }
    benchmark::DoNotOptimize(sink);
    state.counters["cancels/sec"] = benchmark::Counter(
        static_cast<double>(q.cancelled()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EventCancelRearm);

/**
 * One window of the intra-simulation parallel machinery at lane
 * granularity, run serially: enter window mode, buffer a batch of
 * enqueues, replay every channel to the window edge, merge the deferred
 * completions back into the event queue in deterministic order.  This
 * is the fixed per-window overhead the conservative-lookahead loop pays
 * over the legacy polled path (sim/domain.hh); counter "reqs/sec" is
 * the buffered-issue throughput.
 */
static void
BM_WindowBufferReplayMerge(benchmark::State &state)
{
    dram::DramTimingParams p = dram::ddr3Params();
    p.t_refi = 0;
    p.channels = 4;
    EventQueue events;
    dram::DramSystem sys(p, 64_MiB, events);
    sys.setWindowMode(true);
    Rng rng(11);
    Tick now = 0;
    const Tick window = p.toTicks(64);
    uint64_t issued = 0;
    for (auto _ : state) {
        (void)_;
        sys.beginWindow();
        for (int i = 0; i < 32; ++i) {
            dram::DramRequest req;
            req.addr = rng.below(64_MiB / 64) * 64;
            req.is_write = rng.below(4) == 0;
            req.traffic = req.is_write ? dram::TrafficClass::Writeback
                                       : dram::TrafficClass::Demand;
            sys.issue(std::move(req), now);
            ++issued;
        }
        sys.stampTick(now);
        const Tick w1 = now + window;
        for (size_t c = 0; c < sys.numChannels(); ++c)
            sys.replayChannel(c, w1);
        sys.mergeWindow(1);
        now = w1;
        events.runDue(now);
    }
    state.counters["reqs/sec"] = benchmark::Counter(
        static_cast<double>(issued), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_WindowBufferReplayMerge);

/**
 * The window-edge synchronization barrier in isolation: the same
 * epoch/done atomic handshake DomainScheduler uses (release bump +
 * notify, spin-then-wait worker, release done, acquire gather).
 * Counter "windows/sec" bounds how many windows per second the
 * parallel loop could possibly sustain on this host — window sizing
 * must keep per-window work well above 1/this.
 */
static void
BM_WindowBarrierRoundTrip(benchmark::State &state)
{
    std::atomic<uint64_t> epoch{0}, done{0};
    std::atomic<bool> stop{false};
    std::mutex mutex;
    std::condition_variable cv;
    std::thread worker([&] {
        uint64_t seen = 0;
        for (;;) {
            for (int spin = 0; spin < 4096; ++spin) {
                if (epoch.load(std::memory_order_acquire) != seen ||
                    stop.load(std::memory_order_acquire))
                    break;
            }
            {
                std::unique_lock<std::mutex> lock(mutex);
                cv.wait(lock, [&] {
                    return epoch.load(std::memory_order_acquire) != seen ||
                           stop.load(std::memory_order_acquire);
                });
            }
            if (stop.load(std::memory_order_acquire))
                return;
            ++seen;
            done.fetch_add(1, std::memory_order_release);
        }
    });
    uint64_t rounds = 0;
    for (auto _ : state) {
        (void)_;
        done.store(0, std::memory_order_relaxed);
        {
            std::lock_guard<std::mutex> lock(mutex);
            epoch.fetch_add(1, std::memory_order_release);
        }
        cv.notify_all();
        while (done.load(std::memory_order_acquire) != 1)
            std::this_thread::yield();
        ++rounds;
    }
    {
        std::lock_guard<std::mutex> lock(mutex);
        stop.store(true, std::memory_order_release);
    }
    cv.notify_all();
    worker.join();
    state.counters["windows/sec"] = benchmark::Counter(
        static_cast<double>(rounds), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_WindowBarrierRoundTrip);

static void
BM_DramDecode(benchmark::State &state)
{
    EventQueue events;
    dram::DramSystem sys(dram::ddr3Params(), 64_MiB, events);
    Rng rng(6);
    for (auto _ : state) {
        (void)_;
        benchmark::DoNotOptimize(
            sys.decode(rng.below(64_MiB / 64) * 64));
    }
}
BENCHMARK(BM_DramDecode);

BENCHMARK_MAIN();
