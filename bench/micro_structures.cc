/**
 * @file
 * Microbenchmarks (google-benchmark) for SILC-FM's hardware-modelled
 * metadata structures: remap way lookup, victim selection, bit vector
 * history table, way predictor, and the full demand-resolution path.
 * These guard the simulator's own performance — the figure benches run
 * hundreds of millions of these operations.
 */

#include <benchmark/benchmark.h>

#include <functional>

#include "common/event_queue.hh"
#include "common/rng.hh"
#include "core/bitvector_table.hh"
#include "core/predictor.hh"
#include "core/set_metadata.hh"
#include "core/silc_fm.hh"
#include "dram/dram_system.hh"

using namespace silc;
using namespace silc::core;

static void
BM_FindWay(benchmark::State &state)
{
    NmMetadata meta(2048, static_cast<uint32_t>(state.range(0)));
    Rng rng(1);
    // Populate every way with a plausible remap.
    for (uint64_t s = 0; s < meta.numSets(); ++s) {
        for (uint32_t w = 0; w < meta.associativity(); ++w) {
            meta.meta(meta.frameOf(s, w)).remap =
                2048 + s + w * meta.numSets();
        }
    }
    uint64_t set = 0;
    for (auto _ : state) {
        (void)_;
        set = (set + 1) % meta.numSets();
        benchmark::DoNotOptimize(
            meta.findWay(set, 2048 + set + meta.numSets()));
    }
}
BENCHMARK(BM_FindWay)->Arg(1)->Arg(4)->Arg(8);

static void
BM_VictimWay(benchmark::State &state)
{
    NmMetadata meta(2048, 4);
    Rng rng(2);
    for (uint64_t f = 0; f < meta.frames(); ++f) {
        meta.meta(f).remap = 2048 + f;
        meta.meta(f).locked = rng.chance(0.25);
        meta.touch(f);
    }
    uint64_t set = 0;
    for (auto _ : state) {
        (void)_;
        set = (set + 1) % meta.numSets();
        benchmark::DoNotOptimize(meta.victimWay(set));
    }
}
BENCHMARK(BM_VictimWay);

static void
BM_HistoryTable(benchmark::State &state)
{
    BitVectorTable table(uint64_t(1) << 20);
    Rng rng(3);
    SubblockVector bv;
    bv.set(3);
    bv.set(9);
    for (auto _ : state) {
        (void)_;
        const Addr pc = 0x400 + rng.below(64) * 4;
        const Addr addr = rng.below(1 << 20) * kSubblockSize;
        table.save(pc, addr, bv);
        benchmark::DoNotOptimize(table.lookup(pc, addr));
    }
}
BENCHMARK(BM_HistoryTable);

static void
BM_WayPredictor(benchmark::State &state)
{
    WayPredictor pred(4096);
    Rng rng(4);
    for (auto _ : state) {
        (void)_;
        const Addr pc = 0x400 + rng.below(64) * 4;
        const Addr addr = rng.below(1 << 22) * kSubblockSize;
        pred.update(pc, addr, static_cast<uint8_t>(rng.below(4)),
                    rng.chance(0.5));
        benchmark::DoNotOptimize(pred.predict(pc, addr));
    }
}
BENCHMARK(BM_WayPredictor);

static void
BM_SilcDemandAccess(benchmark::State &state)
{
    EventQueue events;
    dram::DramSystem nm(dram::hbm2Params(), 4_MiB, events);
    dram::DramSystem fm(dram::ddr3Params(), 16_MiB, events);
    policy::PolicyEnv env{&nm, &fm, &events};
    SilcFmParams params;
    params.hot_threshold = 12;
    SilcFmPolicy policy(env, params);
    Rng rng(5);
    Tick now = 0;
    const uint64_t blocks = policy.flatSpaceBytes() / kSubblockSize;
    ZipfSampler zipf(blocks, 0.8);
    for (auto _ : state) {
        (void)_;
        const Addr a = zipf.sample(rng) * kSubblockSize;
        policy.demandAccess(a, false, 0, 0x400, nullptr, now);
        now += 4;
        // Keep the DRAM queues bounded without timing the full drain.
        if ((now & 0xFFF) == 0) {
            state.PauseTiming();
            for (Tick t = now; t < now + 200'000; ++t) {
                nm.tick(t);
                fm.tick(t);
                events.runDue(t);
                if (nm.idle() && fm.idle() && events.empty())
                    break;
            }
            now += 200'000;
            state.ResumeTiming();
        }
    }
}
BENCHMARK(BM_SilcDemandAccess);

namespace {

/**
 * The shape of the simulator's hottest event: a completion lambda
 * capturing a DemandCallback (a 32-byte std::function on libstdc++)
 * plus a word of context — too big for std::function's inline buffer,
 * comfortably inside EventCallback's 64-byte one.
 */
struct EventPayload
{
    std::function<void(Tick)> done;
    Tick context;
};

} // namespace

/**
 * schedule/runDue throughput with the capture held directly in the
 * EventCallback (the post-SmallFunction hot path).  Counter
 * "events/sec" is the figure the EventQueue optimisation targets;
 * compare against BM_EventScheduleStdFunction below for the before.
 */
static void
BM_EventScheduleInline(benchmark::State &state)
{
    EventQueue q;
    uint64_t sink = 0;
    std::function<void(Tick)> done = [&sink](Tick t) { sink += t; };
    Tick now = 0;
    for (auto _ : state) {
        (void)_;
        for (int i = 0; i < 64; ++i) {
            EventPayload payload{done, now};
            q.scheduleIn(now, 1 + (i & 3),
                         [payload = std::move(payload)](Tick t) mutable {
                             payload.done(t + payload.context);
                         });
        }
        now += 4;
        q.runDue(now);
    }
    benchmark::DoNotOptimize(sink);
    state.counters["events/sec"] = benchmark::Counter(
        static_cast<double>(q.executed()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EventScheduleInline);

/**
 * The pre-optimisation behavior: every callback funnelled through a
 * std::function first, so each schedule() heap-allocates the oversized
 * capture exactly as the old std::function-based EventCallback did.
 */
static void
BM_EventScheduleStdFunction(benchmark::State &state)
{
    EventQueue q;
    uint64_t sink = 0;
    std::function<void(Tick)> done = [&sink](Tick t) { sink += t; };
    Tick now = 0;
    for (auto _ : state) {
        (void)_;
        for (int i = 0; i < 64; ++i) {
            EventPayload payload{done, now};
            std::function<void(Tick)> boxed =
                [payload = std::move(payload)](Tick t) mutable {
                    payload.done(t + payload.context);
                };
            q.scheduleIn(now, 1 + (i & 3), std::move(boxed));
        }
        now += 4;
        q.runDue(now);
    }
    benchmark::DoNotOptimize(sink);
    state.counters["events/sec"] = benchmark::Counter(
        static_cast<double>(q.executed()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EventScheduleStdFunction);

static void
BM_DramDecode(benchmark::State &state)
{
    EventQueue events;
    dram::DramSystem sys(dram::ddr3Params(), 64_MiB, events);
    Rng rng(6);
    for (auto _ : state) {
        (void)_;
        benchmark::DoNotOptimize(
            sys.decode(rng.below(64_MiB / 64) * 64));
    }
}
BENCHMARK(BM_DramDecode);

BENCHMARK_MAIN();
