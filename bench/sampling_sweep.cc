/**
 * @file
 * Sampling validation sweep: runs the same configuration twice — once in
 * full detail, once through the statistical sampling subsystem
 * (src/sample/) — and prints every sampled metric next to the full-run
 * value and its 95% confidence interval.  This is the differential
 * harness behind the sampling-smoke CI job and BENCH_sampling.json: a
 * healthy sampler keeps each full-run value inside the sampled CI while
 * finishing several times faster.
 *
 * Scale with SILC_CORES / SILC_INSTR / SILC_SEED; tune the sampler with
 * SILC_SAMPLE_PERIOD / SILC_SAMPLE_WINDOW / SILC_SAMPLE_WARMUP /
 * SILC_SAMPLE_MIN_WINDOWS / SILC_SAMPLE_CI_TARGET.  SILC_CHECK=1 runs
 * the differential oracle during the functional-warming pass.
 *
 * --json <path> (or SILC_JSON) writes a silc.results.v1 document whose
 * runs array is [full, sampled]; the sampled run carries the "sampling"
 * section.  --workload <name> picks a Table III workload (default mcf).
 * --paper-channels uses the full paper channel counts (8 HBM2
 * pseudo-channels vs 4 DDR3 channels, as fig8 --perf) instead of the
 * scaled-down table machine — the BENCH_sampling.json fixture, since
 * detailed-mode cost there reflects a bandwidth-stressed memory system.
 * Stderr footer for CI parsing:
 *   [sampling] W windows in S s (Fx speedup, C checkpoints)
 */

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>

#include "dram/timing.hh"
#include "sample/sampling.hh"
#include "sim/parallel.hh"
#include "sim/result_writer.hh"

using namespace silc;
using namespace silc::sim;

namespace {

double
seconds_since(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
}

std::string
argValue(int argc, char **argv, const char *flag, const char *fallback)
{
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], flag) == 0)
            return argv[i + 1];
    }
    return fallback;
}

} // namespace

int
main(int argc, char **argv)
{
    ExperimentOptions opts = ExperimentOptions::fromEnv();
    sample::SamplingConfig scfg = sample::SamplingConfig::fromEnv();
    const std::string workload = argValue(argc, argv, "--workload", "mcf");
    SystemConfig cfg = makeConfig(workload, PolicyKind::SilcFm, opts);
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--paper-channels") == 0) {
            cfg.nm_timing = dram::hbm2Params();
            cfg.fm_timing = dram::ddr3Params();
            cfg.fm_timing.channels = 4;
        }
    }

    std::printf("=== Sampling validation: %s, silcfm ===\n",
                workload.c_str());
    std::printf("(cores=%u, instr/core=%s, period=%s, window=%s, "
                "warmup=%s)\n\n",
                opts.cores, u64str(opts.instructions_per_core).c_str(),
                u64str(scfg.period).c_str(), u64str(scfg.window).c_str(),
                u64str(scfg.warmup).c_str());

    const auto t_full = std::chrono::steady_clock::now();
    SimResult full;
    {
        System sys(cfg);
        full = sys.run();
    }
    const double full_s = seconds_since(t_full);

    const auto t_samp = std::chrono::steady_clock::now();
    const SimResult sampled = sample::runMaybeSampled(cfg, scfg);
    const double samp_s = seconds_since(t_samp);

    // Full-run values for each sampled metric, in kMetricDefs order.
    const struct
    {
        const char *name;
        double full_value;
    } rows[] = {
        {"ipc", full.ipc},
        {"mpki", full.mpki},
        {"avg_miss_latency", full.avg_miss_latency},
        {"access_rate", full.access_rate},
        {"nm_demand_fraction", full.nmDemandFraction()},
    };

    std::printf("%-20s %12s %12s %12s %8s\n", "metric", "full",
                "sampled", "ci95_half", "within");
    int outside = 0;
    for (const auto &row : rows) {
        const sample::MetricEstimate *e =
            sampled.sampling ? sampled.sampling->find(row.name) : nullptr;
        if (e == nullptr)
            continue;
        const bool within =
            std::fabs(row.full_value - e->mean) <= e->ci_half;
        outside += within ? 0 : 1;
        std::printf("%-20s %12.4f %12.4f %12.4f %8s\n", row.name,
                    row.full_value, e->mean, e->ci_half,
                    within ? "yes" : "NO");
    }
    if (sampled.sampling) {
        // Sampled-only metrics (no full-run scalar in SimResult).
        for (const char *name :
             {"swaps_per_kilo", "bypass_per_kilo", "fm_read_p50",
              "fm_read_p95", "nm_read_p95"}) {
            const sample::MetricEstimate *e = sampled.sampling->find(name);
            if (e != nullptr) {
                std::printf("%-20s %12s %12.4f %12.4f %8s\n", name, "-",
                            e->mean, e->ci_half, "-");
            }
        }
        std::printf("\ncheckpoints=%u windows=%u early_stopped=%d\n",
                    sampled.sampling->checkpoints,
                    sampled.sampling->windows,
                    sampled.sampling->early_stopped ? 1 : 0);
    }
    std::printf("full %.2fs, sampled %.2fs, metrics outside CI: %d\n",
                full_s, samp_s, outside);

    const std::string json = jsonOutputPath(argc, argv);
    if (!json.empty()) {
        ResultWriter writer(json, opts);
        writer.add(full);
        writer.add(sampled);
        writer.write();
        std::printf("wrote %s\n", json.c_str());
    }

    const double speedup = samp_s > 0.0 ? full_s / samp_s : 0.0;
    std::fprintf(stderr,
                 "[sampling] %u windows in %ss (%sx speedup, %u "
                 "checkpoints)\n",
                 sampled.sampling ? sampled.sampling->windows : 0,
                 fixedDecimal(samp_s, 2).c_str(),
                 fixedDecimal(speedup, 2).c_str(),
                 sampled.sampling ? sampled.sampling->checkpoints : 0);
    return 0;
}
