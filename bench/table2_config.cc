/**
 * @file
 * Table II — "Experimental Parameters": prints the active system
 * configuration next to the paper's values, flagging every deliberate
 * scaling substitution (see DESIGN.md).
 */

#include <cinttypes>
#include <cstdarg>
#include <cstdio>

#include "sim/experiment.hh"
#include "sim/system.hh"

using namespace silc;
using namespace silc::sim;

namespace {

void
row(const char *name, const std::string &ours, const char *paper)
{
    std::printf("  %-28s %-26s %s\n", name, ours.c_str(), paper);
}

std::string
fmt(const char *f, ...)
{
    char buf[128];
    va_list args;
    va_start(args, f);
    std::vsnprintf(buf, sizeof(buf), f, args);
    va_end(args);
    return buf;
}

} // namespace

int
main()
{
    ExperimentOptions opts = ExperimentOptions::fromEnv();
    SystemConfig cfg = makeConfig("mcf", PolicyKind::SilcFm, opts);

    std::printf("=== Table II: experimental parameters "
                "(this repo vs paper) ===\n\n");

    std::printf("Processor\n");
    row("cores", fmt("%u", cfg.cores), "16 (scaled: 1/2)");
    row("width", fmt("%u-wide OoO (ROB model)",
                     cfg.core_params.width), "4-wide out-of-order");
    row("ROB entries", fmt("%u", cfg.core_params.rob_entries), "128");

    std::printf("\nCaches\n");
    row("L1 I (private)",
        fmt("%" PRIu64 "KB, %u-way, %u cycles",
            cfg.l1i.size_bytes >> 10,
            cfg.l1i.associativity, cfg.l1i.latency_cycles),
        "64KB, 2-way, 4 cycles");
    row("L1 D (private)",
        fmt("%" PRIu64 "KB, %u-way, %u cycles",
            cfg.l1d.size_bytes >> 10,
            cfg.l1d.associativity, cfg.l1d.latency_cycles),
        "16KB, 4-way, 4 cycles");
    row("L2 (shared)",
        fmt("%" PRIu64 "KB, %u-way, %u cycles",
            cfg.l2.size_bytes >> 10,
            cfg.l2.associativity, cfg.l2.latency_cycles),
        "8MB, 16-way, 11 cycles (scaled with footprints)");

    std::printf("\nNM (HBM)\n");
    row("bus frequency",
        fmt("%u MHz (DDR %.1f GT/s)", cfg.nm_timing.bus_freq_mhz,
            cfg.nm_timing.bus_freq_mhz * 2 / 1000.0),
        "800 MHz (DDR 1.6 GT/s)");
    row("bus width", fmt("%u bits", cfg.nm_timing.bus_width_bits),
        "128 bits (scaled with core count)");
    row("channels", fmt("%u", cfg.nm_timing.channels), "8");
    row("banks/rank", fmt("%u", cfg.nm_timing.banks_per_rank), "8");
    row("row buffer",
        fmt("%" PRIu64 "KB open-page",
            cfg.nm_timing.row_buffer_bytes >> 10),
        "8KB open-page");
    row("tCAS-tRCD-tRP-tRAS",
        fmt("%u-%u-%u-%u", cfg.nm_timing.t_cas, cfg.nm_timing.t_rcd,
            cfg.nm_timing.t_rp, cfg.nm_timing.t_ras),
        "JEDEC 235A derived");
    row("capacity", fmt("%" PRIu64 " MiB", cfg.nm_bytes >> 20),
        "FM:NM = 4:1 (same ratio)");

    std::printf("\nFM (DDR3)\n");
    row("bus frequency",
        fmt("%u MHz (DDR %.1f GT/s)", cfg.fm_timing.bus_freq_mhz,
            cfg.fm_timing.bus_freq_mhz * 2 / 1000.0),
        "800 MHz (DDR 1.6 GT/s)");
    row("bus width", fmt("%u bits", cfg.fm_timing.bus_width_bits),
        "64 bits");
    row("channels", fmt("%u", cfg.fm_timing.channels),
        "4 (scaled with core count; NM:FM bandwidth stays 4:1)");
    row("banks/rank", fmt("%u", cfg.fm_timing.banks_per_rank), "8");
    row("queues/channel",
        fmt("%u read + %u write", cfg.fm_timing.queue_depth,
            cfg.fm_timing.queue_depth),
        "32-entry read and write");
    row("capacity", fmt("%" PRIu64 " MiB", cfg.fm_bytes >> 20),
        "multi-GB (scaled 1/1000; ratios preserved)");

    std::printf("\nSILC-FM\n");
    row("associativity", fmt("%u-way", cfg.silc.associativity),
        "4-way");
    row("hot threshold",
        fmt("%u (aging every %" PRIu64 " accesses)",
            cfg.silc.hot_threshold, cfg.silc.aging_interval),
        "50 (aging every 1M accesses; scaled together)");
    row("bypass target", fmt("%.2f", cfg.silc.bypass_target),
        "0.8 access rate");
    row("predictor", fmt("%" PRIu64 " entries", cfg.silc.predictor_entries),
        "4K entries, 1 cycle");
    row("history table",
        fmt("%" PRIu64 " entries", cfg.silc.history_entries),
        "1M entries");

    const double ratio = dram::DramTimingParams(cfg.nm_timing)
                             .peakBytesPerTick() /
        dram::DramTimingParams(cfg.fm_timing).peakBytesPerTick();
    std::printf("\nNM:FM peak bandwidth ratio: %.1f:1 "
                "(paper: 4:1, bypass math needs N+1 = 5)\n", ratio);
    return 0;
}
