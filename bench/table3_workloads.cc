/**
 * @file
 * Table III — "Workload Descriptions": measured per-core LLC MPKI and
 * footprint for each synthetic benchmark, checked against its intended
 * class (low < 11, medium 11-32, high > 32).
 *
 * The paper's absolute footprints are GB-scale; this scaled system
 * preserves the footprint:NM ratios instead (see DESIGN.md), so the
 * footprint column reports both MiB and that ratio.
 */

#include <cstdio>
#include <vector>

#include "sim/parallel.hh"
#include "sim/result_writer.hh"
#include "sim/system.hh"
#include "trace/profiles.hh"

using namespace silc;
using namespace silc::sim;

int
main(int argc, char **argv)
{
    ExperimentOptions opts = ExperimentOptions::fromEnv();
    ParallelRunner runner(opts);
    runner.setJsonPath(jsonOutputPath(argc, argv));

    std::printf("=== Table III: measured workload characteristics ===\n");
    std::printf("(per-core MPKI from the no-NM baseline; footprint = "
                "unique 2KB pages touched)\n\n");
    std::printf("%-10s %-8s %8s %12s %10s %7s\n", "bench", "class",
                "MPKI", "footprint", "x NM", "ok?");

    // These runs ARE the baselines, so submit() routes them all through
    // the ParallelRunner cache.
    std::vector<ParallelRunner::Job> jobs;
    for (const auto &profile : trace::table3Profiles())
        jobs.push_back(runner.submit(profile.name, PolicyKind::FmOnly));

    int misclassified = 0;
    size_t idx = 0;
    for (const auto &profile : trace::table3Profiles()) {
        SimResult r = jobs[idx++].get();
        const double footprint_mib =
            r.footprint_pages * kLargeBlockSize / 1048576.0;
        const double vs_nm =
            footprint_mib / (opts.nm_bytes / 1048576.0);

        const char *cls = trace::mpkiClassName(profile.mpki_class);
        bool ok = false;
        switch (profile.mpki_class) {
          case trace::MpkiClass::Low:
            ok = r.mpki < 11.0;
            break;
          case trace::MpkiClass::Medium:
            ok = r.mpki >= 11.0 && r.mpki <= 32.0;
            break;
          case trace::MpkiClass::High:
            ok = r.mpki > 32.0;
            break;
        }
        misclassified += ok ? 0 : 1;
        std::printf("%-10s %-8s %8.1f %9.1fMiB %10.2f %7s\n",
                    profile.name.c_str(), cls, r.mpki, footprint_mib,
                    vs_nm, ok ? "yes" : "NO");
        std::fflush(stdout);
    }

    std::printf("\n%s\n",
                misclassified == 0
                    ? "all 14 workloads fall in their Table III class"
                    : "WARNING: some workloads out of class");
    runner.printFooter();
    return misclassified == 0 ? 0 : 1;
}
