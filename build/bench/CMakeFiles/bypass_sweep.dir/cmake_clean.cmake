file(REMOVE_RECURSE
  "CMakeFiles/bypass_sweep.dir/bypass_sweep.cc.o"
  "CMakeFiles/bypass_sweep.dir/bypass_sweep.cc.o.d"
  "bypass_sweep"
  "bypass_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bypass_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
