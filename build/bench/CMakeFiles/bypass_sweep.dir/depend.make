# Empty dependencies file for bypass_sweep.
# This may be replaced when dependencies are built.
