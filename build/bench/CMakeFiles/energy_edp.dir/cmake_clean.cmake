file(REMOVE_RECURSE
  "CMakeFiles/energy_edp.dir/energy_edp.cc.o"
  "CMakeFiles/energy_edp.dir/energy_edp.cc.o.d"
  "energy_edp"
  "energy_edp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/energy_edp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
