file(REMOVE_RECURSE
  "CMakeFiles/fig7_comparison.dir/fig7_comparison.cc.o"
  "CMakeFiles/fig7_comparison.dir/fig7_comparison.cc.o.d"
  "fig7_comparison"
  "fig7_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
