file(REMOVE_RECURSE
  "CMakeFiles/fig8_bandwidth.dir/fig8_bandwidth.cc.o"
  "CMakeFiles/fig8_bandwidth.dir/fig8_bandwidth.cc.o.d"
  "fig8_bandwidth"
  "fig8_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
