file(REMOVE_RECURSE
  "CMakeFiles/fig9_capacity.dir/fig9_capacity.cc.o"
  "CMakeFiles/fig9_capacity.dir/fig9_capacity.cc.o.d"
  "fig9_capacity"
  "fig9_capacity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_capacity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
