# Empty compiler generated dependencies file for fig9_capacity.
# This may be replaced when dependencies are built.
