file(REMOVE_RECURSE
  "CMakeFiles/example_hot_working_set.dir/hot_working_set.cpp.o"
  "CMakeFiles/example_hot_working_set.dir/hot_working_set.cpp.o.d"
  "example_hot_working_set"
  "example_hot_working_set.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_hot_working_set.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
