# Empty dependencies file for example_hot_working_set.
# This may be replaced when dependencies are built.
