
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cache/cache.cc" "src/CMakeFiles/silcfm.dir/cache/cache.cc.o" "gcc" "src/CMakeFiles/silcfm.dir/cache/cache.cc.o.d"
  "/root/repo/src/cache/mshr.cc" "src/CMakeFiles/silcfm.dir/cache/mshr.cc.o" "gcc" "src/CMakeFiles/silcfm.dir/cache/mshr.cc.o.d"
  "/root/repo/src/common/config.cc" "src/CMakeFiles/silcfm.dir/common/config.cc.o" "gcc" "src/CMakeFiles/silcfm.dir/common/config.cc.o.d"
  "/root/repo/src/common/event_queue.cc" "src/CMakeFiles/silcfm.dir/common/event_queue.cc.o" "gcc" "src/CMakeFiles/silcfm.dir/common/event_queue.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/silcfm.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/silcfm.dir/common/logging.cc.o.d"
  "/root/repo/src/common/stats.cc" "src/CMakeFiles/silcfm.dir/common/stats.cc.o" "gcc" "src/CMakeFiles/silcfm.dir/common/stats.cc.o.d"
  "/root/repo/src/core/activity_monitor.cc" "src/CMakeFiles/silcfm.dir/core/activity_monitor.cc.o" "gcc" "src/CMakeFiles/silcfm.dir/core/activity_monitor.cc.o.d"
  "/root/repo/src/core/bandwidth_balancer.cc" "src/CMakeFiles/silcfm.dir/core/bandwidth_balancer.cc.o" "gcc" "src/CMakeFiles/silcfm.dir/core/bandwidth_balancer.cc.o.d"
  "/root/repo/src/core/bitvector_table.cc" "src/CMakeFiles/silcfm.dir/core/bitvector_table.cc.o" "gcc" "src/CMakeFiles/silcfm.dir/core/bitvector_table.cc.o.d"
  "/root/repo/src/core/predictor.cc" "src/CMakeFiles/silcfm.dir/core/predictor.cc.o" "gcc" "src/CMakeFiles/silcfm.dir/core/predictor.cc.o.d"
  "/root/repo/src/core/set_metadata.cc" "src/CMakeFiles/silcfm.dir/core/set_metadata.cc.o" "gcc" "src/CMakeFiles/silcfm.dir/core/set_metadata.cc.o.d"
  "/root/repo/src/core/silc_fm.cc" "src/CMakeFiles/silcfm.dir/core/silc_fm.cc.o" "gcc" "src/CMakeFiles/silcfm.dir/core/silc_fm.cc.o.d"
  "/root/repo/src/cpu/core.cc" "src/CMakeFiles/silcfm.dir/cpu/core.cc.o" "gcc" "src/CMakeFiles/silcfm.dir/cpu/core.cc.o.d"
  "/root/repo/src/dram/bank.cc" "src/CMakeFiles/silcfm.dir/dram/bank.cc.o" "gcc" "src/CMakeFiles/silcfm.dir/dram/bank.cc.o.d"
  "/root/repo/src/dram/controller.cc" "src/CMakeFiles/silcfm.dir/dram/controller.cc.o" "gcc" "src/CMakeFiles/silcfm.dir/dram/controller.cc.o.d"
  "/root/repo/src/dram/dram_system.cc" "src/CMakeFiles/silcfm.dir/dram/dram_system.cc.o" "gcc" "src/CMakeFiles/silcfm.dir/dram/dram_system.cc.o.d"
  "/root/repo/src/dram/energy.cc" "src/CMakeFiles/silcfm.dir/dram/energy.cc.o" "gcc" "src/CMakeFiles/silcfm.dir/dram/energy.cc.o.d"
  "/root/repo/src/dram/timing.cc" "src/CMakeFiles/silcfm.dir/dram/timing.cc.o" "gcc" "src/CMakeFiles/silcfm.dir/dram/timing.cc.o.d"
  "/root/repo/src/policy/cameo.cc" "src/CMakeFiles/silcfm.dir/policy/cameo.cc.o" "gcc" "src/CMakeFiles/silcfm.dir/policy/cameo.cc.o.d"
  "/root/repo/src/policy/hma.cc" "src/CMakeFiles/silcfm.dir/policy/hma.cc.o" "gcc" "src/CMakeFiles/silcfm.dir/policy/hma.cc.o.d"
  "/root/repo/src/policy/policy.cc" "src/CMakeFiles/silcfm.dir/policy/policy.cc.o" "gcc" "src/CMakeFiles/silcfm.dir/policy/policy.cc.o.d"
  "/root/repo/src/policy/pom.cc" "src/CMakeFiles/silcfm.dir/policy/pom.cc.o" "gcc" "src/CMakeFiles/silcfm.dir/policy/pom.cc.o.d"
  "/root/repo/src/policy/static_random.cc" "src/CMakeFiles/silcfm.dir/policy/static_random.cc.o" "gcc" "src/CMakeFiles/silcfm.dir/policy/static_random.cc.o.d"
  "/root/repo/src/sim/experiment.cc" "src/CMakeFiles/silcfm.dir/sim/experiment.cc.o" "gcc" "src/CMakeFiles/silcfm.dir/sim/experiment.cc.o.d"
  "/root/repo/src/sim/metrics.cc" "src/CMakeFiles/silcfm.dir/sim/metrics.cc.o" "gcc" "src/CMakeFiles/silcfm.dir/sim/metrics.cc.o.d"
  "/root/repo/src/sim/system.cc" "src/CMakeFiles/silcfm.dir/sim/system.cc.o" "gcc" "src/CMakeFiles/silcfm.dir/sim/system.cc.o.d"
  "/root/repo/src/sim/translation.cc" "src/CMakeFiles/silcfm.dir/sim/translation.cc.o" "gcc" "src/CMakeFiles/silcfm.dir/sim/translation.cc.o.d"
  "/root/repo/src/trace/file_trace.cc" "src/CMakeFiles/silcfm.dir/trace/file_trace.cc.o" "gcc" "src/CMakeFiles/silcfm.dir/trace/file_trace.cc.o.d"
  "/root/repo/src/trace/generator.cc" "src/CMakeFiles/silcfm.dir/trace/generator.cc.o" "gcc" "src/CMakeFiles/silcfm.dir/trace/generator.cc.o.d"
  "/root/repo/src/trace/profiles.cc" "src/CMakeFiles/silcfm.dir/trace/profiles.cc.o" "gcc" "src/CMakeFiles/silcfm.dir/trace/profiles.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
