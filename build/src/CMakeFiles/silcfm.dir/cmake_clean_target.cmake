file(REMOVE_RECURSE
  "libsilcfm.a"
)
