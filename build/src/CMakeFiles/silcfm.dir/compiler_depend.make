# Empty compiler generated dependencies file for silcfm.
# This may be replaced when dependencies are built.
