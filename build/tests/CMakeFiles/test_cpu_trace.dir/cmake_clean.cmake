file(REMOVE_RECURSE
  "CMakeFiles/test_cpu_trace.dir/test_cpu_trace.cc.o"
  "CMakeFiles/test_cpu_trace.dir/test_cpu_trace.cc.o.d"
  "test_cpu_trace"
  "test_cpu_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cpu_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
