# Empty compiler generated dependencies file for test_cpu_trace.
# This may be replaced when dependencies are built.
