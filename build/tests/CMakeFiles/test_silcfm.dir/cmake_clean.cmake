file(REMOVE_RECURSE
  "CMakeFiles/test_silcfm.dir/test_silcfm.cc.o"
  "CMakeFiles/test_silcfm.dir/test_silcfm.cc.o.d"
  "test_silcfm"
  "test_silcfm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_silcfm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
