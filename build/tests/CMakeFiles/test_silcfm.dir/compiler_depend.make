# Empty compiler generated dependencies file for test_silcfm.
# This may be replaced when dependencies are built.
