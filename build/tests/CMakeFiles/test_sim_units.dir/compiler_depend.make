# Empty compiler generated dependencies file for test_sim_units.
# This may be replaced when dependencies are built.
