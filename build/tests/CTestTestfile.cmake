# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(test_common "/root/repo/build/tests/test_common")
set_tests_properties(test_common PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;17;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_dram "/root/repo/build/tests/test_dram")
set_tests_properties(test_dram PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;17;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_cache "/root/repo/build/tests/test_cache")
set_tests_properties(test_cache PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;17;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_cpu_trace "/root/repo/build/tests/test_cpu_trace")
set_tests_properties(test_cpu_trace PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;17;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_policies "/root/repo/build/tests/test_policies")
set_tests_properties(test_policies PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;17;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_silcfm "/root/repo/build/tests/test_silcfm")
set_tests_properties(test_silcfm PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;17;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_sim_units "/root/repo/build/tests/test_sim_units")
set_tests_properties(test_sim_units PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;17;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_system "/root/repo/build/tests/test_system")
set_tests_properties(test_system PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;17;add_test;/root/repo/tests/CMakeLists.txt;0;")
