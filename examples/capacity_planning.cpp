/**
 * @file
 * Capacity planning scenario: how much die-stacked NM does a memory-
 * bound workload need?  Sweeps the NM:FM capacity ratio (as in the
 * paper's Figure 9) for one workload and prints speedup, access rate
 * and migration overhead per point — the numbers an architect would use
 * to size the stack.
 *
 *     ./example_capacity_planning [workload=mcf] [policy=silcfm]
 */

#include <cstdio>
#include <vector>

#include "common/config.hh"
#include "sim/experiment.hh"

using namespace silc;

int
main(int argc, char **argv)
{
    Config cli = Config::fromArgs(argc, argv);
    const std::string workload = cli.getString("workload", "mcf");
    const sim::PolicyKind kind =
        sim::policyKindFromName(cli.getString("policy", "silcfm"));

    sim::ExperimentOptions opts = sim::ExperimentOptions::fromEnv();
    sim::ExperimentRunner runner(opts);

    std::printf("== NM capacity planning: %s under %s ==\n",
                workload.c_str(), sim::policyKindName(kind));
    std::printf("FM fixed at %llu MiB; footprint scales with the "
                "workload profile.\n\n",
                static_cast<unsigned long long>(opts.fm_bytes >> 20));
    std::printf("%8s %10s %8s %8s %12s %12s\n", "NM:FM", "NM(MiB)",
                "speedup", "accrate", "mig(MiB)", "missLat");

    const std::vector<uint64_t> dividers = {16, 8, 4, 2};
    for (uint64_t div : dividers) {
        sim::SystemConfig cfg = sim::makeConfig(workload, kind, opts);
        cfg.nm_bytes = opts.fm_bytes / div;
        sim::SimResult r = runner.runConfig(cfg);
        std::printf("   1/%-3llu %10.1f %8.3f %8.3f %12.1f %12.0f\n",
                    static_cast<unsigned long long>(div),
                    cfg.nm_bytes / 1048576.0, runner.speedup(r),
                    r.access_rate, r.migration_bytes / 1048576.0,
                    r.avg_miss_latency);
    }

    std::printf("\nHint: the knee of the speedup curve is the "
                "cost-effective stack size for this workload.\n");
    return 0;
}
