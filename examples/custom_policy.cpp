/**
 * @file
 * Extending the library: implement your own flat-memory policy against
 * the FlatMemoryPolicy interface and race it against the built-ins.
 *
 * The example policy is "FirstTouchPin": the first NM-frames-worth of
 * distinct 2KB pages that miss the LLC are permanently pinned into NM
 * (one bulk 2KB migration each); everything else stays in FM.  It is a
 * deliberately simple contrast to SILC-FM's adaptive subblocking.
 *
 *     ./example_custom_policy [workload=omnet]
 */

#include <cstdio>
#include <unordered_map>

#include "common/config.hh"
#include "policy/policy.hh"
#include "sim/experiment.hh"
#include "sim/system.hh"
#include "trace/profiles.hh"

using namespace silc;
using policy::DemandCallback;
using policy::FlatMemoryPolicy;
using policy::Location;
using policy::PolicyEnv;

namespace {

/** Pin the first distinct pages that miss into NM, forever. */
class FirstTouchPinPolicy : public FlatMemoryPolicy
{
  public:
    explicit FirstTouchPinPolicy(PolicyEnv env)
        : FlatMemoryPolicy(env),
          nm_pages_(env.nm->capacity() / kLargeBlockSize)
    {
    }

    const char *name() const override { return "firsttouch"; }

    uint64_t
    flatSpaceBytes() const override
    {
        return env_.nm->capacity() + env_.fm->capacity();
    }

    Location
    locate(Addr paddr) const override
    {
        const Addr sub = subblockAddr(paddr);
        const uint64_t page = sub >> kLargeBlockBits;
        const Addr offset = sub & (kLargeBlockSize - 1);

        // NM-native pages that were displaced by a pin live at the
        // pinned page's FM home; pinned FM pages live in the frame they
        // claimed.
        auto pin = pinned_.find(page);
        if (pin != pinned_.end())
            return Location{true,
                            pin->second * kLargeBlockSize + offset};
        if (page < nm_pages_) {
            auto displaced = displaced_.find(page);
            if (displaced != displaced_.end()) {
                return Location{false, (displaced->second - nm_pages_) *
                                           kLargeBlockSize +
                                       offset};
            }
            return Location{true, page * kLargeBlockSize + offset};
        }
        return Location{false,
                        (page - nm_pages_) * kLargeBlockSize + offset};
    }

    void
    demandAccess(Addr paddr, bool is_write, CoreId core, Addr pc,
                 DemandCallback done, Tick now) override
    {
        (void)is_write;
        (void)pc;
        const uint64_t page = paddr >> kLargeBlockBits;

        if (page >= nm_pages_ && next_frame_ < nm_pages_ &&
            pinned_.find(page) == pinned_.end()) {
            pinPage(page, core, now);
        }

        const Location loc = locate(paddr);
        recordService(loc.in_nm);
        issueRead(deviceFor(loc), loc.device_addr,
                  static_cast<uint32_t>(kSubblockSize),
                  dram::TrafficClass::Demand, core, std::move(done),
                  now);
    }

  private:
    void
    pinPage(uint64_t page, CoreId core, Tick now)
    {
        const uint64_t frame = next_frame_++;
        // 2KB swap between the claimed frame and the page's FM home.
        for (uint32_t s = 0; s < kSubblocksPerBlock; ++s) {
            const Addr off = static_cast<Addr>(s) * kSubblockSize;
            const Location nm_loc{true, frame * kLargeBlockSize + off};
            const Location fm_loc{
                false, (page - nm_pages_) * kLargeBlockSize + off};
            moveSubblock(fm_loc, nm_loc, core, now);
            moveSubblock(nm_loc, fm_loc, core, now);
        }
        pinned_[page] = frame;
        displaced_[frame] = page;
    }

    uint64_t nm_pages_;
    uint64_t next_frame_ = 0;
    /** pinned FM page -> NM frame */
    std::unordered_map<uint64_t, uint64_t> pinned_;
    /** NM frame (== native page id) -> pinned page living there */
    std::unordered_map<uint64_t, uint64_t> displaced_;
};

} // namespace

int
main(int argc, char **argv)
{
    Config cli = Config::fromArgs(argc, argv);
    const std::string workload = cli.getString("workload", "omnet");
    sim::ExperimentOptions opts = sim::ExperimentOptions::fromEnv();
    sim::ExperimentRunner runner(opts);

    std::printf("== custom policy vs built-ins on %s ==\n\n",
                workload.c_str());

    // Built-ins through the standard runner.
    const Tick base = runner.baselineTicks(workload);
    for (auto kind : {sim::PolicyKind::Random, sim::PolicyKind::Cameo,
                      sim::PolicyKind::SilcFm}) {
        sim::SimResult r = runner.run(workload, kind);
        std::printf("%-11s speedup=%.3f access_rate=%.3f\n",
                    r.scheme.c_str(), runner.speedup(r), r.access_rate);
    }

    // The custom policy, assembled by hand around the same substrate.
    {
        EventQueue events;
        sim::SystemConfig cfg =
            sim::makeConfig(workload, sim::PolicyKind::Random, opts);
        dram::DramSystem nm(cfg.nm_timing, cfg.nm_bytes, events);
        dram::DramSystem fm(cfg.fm_timing, cfg.fm_bytes, events);
        PolicyEnv env{&nm, &fm, &events};
        FirstTouchPinPolicy custom(env);

        // Drive the policy directly with the workload's LLC-miss-like
        // stream (a light-weight stand-in for the full system loop).
        trace::SyntheticGenerator gen(trace::findProfile(workload),
                                      opts.seed);
        Tick now = 0;
        uint64_t outstanding = 0;
        for (uint64_t i = 0; i < 200'000; ++i) {
            trace::TraceInstruction ins = gen.next();
            if (!ins.is_mem)
                continue;
            const Addr paddr =
                (ins.vaddr >> kSubblockBits) * kSubblockSize %
                custom.flatSpaceBytes();
            ++outstanding;
            custom.demandAccess(subblockAddr(paddr), ins.is_write, 0,
                                ins.pc,
                                [&](Tick) { --outstanding; }, now);
            now += 20;
            nm.tick(now);
            fm.tick(now);
            events.runDue(now);
        }
        while (outstanding > 0 && now < 1'000'000'000) {
            ++now;
            nm.tick(now);
            fm.tick(now);
            events.runDue(now);
        }
        std::printf("%-11s access_rate=%.3f (driven standalone; "
                    "baseline ticks for context: %llu)\n",
                    custom.name(), custom.accessRate(),
                    static_cast<unsigned long long>(base));
    }

    std::printf("\nA policy only needs demandAccess(), locate() and "
                "flatSpaceBytes(); the base class provides DRAM issue "
                "helpers, swap plumbing, and access-rate accounting.\n");
    return 0;
}
