/**
 * @file
 * Hot-working-set scenario: a skewed in-memory key-value-store-like
 * workload (xalancbmk profile: Zipf-hot pages that collide in the NM
 * index) and how SILC-FM's locking and associativity keep the hot set
 * pinned in fast memory even as the hot set drifts.
 *
 * Prints a feature ladder (swap-only -> +locking -> +associativity ->
 * +bypass), the locking activity, and predictor/history statistics —
 * the paper's Figure 6 story for one workload, with introspection.
 *
 *     ./example_hot_working_set [workload=xalanc]
 */

#include <cstdio>

#include "common/config.hh"
#include "core/silc_fm.hh"
#include "sim/experiment.hh"
#include "sim/system.hh"

using namespace silc;

namespace {

struct Variant
{
    const char *label;
    bool assoc4;
    bool locking;
    bool bypass;
};

} // namespace

int
main(int argc, char **argv)
{
    Config cli = Config::fromArgs(argc, argv);
    const std::string workload = cli.getString("workload", "xalanc");
    sim::ExperimentOptions opts = sim::ExperimentOptions::fromEnv();
    sim::ExperimentRunner runner(opts);

    std::printf("== hot working set on %s: SILC-FM feature ladder ==\n\n",
                workload.c_str());
    std::printf("%-22s %8s %8s %7s %9s %9s\n", "variant", "speedup",
                "accrate", "locks", "restores", "mig(MiB)");

    const Variant variants[] = {
        {"swap only (1-way)", false, false, false},
        {"+ locking", false, true, false},
        {"+ associativity (4)", true, true, false},
        {"+ bypassing", true, true, true},
    };

    for (const Variant &v : variants) {
        sim::SystemConfig cfg =
            sim::makeConfig(workload, sim::PolicyKind::SilcFm, opts);
        cfg.silc.associativity = v.assoc4 ? 4 : 1;
        cfg.silc.enable_locking = v.locking;
        cfg.silc.enable_bypass = v.bypass;

        sim::System system(cfg);
        sim::SimResult r = system.run();
        auto &silc_policy =
            dynamic_cast<core::SilcFmPolicy &>(system.policyRef());

        std::printf("%-22s %8.3f %8.3f %7llu %9llu %9.1f\n", v.label,
                    runner.speedup(r), r.access_rate,
                    static_cast<unsigned long long>(silc_policy.locks()),
                    static_cast<unsigned long long>(
                        silc_policy.restores()),
                    r.migration_bytes / 1048576.0);

        if (v.bypass) {
            std::printf(
                "\n-- full-feature introspection --\n"
                "locked ways now     : %llu\n"
                "way predictor hits  : %.1f%%\n"
                "location pred hits  : %.1f%%\n"
                "history table hits  : %llu of %llu lookups\n"
                "bypassed accesses   : %llu\n",
                static_cast<unsigned long long>(
                    silc_policy.metadata().lockedWays()),
                100.0 * silc_policy.predictor().wayHits() /
                    std::max<uint64_t>(
                        1, silc_policy.predictor().predictions()),
                100.0 * silc_policy.predictor().locationHits() /
                    std::max<uint64_t>(
                        1, silc_policy.predictor().predictions()),
                static_cast<unsigned long long>(
                    silc_policy.historyTable().hits()),
                static_cast<unsigned long long>(
                    silc_policy.historyTable().lookups()),
                static_cast<unsigned long long>(
                    silc_policy.bypassedAccesses()));
        }
    }

    std::printf("\nLocking pins pages whose aging counter crosses the "
                "threshold; associativity protects lukewarm pages from "
                "index conflicts; bypassing trades NM hits for overall "
                "bandwidth once the access rate exceeds the target.\n");
    return 0;
}
