/**
 * @file
 * Quickstart: build a system, run one workload under SILC-FM, and print
 * the headline metrics.
 *
 *     ./example_quickstart [workload=mcf] [policy=silcfm] [cores=8] ...
 *
 * Any SystemConfig scale knob can be overridden with key=value pairs.
 */

#include <cstdio>
#include <sstream>

#include "sim/experiment.hh"
#include "sim/system.hh"
#include "common/config.hh"
#include "trace/profiles.hh"

using namespace silc;

int
main(int argc, char **argv)
{
    Config cli = Config::fromArgs(argc, argv);

    sim::ExperimentOptions opts = sim::ExperimentOptions::fromEnv();
    opts.cores = static_cast<uint32_t>(cli.getU64("cores", opts.cores));
    opts.instructions_per_core =
        cli.getU64("instructions", opts.instructions_per_core);
    opts.nm_bytes = cli.getU64("nm", opts.nm_bytes);
    opts.fm_bytes = cli.getU64("fm", opts.fm_bytes);
    opts.seed = cli.getU64("seed", opts.seed);

    const std::string workload = cli.getString("workload", "mcf");
    const sim::PolicyKind kind =
        sim::policyKindFromName(cli.getString("policy", "silcfm"));

    std::printf("== SILC-FM quickstart ==\n");
    std::printf("workload   : %s (%s MPKI class)\n", workload.c_str(),
                trace::mpkiClassName(
                    trace::findProfile(workload).mpki_class));
    std::printf("policy     : %s\n", sim::policyKindName(kind));
    std::printf("cores      : %u\n", opts.cores);
    std::printf("NM / FM    : %llu MiB / %llu MiB\n",
                static_cast<unsigned long long>(opts.nm_bytes >> 20),
                static_cast<unsigned long long>(opts.fm_bytes >> 20));

    sim::ExperimentRunner runner(opts);
    const Tick baseline = runner.baselineTicks(workload);
    sim::System system(sim::makeConfig(workload, kind, opts));
    const sim::SimResult r = system.run();
    const double speedup =
        static_cast<double>(baseline) / static_cast<double>(r.ticks);

    std::printf("\n-- results --\n");
    std::printf("execution time : %llu ticks (%.3f ms at 3.2 GHz)\n",
                static_cast<unsigned long long>(r.ticks),
                r.seconds() * 1e3);
    std::printf("speedup vs no-NM baseline : %.3f\n", speedup);
    std::printf("IPC per core   : %.3f\n", r.ipc);
    std::printf("LLC MPKI       : %.1f\n", r.mpki);
    std::printf("access rate    : %.3f (fraction of LLC misses "
                "serviced by NM)\n",
                r.access_rate);
    std::printf("avg miss lat   : %.0f ticks\n", r.avg_miss_latency);
    std::printf("NM traffic     : %.1f MiB (%.1f MiB demand)\n",
                r.nm_total_bytes / 1048576.0,
                r.nm_demand_bytes / 1048576.0);
    std::printf("FM traffic     : %.1f MiB (%.1f MiB demand)\n",
                r.fm_total_bytes / 1048576.0,
                r.fm_demand_bytes / 1048576.0);
    std::printf("migration      : %.1f MiB\n",
                r.migration_bytes / 1048576.0);
    std::printf("energy         : %.2f mJ (EDP %.3e Js)\n",
                r.energy_total_j * 1e3, r.edp);

    if (cli.getBool("stats", false)) {
        std::printf("\n-- component statistics --\n");
        std::ostringstream os;
        system.dumpStats(os);
        std::fputs(os.str().c_str(), stdout);
    }

    const auto unused = cli.unusedKeys();
    for (const auto &key : unused)
        warn("unused option '%s'", key.c_str());
    return 0;
}
