/**
 * @file
 * Trace record/replay scenario: capture an instruction trace once (here
 * from a synthetic workload; in practice from your own Pin/DynamoRIO
 * tooling via the documented `silctrace` format), then replay it through
 * different memory organizations for an apples-to-apples comparison —
 * replayed runs are bit-identical across schemes and machines.
 *
 *     ./example_trace_replay [workload=omnet] [instructions=400k]
 */

#include <cstdio>

#include "common/config.hh"
#include "sim/experiment.hh"
#include "sim/system.hh"
#include "trace/file_trace.hh"
#include "trace/profiles.hh"

using namespace silc;

int
main(int argc, char **argv)
{
    Config cli = Config::fromArgs(argc, argv);
    const std::string workload = cli.getString("workload", "omnet");
    const uint64_t instructions = cli.getU64("instructions", 400'000);
    const std::string path =
        cli.getString("out", "/tmp/silcfm_example.trace");

    // 1. Record.
    {
        trace::SyntheticGenerator gen(trace::findProfile(workload), 1);
        trace::TraceWriter writer(path);
        writer.record(gen, instructions);
        writer.finish();
        std::printf("recorded %llu instructions of '%s' to %s\n",
                    static_cast<unsigned long long>(
                        writer.instructionsWritten()),
                    workload.c_str(), path.c_str());
    }

    // 2. Replay the same trace under three organizations.
    sim::ExperimentOptions opts = sim::ExperimentOptions::fromEnv();
    opts.cores = 4;
    opts.instructions_per_core = instructions;

    std::printf("\n%-8s %12s %10s %10s\n", "scheme", "ticks", "IPC",
                "accrate");
    Tick base_ticks = 0;
    for (auto kind : {sim::PolicyKind::FmOnly, sim::PolicyKind::Cameo,
                      sim::PolicyKind::SilcFm}) {
        sim::SystemConfig cfg = sim::makeConfig(workload, kind, opts);
        cfg.trace_file = path;
        sim::System system(cfg);
        sim::SimResult r = system.run();
        if (kind == sim::PolicyKind::FmOnly)
            base_ticks = r.ticks;
        std::printf("%-8s %12llu %10.3f %10.3f   (speedup %.3f)\n",
                    r.scheme.c_str(),
                    static_cast<unsigned long long>(r.ticks), r.ipc,
                    r.access_rate,
                    static_cast<double>(base_ticks) / r.ticks);
    }

    std::printf("\nEvery core replays the recorded stream verbatim "
                "(SPEC rate mode); rerunning this binary reproduces "
                "these numbers exactly.\n");
    return 0;
}
