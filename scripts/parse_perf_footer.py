#!/usr/bin/env python3
"""Shared parser for the perf-gate stderr footers.

Both throughput gates (perf-smoke on fig7_comparison, perf-smoke-fig8 on
fig8_bandwidth --perf) emit a one-line stderr footer per timed run:

    [parallel] N jobs in X.XXs (Y.Y jobs/sec, T threads)
    [simpar]   T ticks in X.XXs (Y.YY mticks/sec, N lanes)

This script replaces the formerly-duplicated inline parsers in
.github/workflows/ci.yml: it extracts the three samples, asserts the
work count (jobs / ticks) matches the committed baseline, takes the
median, writes a *_measured.json artifact, and exits non-zero when the
median falls below baseline * (1 - regression_tolerance).

Host-class guard: committed baselines record ``host_cpus``, the core
count of the machine they were measured on.  When the current runner's
core count differs, absolute throughput is not comparable, so the gate
emits a GitHub Actions ::warning annotation and exits 0 instead of
failing — the measured artifact is still written (with
``host_cpus_mismatch: true``) for manual inspection.

Usage:
    parse_perf_footer.py --kind parallel --baseline BENCH_fig7.json \
        --footer perf_footer.txt --out BENCH_fig7_measured.json
"""

import argparse
import json
import os
import re
import statistics
import sys

KINDS = {
    "parallel": {
        "pattern": re.compile(
            r"\[parallel\] (\d+) jobs in [\d.]+s "
            r"\(([\d.]+) jobs/sec, \d+ threads\)"
        ),
        "count_key": "jobs",
        "rate_key": "jobs_per_sec",
        "rate_unit": "jobs/sec",
        "schema": "silc.bench.fig7.perf.v1",
    },
    "simpar": {
        "pattern": re.compile(
            r"\[simpar\] (\d+) ticks in [\d.]+s "
            r"\(([\d.]+) mticks/sec, \d+ lanes\)"
        ),
        "count_key": "ticks",
        "rate_key": "mticks_per_sec",
        "rate_unit": "mticks/sec",
        "schema": "silc.bench.fig8.perf.v1",
    },
}

EXPECTED_SAMPLES = 3


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--kind", choices=sorted(KINDS), required=True)
    ap.add_argument("--baseline", required=True,
                    help="committed BENCH_*.json baseline")
    ap.add_argument("--footer", required=True,
                    help="file holding the captured stderr footers")
    ap.add_argument("--out", required=True,
                    help="path for the measured-throughput artifact")
    args = ap.parse_args()

    kind = KINDS[args.kind]
    with open(args.baseline) as f:
        base = json.load(f)

    rates = []
    with open(args.footer) as f:
        for line in f:
            m = kind["pattern"].search(line)
            if not m:
                continue
            count = int(m.group(1))
            if count != base[kind["count_key"]]:
                sys.exit(
                    f"{kind['count_key']} count {count} != baseline "
                    f"{base[kind['count_key']]} — the fixture's simulated "
                    f"behavior changed; regenerate {args.baseline} "
                    f"deliberately if intended"
                )
            rates.append(float(m.group(2)))
    if len(rates) != EXPECTED_SAMPLES:
        sys.exit(f"expected {EXPECTED_SAMPLES} footers, got {rates}")

    measured = statistics.median(rates)
    floor = base[kind["rate_key"]] * (1 - base["regression_tolerance"])
    host_cpus = os.cpu_count()
    baseline_cpus = base.get("host_cpus")
    cpus_mismatch = (baseline_cpus is not None
                     and host_cpus != baseline_cpus)

    result = {
        "schema": kind["schema"],
        "command": base["command"],
        kind["count_key"]: base[kind["count_key"]],
        kind["rate_key"]: measured,
        "samples": rates,
        "baseline_" + kind["rate_key"]: base[kind["rate_key"]],
        "floor_" + kind["rate_key"]: floor,
        "host_cpus": host_cpus,
        "baseline_host_cpus": baseline_cpus,
        "host_cpus_mismatch": cpus_mismatch,
    }
    with open(args.out, "w") as f:
        json.dump(result, f, indent=2)

    print(f"measured {measured} {kind['rate_unit']} "
          f"(baseline {base[kind['rate_key']]}, floor {floor:.2f})")

    if cpus_mismatch:
        print(f"::warning title=perf gate skipped::runner has "
              f"{host_cpus} cores but {args.baseline} was measured on "
              f"{baseline_cpus}; absolute throughput is not comparable, "
              f"so the regression floor is not enforced "
              f"(measured {measured} {kind['rate_unit']})")
        return 0

    if measured < floor:
        sys.exit(
            f"perf regression: {measured} < {floor:.2f} "
            f"{kind['rate_unit']} ({base['regression_tolerance']:.0%} "
            f"below committed baseline)"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
