#include "cache/cache.hh"

#include "common/logging.hh"
#include "common/serialize.hh"

namespace silc {
namespace cache {

void
CacheParams::validate() const
{
    if (!isPowerOf2(line_bytes) || line_bytes == 0)
        fatal("%s: line size must be a power of two", name.c_str());
    if (associativity == 0)
        fatal("%s: zero associativity", name.c_str());
    if (size_bytes % (static_cast<uint64_t>(line_bytes) * associativity)
        != 0) {
        fatal("%s: size not divisible by way size", name.c_str());
    }
    if (!isPowerOf2(numSets()))
        fatal("%s: number of sets must be a power of two", name.c_str());
}

Cache::Cache(CacheParams params)
    : params_(std::move(params))
{
    params_.validate();
    num_sets_ = params_.numSets();
    line_shift_ = floorLog2(params_.line_bytes);
    set_bits_ = floorLog2(num_sets_);
    lines_.assign(num_sets_ * params_.associativity, Line{});
}

uint64_t
Cache::setIndex(Addr addr) const
{
    return (addr >> line_shift_) & (num_sets_ - 1);
}

Addr
Cache::tagOf(Addr addr) const
{
    return addr >> line_shift_ >> set_bits_;
}

Addr
Cache::lineAddr(Addr tag, uint64_t set) const
{
    return ((tag << set_bits_) | set) << line_shift_;
}

Cache::Line *
Cache::findLine(Addr tag, uint64_t set)
{
    Line *base = &lines_[set * params_.associativity];
    for (uint32_t w = 0; w < params_.associativity; ++w) {
        if (base[w].valid && base[w].tag == tag)
            return &base[w];
    }
    return nullptr;
}

const Cache::Line *
Cache::findLine(Addr tag, uint64_t set) const
{
    const Line *base = &lines_[set * params_.associativity];
    for (uint32_t w = 0; w < params_.associativity; ++w) {
        if (base[w].valid && base[w].tag == tag)
            return &base[w];
    }
    return nullptr;
}

Cache::Line *
Cache::scanSet(Addr tag, uint64_t set, Line **invalid_out,
               Line **lru_out)
{
    // One pass per lookup: the matching line if present, plus the first
    // invalid way (the preferred victim) and the LRU-minimum way for the
    // miss path — access() and fill() used to walk the set once to find
    // the line and again to pick a victim.  The LRU minimum runs over
    // every way regardless of validity; it is only consulted when no
    // invalid way exists, in which case the two sets coincide.
    Line *base = &lines_[set * params_.associativity];
    Line *invalid = nullptr;
    Line *lru_min = base;
    for (uint32_t w = 0; w < params_.associativity; ++w) {
        if (base[w].valid) {
            if (base[w].tag == tag)
                return &base[w];
        } else if (invalid == nullptr) {
            invalid = &base[w];
        }
        if (base[w].lru < lru_min->lru)
            lru_min = &base[w];
    }
    *invalid_out = invalid;
    *lru_out = lru_min;
    return nullptr;
}

Cache::Line &
Cache::victimLine(uint64_t set)
{
    // Only reached for Random replacement when every way is valid
    // (scanSet() hands the miss path an invalid way or the LRU minimum
    // first).
    Line *base = &lines_[set * params_.associativity];
    // Deterministic round-robin pseudo-random victim.
    rr_victim_ = (rr_victim_ + 1) % params_.associativity;
    return base[rr_victim_];
}

AccessOutcome
Cache::access(Addr addr, bool is_write)
{
    const uint64_t set = setIndex(addr);
    const Addr tag = tagOf(addr);
    AccessOutcome out;

    Line *invalid = nullptr;
    Line *lru_min = nullptr;
    if (Line *line = scanSet(tag, set, &invalid, &lru_min)) {
        ++hits_;
        out.hit = true;
        line->lru = ++lru_clock_;
        if (is_write)
            line->dirty = true;
        return out;
    }

    ++misses_;
    Line &victim = invalid            ? *invalid
        : params_.replacement == Replacement::Lru ? *lru_min
                                                  : victimLine(set);
    if (victim.valid) {
        ++evictions_;
        if (victim.dirty) {
            ++writebacks_;
            out.writeback = true;
            out.writeback_addr = lineAddr(victim.tag, set);
        }
    }
    victim.tag = tag;
    victim.valid = true;
    victim.dirty = is_write;
    victim.lru = ++lru_clock_;
    return out;
}

AccessOutcome
Cache::fill(Addr addr, bool dirty)
{
    const uint64_t set = setIndex(addr);
    const Addr tag = tagOf(addr);
    AccessOutcome out;

    Line *invalid = nullptr;
    Line *lru_min = nullptr;
    if (Line *line = scanSet(tag, set, &invalid, &lru_min)) {
        out.hit = true;
        if (dirty)
            line->dirty = true;
        return out;
    }

    Line &victim = invalid            ? *invalid
        : params_.replacement == Replacement::Lru ? *lru_min
                                                  : victimLine(set);
    if (victim.valid) {
        ++evictions_;
        if (victim.dirty) {
            ++writebacks_;
            out.writeback = true;
            out.writeback_addr = lineAddr(victim.tag, set);
        }
    }
    victim.tag = tag;
    victim.valid = true;
    victim.dirty = dirty;
    victim.lru = ++lru_clock_;
    return out;
}

bool
Cache::accessIfHit(Addr addr, bool is_write)
{
    Line *line = findLine(tagOf(addr), setIndex(addr));
    if (line == nullptr)
        return false;
    ++hits_;
    line->lru = ++lru_clock_;
    if (is_write)
        line->dirty = true;
    return true;
}

bool
Cache::probe(Addr addr) const
{
    return findLine(tagOf(addr), setIndex(addr)) != nullptr;
}

bool
Cache::invalidate(Addr addr)
{
    if (Line *line = findLine(tagOf(addr), setIndex(addr))) {
        const bool was_dirty = line->dirty;
        line->valid = false;
        line->dirty = false;
        line->tag = kAddrInvalid;
        return was_dirty;
    }
    return false;
}

void
Cache::reset()
{
    lines_.assign(num_sets_ * params_.associativity, Line{});
    lru_clock_ = 0;
    rr_victim_ = 0;
    hits_ = misses_ = evictions_ = writebacks_ = 0;
}

void
Cache::snapshot(BlobWriter &w) const
{
    w.putU64(lines_.size());
    for (const Line &l : lines_) {
        w.putU64(l.tag);
        w.putBool(l.valid);
        w.putBool(l.dirty);
        w.putU64(l.lru);
    }
    w.putU64(lru_clock_);
    w.putU64(rr_victim_);
}

void
Cache::restore(BlobReader &r)
{
    const uint64_t n = r.getU64();
    if (n != lines_.size()) {
        fatal("%s: checkpoint has %llu lines, cache has %zu (geometry "
              "mismatch)", params_.name.c_str(),
              static_cast<unsigned long long>(n), lines_.size());
    }
    for (Line &l : lines_) {
        l.tag = r.getU64();
        l.valid = r.getBool();
        l.dirty = r.getBool();
        l.lru = r.getU64();
    }
    lru_clock_ = r.getU64();
    rr_victim_ = r.getU64();
    hits_ = misses_ = evictions_ = writebacks_ = 0;
}

} // namespace cache
} // namespace silc
