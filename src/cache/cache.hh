/**
 * @file
 * Set-associative write-back, write-allocate cache with LRU replacement.
 *
 * The cache is functional (hit/miss and victim bookkeeping); access
 * latencies are applied by the memory hierarchy that owns it.  Geometry
 * defaults follow Table II of the paper (L1I 64K/2w, L1D 16K/4w,
 * shared L2 8M/16w, 64B lines).
 */

#ifndef SILC_CACHE_CACHE_HH
#define SILC_CACHE_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace silc {

class BlobWriter;
class BlobReader;

namespace cache {

/** Replacement policy selector. */
enum class Replacement { Lru, Random };

/** Cache geometry and behaviour. */
struct CacheParams
{
    std::string name = "cache";
    uint64_t size_bytes = 16 * 1024;
    uint32_t associativity = 4;
    uint32_t line_bytes = static_cast<uint32_t>(kSubblockSize);
    uint32_t latency_cycles = 4;
    Replacement replacement = Replacement::Lru;

    uint64_t numSets() const
    {
        return size_bytes / (static_cast<uint64_t>(line_bytes) *
                             associativity);
    }

    /** Sanity checks; fatal() on inconsistencies. */
    void validate() const;
};

/** Outcome of a cache access. */
struct AccessOutcome
{
    bool hit = false;
    /** A dirty victim was evicted and must be written back. */
    bool writeback = false;
    /** Line address of the dirty victim (valid when writeback). */
    Addr writeback_addr = kAddrInvalid;
};

/** One level of cache. */
class Cache
{
  public:
    explicit Cache(CacheParams params);

    /**
     * Access the line containing @p addr; on miss the line is allocated
     * (write-allocate) and a victim may be evicted.
     *
     * @param addr     byte address
     * @param is_write store (marks the line dirty)
     * @return hit/miss plus any dirty victim to write back
     */
    AccessOutcome access(Addr addr, bool is_write);

    /**
     * Hit-only access: on a hit, update LRU/dirty and count it exactly
     * like access(); on a miss, leave the cache (and the miss counter)
     * untouched and return false.  Fuses the probe()+access() pair on
     * the hierarchy's hit path into one set scan.
     */
    bool accessIfHit(Addr addr, bool is_write);

    /**
     * Fill the line containing @p addr without touching hit statistics —
     * used to install prefetched or migrated data.
     */
    AccessOutcome fill(Addr addr, bool dirty);

    /** True when the line containing @p addr is present (no LRU update). */
    bool probe(Addr addr) const;

    /**
     * Record a miss in the statistics without touching the array — used
     * when the fill is deferred (e.g. until an MSHR completes).
     */
    void noteMiss() { ++misses_; }

    /** Invalidate the line containing @p addr if present.
     *  @return true when the line was present and dirty. */
    bool invalidate(Addr addr);

    const CacheParams &params() const { return params_; }

    uint64_t hits() const { return hits_; }
    uint64_t misses() const { return misses_; }
    uint64_t evictions() const { return evictions_; }
    uint64_t writebacks() const { return writebacks_; }

    double
    missRate() const
    {
        const uint64_t total = hits_ + misses_;
        return total == 0 ? 0.0
                          : static_cast<double>(misses_) / total;
    }

    /** Invalidate everything and clear statistics. */
    void reset();

    /**
     * Serialize the array contents (tags, valid/dirty bits, LRU state)
     * for checkpointing.  Hit/miss statistics are deliberately NOT
     * captured: replays measure deltas from a fresh zero, so restore()
     * zeroes them.
     */
    void snapshot(BlobWriter &w) const;
    void restore(BlobReader &r);

  private:
    struct Line
    {
        Addr tag = kAddrInvalid;
        bool valid = false;
        bool dirty = false;
        uint64_t lru = 0;
    };

    Line *findLine(Addr tag, uint64_t set);
    const Line *findLine(Addr tag, uint64_t set) const;
    /** Find @p tag in @p set; on miss, also report the first invalid way
     *  and the least-recently-used way (the LRU victim when every way is
     *  valid). */
    Line *scanSet(Addr tag, uint64_t set, Line **invalid_out,
                  Line **lru_out);
    Line &victimLine(uint64_t set);

    uint64_t setIndex(Addr addr) const;
    Addr tagOf(Addr addr) const;
    Addr lineAddr(Addr tag, uint64_t set) const;

    CacheParams params_;
    uint64_t num_sets_;
    uint32_t line_shift_;
    uint32_t set_bits_;
    std::vector<Line> lines_;
    uint64_t lru_clock_ = 0;
    uint64_t rr_victim_ = 0;

    uint64_t hits_ = 0;
    uint64_t misses_ = 0;
    uint64_t evictions_ = 0;
    uint64_t writebacks_ = 0;
};

} // namespace cache
} // namespace silc

#endif // SILC_CACHE_CACHE_HH
