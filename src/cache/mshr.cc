#include "cache/mshr.hh"

#include "common/logging.hh"

namespace silc {
namespace cache {

MshrFile::MshrFile(uint32_t capacity, uint32_t per_core_capacity)
    : capacity_(capacity), per_core_capacity_(per_core_capacity)
{
    silc_assert(capacity_ > 0);
    silc_assert(per_core_capacity_ > 0);
}

MshrAllocation
MshrFile::allocate(Addr block_addr, CoreId core, MissCallback cb)
{
    silc_assert(block_addr == subblockAddr(block_addr));

    auto it = entries_.find(block_addr);
    if (it != entries_.end()) {
        it->second.waiters.push_back(std::move(cb));
        ++coalesced_;
        return MshrAllocation::Coalesced;
    }

    if (entries_.size() >= capacity_ ||
        outstandingFor(core) >= per_core_capacity_) {
        ++rejections_;
        return MshrAllocation::NoCapacity;
    }

    Entry entry;
    entry.owner = core;
    entry.waiters.push_back(std::move(cb));
    entries_.emplace(block_addr, std::move(entry));
    ++per_core_[core];
    return MshrAllocation::Primary;
}

void
MshrFile::addWaiter(Addr block_addr, MissCallback cb)
{
    auto it = entries_.find(block_addr);
    if (it == entries_.end())
        panic("addWaiter on missing MSHR entry");
    it->second.waiters.push_back(std::move(cb));
}

bool
MshrFile::outstanding(Addr block_addr) const
{
    return entries_.count(block_addr) != 0;
}

size_t
MshrFile::complete(Addr block_addr, Tick now)
{
    auto it = entries_.find(block_addr);
    if (it == entries_.end())
        panic("completing unknown MSHR entry");

    // Move the entry out before firing waiters: a waiter may allocate a
    // new miss for the same block.
    Entry entry = std::move(it->second);
    entries_.erase(it);
    auto core_it = per_core_.find(entry.owner);
    silc_assert(core_it != per_core_.end() && core_it->second > 0);
    --core_it->second;

    for (auto &waiter : entry.waiters)
        waiter(now);
    return entry.waiters.size();
}

uint32_t
MshrFile::outstandingFor(CoreId core) const
{
    auto it = per_core_.find(core);
    return it == per_core_.end() ? 0 : it->second;
}

void
MshrFile::reset()
{
    entries_.clear();
    per_core_.clear();
    coalesced_ = 0;
    rejections_ = 0;
}

} // namespace cache
} // namespace silc
