#include "cache/mshr.hh"

#include <utility>

#include "common/logging.hh"

namespace silc {
namespace cache {

MshrFile::MshrFile(uint32_t capacity, uint32_t per_core_capacity)
    : capacity_(capacity), per_core_capacity_(per_core_capacity)
{
    silc_assert(capacity_ > 0);
    silc_assert(per_core_capacity_ > 0);

    // Keep the load factor at or below one half so linear probe chains
    // stay short and an empty slot always terminates a lookup.
    size_t n = 4;
    while (n < 2 * static_cast<size_t>(capacity_))
        n <<= 1;
    slots_.resize(n);
    mask_ = n - 1;
}

MshrFile::Slot *
MshrFile::findSlot(Addr addr)
{
    size_t i = homeOf(addr);
    while (slots_[i].addr != kAddrInvalid) {
        if (slots_[i].addr == addr)
            return &slots_[i];
        i = (i + 1) & mask_;
    }
    return nullptr;
}

const MshrFile::Slot *
MshrFile::findSlot(Addr addr) const
{
    size_t i = homeOf(addr);
    while (slots_[i].addr != kAddrInvalid) {
        if (slots_[i].addr == addr)
            return &slots_[i];
        i = (i + 1) & mask_;
    }
    return nullptr;
}

void
MshrFile::removeSlot(size_t i)
{
    // Backward-shift deletion (Knuth 6.4 algorithm R): pull every
    // displaced element of the probe chain one hole closer to its home
    // so lookups never need tombstones.
    size_t hole = i;
    size_t j = i;
    for (;;) {
        j = (j + 1) & mask_;
        Slot &s = slots_[j];
        if (s.addr == kAddrInvalid)
            break;
        const size_t home = homeOf(s.addr);
        if (((j - home) & mask_) >= ((j - hole) & mask_)) {
            slots_[hole] = std::move(s);
            hole = j;
        }
    }
    Slot &h = slots_[hole];
    h.addr = kAddrInvalid;
    h.first = nullptr;
    h.more.clear();
}

MshrAllocation
MshrFile::allocate(Addr block_addr, CoreId core, MissCallback cb)
{
    silc_assert(block_addr == subblockAddr(block_addr));

    if (Slot *slot = findSlot(block_addr)) {
        slot->more.push_back(std::move(cb));
        ++coalesced_;
        return MshrAllocation::Coalesced;
    }

    if (count_ >= capacity_ ||
        outstandingFor(core) >= per_core_capacity_) {
        ++rejections_;
        return MshrAllocation::NoCapacity;
    }

    size_t i = homeOf(block_addr);
    while (slots_[i].addr != kAddrInvalid)
        i = (i + 1) & mask_;
    Slot &slot = slots_[i];
    slot.addr = block_addr;
    slot.owner = core;
    slot.first = std::move(cb);
    ++count_;

    if (core >= per_core_.size())
        per_core_.resize(core + 1, 0);
    ++per_core_[core];
    return MshrAllocation::Primary;
}

void
MshrFile::addWaiter(Addr block_addr, MissCallback cb)
{
    Slot *slot = findSlot(block_addr);
    if (slot == nullptr)
        panic("addWaiter on missing MSHR entry");
    slot->more.push_back(std::move(cb));
}

size_t
MshrFile::complete(Addr block_addr, Tick now)
{
    Slot *slot = findSlot(block_addr);
    if (slot == nullptr)
        panic("completing unknown MSHR entry");

    // Move the waiters out before freeing the slot: a waiter may
    // allocate a new miss for the same block.
    const CoreId owner = slot->owner;
    MissCallback first = std::move(slot->first);
    std::vector<MissCallback> more = std::move(slot->more);
    removeSlot(static_cast<size_t>(slot - slots_.data()));
    --count_;

    silc_assert(owner < per_core_.size() && per_core_[owner] > 0);
    --per_core_[owner];

    first(now);
    for (auto &waiter : more)
        waiter(now);
    return 1 + more.size();
}

void
MshrFile::reset()
{
    for (Slot &s : slots_) {
        s.addr = kAddrInvalid;
        s.first = nullptr;
        s.more.clear();
    }
    count_ = 0;
    per_core_.assign(per_core_.size(), 0);
    coalesced_ = 0;
    rejections_ = 0;
}

} // namespace cache
} // namespace silc
