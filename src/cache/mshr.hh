/**
 * @file
 * Miss Status Holding Registers: track outstanding LLC misses, coalesce
 * requests to the same 64B block, and bound per-core memory-level
 * parallelism (the paper's cores issue from a 128-entry ROB with a
 * bounded number of outstanding misses).
 *
 * The file is a fixed-size open-addressed table (linear probing,
 * backward-shift deletion) rather than a node-based map: every LLC miss
 * used to cost a hash-node allocation plus a waiters-vector allocation,
 * making the MSHR one of the simulator's hottest malloc sites.  The
 * first waiter lives inline in the slot — coalesced secondaries are the
 * rare case — and callbacks are SmallFunctions so the hierarchy's fill
 * closure (which overflows std::function's inline buffer) does not
 * heap-allocate either.
 */

#ifndef SILC_CACHE_MSHR_HH
#define SILC_CACHE_MSHR_HH

#include <cstdint>
#include <vector>

#include "common/small_function.hh"
#include "common/types.hh"

namespace silc {
namespace cache {

/** Callback fired when a miss completes. */
using MissCallback = SmallFunction<void(Tick), 64>;

/** Result of attempting to allocate an MSHR. */
enum class MshrAllocation
{
    NoCapacity,   ///< file full; requester must stall and retry
    Primary,      ///< new entry; the miss must be sent to memory
    Coalesced,    ///< merged into an existing outstanding miss
};

/**
 * A file of MSHRs keyed by 64B block address.
 *
 * Each entry collects waiters; complete() fires them all.  Per-core
 * outstanding-primary-miss counts are tracked so cores can be throttled
 * individually while sharing one file at the LLC.
 */
class MshrFile
{
  public:
    /**
     * @param capacity            maximum distinct outstanding blocks
     * @param per_core_capacity   maximum primary misses per core
     */
    MshrFile(uint32_t capacity, uint32_t per_core_capacity);

    /**
     * Try to allocate (or coalesce into) an entry for @p block_addr.
     *
     * @param block_addr 64B-aligned block address
     * @param core       requesting core (per-core throttling)
     * @param cb         fired when the block arrives
     * @return allocation outcome; on NoCapacity @p cb is not retained
     */
    MshrAllocation allocate(Addr block_addr, CoreId core, MissCallback cb);

    /**
     * Register an extra waiter on an existing entry.
     * @pre an entry for @p block_addr exists.
     */
    void addWaiter(Addr block_addr, MissCallback cb);

    /** True when an entry for @p block_addr is outstanding. */
    bool outstanding(Addr block_addr) const
    {
        return findSlot(block_addr) != nullptr;
    }

    /**
     * Complete the miss for @p block_addr at tick @p now, firing every
     * waiter in registration order and freeing the entry.
     *
     * @return number of waiters notified.
     */
    size_t complete(Addr block_addr, Tick now);

    /** Outstanding primary misses for @p core. */
    uint32_t
    outstandingFor(CoreId core) const
    {
        return core < per_core_.size() ? per_core_[core] : 0;
    }

    /** Distinct outstanding blocks. */
    size_t size() const { return count_; }

    uint64_t coalesced() const { return coalesced_; }
    uint64_t rejections() const { return rejections_; }

    void reset();

  private:
    struct Slot
    {
        Addr addr = kAddrInvalid;   ///< kAddrInvalid marks an empty slot
        CoreId owner = 0;
        MissCallback first;               ///< first waiter, inline
        std::vector<MissCallback> more;   ///< coalesced secondaries
    };

    /** Home slot: Fibonacci hash of the block number (low bits are 0). */
    size_t
    homeOf(Addr addr) const
    {
        return static_cast<size_t>(
                   (addr >> kSubblockBits) * 0x9E3779B97F4A7C15ull >>
                   32) &
            mask_;
    }

    Slot *findSlot(Addr addr);
    const Slot *findSlot(Addr addr) const;

    /** Empty slot @p i, backward-shifting the probe chain it breaks. */
    void removeSlot(size_t i);

    uint32_t capacity_;
    uint32_t per_core_capacity_;
    std::vector<Slot> slots_;   ///< power-of-two size, load factor <= 1/2
    size_t mask_ = 0;
    uint32_t count_ = 0;
    std::vector<uint32_t> per_core_;
    uint64_t coalesced_ = 0;
    uint64_t rejections_ = 0;
};

} // namespace cache
} // namespace silc

#endif // SILC_CACHE_MSHR_HH
