/**
 * @file
 * Miss Status Holding Registers: track outstanding LLC misses, coalesce
 * requests to the same 64B block, and bound per-core memory-level
 * parallelism (the paper's cores issue from a 128-entry ROB with a
 * bounded number of outstanding misses).
 */

#ifndef SILC_CACHE_MSHR_HH
#define SILC_CACHE_MSHR_HH

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/types.hh"

namespace silc {
namespace cache {

/** Callback fired when a miss completes. */
using MissCallback = std::function<void(Tick)>;

/** Result of attempting to allocate an MSHR. */
enum class MshrAllocation
{
    NoCapacity,   ///< file full; requester must stall and retry
    Primary,      ///< new entry; the miss must be sent to memory
    Coalesced,    ///< merged into an existing outstanding miss
};

/**
 * A file of MSHRs keyed by 64B block address.
 *
 * Each entry collects waiters; complete() fires them all.  Per-core
 * outstanding-primary-miss counts are tracked so cores can be throttled
 * individually while sharing one file at the LLC.
 */
class MshrFile
{
  public:
    /**
     * @param capacity            maximum distinct outstanding blocks
     * @param per_core_capacity   maximum primary misses per core
     */
    MshrFile(uint32_t capacity, uint32_t per_core_capacity);

    /**
     * Try to allocate (or coalesce into) an entry for @p block_addr.
     *
     * @param block_addr 64B-aligned block address
     * @param core       requesting core (per-core throttling)
     * @param cb         fired when the block arrives
     * @return allocation outcome; on NoCapacity @p cb is not retained
     */
    MshrAllocation allocate(Addr block_addr, CoreId core, MissCallback cb);

    /**
     * Register an extra waiter on an existing entry.
     * @pre an entry for @p block_addr exists.
     */
    void addWaiter(Addr block_addr, MissCallback cb);

    /** True when an entry for @p block_addr is outstanding. */
    bool outstanding(Addr block_addr) const;

    /**
     * Complete the miss for @p block_addr at tick @p now, firing every
     * waiter in registration order and freeing the entry.
     *
     * @return number of waiters notified.
     */
    size_t complete(Addr block_addr, Tick now);

    /** Outstanding primary misses for @p core. */
    uint32_t outstandingFor(CoreId core) const;

    /** Distinct outstanding blocks. */
    size_t size() const { return entries_.size(); }

    uint64_t coalesced() const { return coalesced_; }
    uint64_t rejections() const { return rejections_; }

    void reset();

  private:
    struct Entry
    {
        CoreId owner = 0;
        std::vector<MissCallback> waiters;
    };

    uint32_t capacity_;
    uint32_t per_core_capacity_;
    std::unordered_map<Addr, Entry> entries_;
    std::unordered_map<CoreId, uint32_t> per_core_;
    uint64_t coalesced_ = 0;
    uint64_t rejections_ = 0;
};

} // namespace cache
} // namespace silc

#endif // SILC_CACHE_MSHR_HH
