#include "check/campaign.hh"

#include <algorithm>
#include <sstream>

#include "check/differential.hh"
#include "common/event_queue.hh"
#include "common/rng.hh"
#include "dram/dram_system.hh"
#include "dram/timing.hh"
#include "trace/file_trace.hh"

namespace silc {
namespace check {

CampaignConfig
makeCampaign(uint64_t seed, size_t accesses)
{
    // Decorrelated from the trace generator's stream, which hashes the
    // same seed differently.
    Rng rng(seed ^ 0xF022DD17C4A9B36DULL);

    CampaignConfig cfg;
    cfg.seed = seed;
    cfg.accesses = accesses;
    cfg.geometry.nm_bytes = uint64_t(1) << 20;
    cfg.geometry.fm_bytes = uint64_t(4) << 20;

    core::SilcFmParams &p = cfg.params;
    const uint32_t assoc_choices[] = {1, 2, 4};
    p.associativity = assoc_choices[rng.below(3)];
    cfg.geometry.associativity = p.associativity;

    p.enable_locking = rng.chance(0.8);
    p.enable_bypass = rng.chance(0.7);
    p.enable_predictor = true;
    p.enable_history_fetch = rng.chance(0.8);

    // Small thresholds/intervals/windows relative to the trace length
    // so every state machine cycles many times per campaign.
    p.hot_threshold = static_cast<uint32_t>(rng.between(3, 12));
    const uint64_t aging_choices[] = {64, 256, 1024, 100'000};
    p.aging_interval = aging_choices[rng.below(4)];
    p.bypass_target = rng.chance(0.5) ? 0.8 : 0.5;
    const uint64_t window_choices[] = {32, 128, 512};
    p.bypass_window = window_choices[rng.below(3)];
    // Including tiny tables: hash collisions recall the wrong vector,
    // which the oracle must reproduce bit-exactly.
    const uint64_t history_choices[] = {uint64_t(1) << 8,
                                        uint64_t(1) << 12,
                                        uint64_t(1) << 16};
    p.history_entries = history_choices[rng.below(3)];
    p.history_index_by_page = rng.chance(0.5);
    const uint32_t min_bits_choices[] = {2, 4, 8, 12};
    p.history_min_bits = min_bits_choices[rng.below(4)];
    const uint32_t full_fetch_choices[] = {1, 4, 8};
    p.lock_full_fetch_min_used = full_fetch_choices[rng.below(3)];
    p.model_metadata_traffic = rng.chance(0.5);

    cfg.pattern = static_cast<trace::FuzzPattern>(
        rng.below(trace::kFuzzPatternCount));
    return cfg;
}

std::string
describeCampaign(const CampaignConfig &cfg)
{
    const core::SilcFmParams &p = cfg.params;
    std::ostringstream os;
    os << trace::fuzzPatternName(cfg.pattern) << " assoc=" << p.associativity
       << " lock=" << p.enable_locking << " bypass=" << p.enable_bypass
       << " hist=" << p.enable_history_fetch
       << " thr=" << p.hot_threshold << " aging=" << p.aging_interval
       << " window=" << p.bypass_window
       << " histEntries=" << p.history_entries
       << " byPage=" << p.history_index_by_page
       << " minBits=" << p.history_min_bits
       << " fullFetch=" << p.lock_full_fetch_min_used;
    return os.str();
}

std::optional<CampaignFailure>
runCampaignTrace(const CampaignConfig &cfg,
                 const std::vector<trace::FuzzAccess> &accesses)
{
    // Functional state updates synchronously in demandAccess, so the
    // devices never need to tick: requests queue and are dropped with
    // the harness.
    EventQueue events;
    dram::DramSystem nm(dram::hbm2Params(), cfg.geometry.nm_bytes,
                        events);
    dram::DramSystem fm(dram::ddr3Params(), cfg.geometry.fm_bytes,
                        events);

    policy::PolicyEnv env;
    env.nm = &nm;
    env.fm = &fm;
    env.events = &events;

    core::SilcFmPolicy policy(env, cfg.params);
    DifferentialChecker checker(policy);
    policy.setObserver(&checker);

    Tick now = 0;
    for (size_t i = 0; i < accesses.size(); ++i) {
        const trace::FuzzAccess &a = accesses[i];
        policy.demandAccess(a.paddr, a.is_write, 0, a.pc, nullptr, now);
        now += 4;
        if (checker.failed())
            return CampaignFailure{i, checker.failure()};
    }
    checker.verifyFullState();
    if (checker.failed())
        return CampaignFailure{accesses.size(), checker.failure()};
    return std::nullopt;
}

std::vector<trace::FuzzAccess>
shrinkTrace(std::vector<trace::FuzzAccess> trace,
            const std::function<
                bool(const std::vector<trace::FuzzAccess> &)> &fails)
{
    size_t chunk = std::max<size_t>(1, trace.size() / 2);
    while (true) {
        bool removed_any = false;
        size_t start = 0;
        while (start < trace.size()) {
            const size_t end = std::min(trace.size(), start + chunk);
            std::vector<trace::FuzzAccess> candidate;
            candidate.reserve(trace.size() - (end - start));
            candidate.insert(candidate.end(), trace.begin(),
                             trace.begin() + static_cast<long>(start));
            candidate.insert(candidate.end(),
                             trace.begin() + static_cast<long>(end),
                             trace.end());
            if (!candidate.empty() && fails(candidate)) {
                trace = std::move(candidate);
                removed_any = true;
                // Re-test from the same position: the next chunk slid
                // into it.
            } else {
                start += chunk;
            }
        }
        if (chunk > 1)
            chunk = chunk / 2;
        else if (!removed_any)
            break;
    }
    return trace;
}

void
writeFuzzTrace(const std::string &path,
               const std::vector<trace::FuzzAccess> &accesses)
{
    trace::TraceWriter writer(path);
    for (const trace::FuzzAccess &a : accesses) {
        trace::TraceInstruction ins;
        ins.is_mem = true;
        ins.is_write = a.is_write;
        ins.vaddr = a.paddr;
        ins.pc = a.pc;
        writer.append(ins);
    }
    writer.finish();
}

std::vector<trace::FuzzAccess>
loadFuzzTrace(const std::string &path)
{
    trace::FileTraceReader reader(path);
    std::vector<trace::FuzzAccess> accesses;
    // The reader prefetches: wraps() goes to 1 while delivering the
    // final record, so the wrap test must precede next(), not follow
    // it, or the last access of the file is dropped.
    while (reader.wraps() == 0) {
        const trace::TraceInstruction ins = reader.next();
        if (!ins.is_mem)
            continue;
        accesses.push_back(
            trace::FuzzAccess{ins.vaddr, ins.pc, ins.is_write});
    }
    return accesses;
}

} // namespace check
} // namespace silc
