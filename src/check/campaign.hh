/**
 * @file
 * Fuzz-campaign machinery shared by the fuzz_check driver and the
 * oracle's own tests: deterministic campaign configuration from a
 * seed, lockstep replay of an access vector under the differential
 * checker, greedy delta-debugging trace shrinking, and failing-trace
 * persistence in the replayable silctrace format.
 *
 * Everything is a pure function of its arguments: a campaign seed
 * reconstructs the exact SilcFmParams and adversarial stream, so a
 * failure report of (seed, trace file) is sufficient to replay.
 */

#ifndef SILC_CHECK_CAMPAIGN_HH
#define SILC_CHECK_CAMPAIGN_HH

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/silc_fm.hh"
#include "trace/fuzz.hh"

namespace silc {
namespace check {

/** Everything one fuzz campaign needs, derived from its seed. */
struct CampaignConfig
{
    core::SilcFmParams params;
    trace::FuzzGeometry geometry;
    trace::FuzzPattern pattern = trace::FuzzPattern::MixedChaos;
    uint64_t seed = 0;
    size_t accesses = 0;
};

/**
 * Derive a campaign from @p seed: associativity, feature flags,
 * thresholds, window/interval sizes and the adversarial pattern are
 * all drawn from an RNG seeded with @p seed alone, so a seed printed
 * in a failure report reconstructs the identical campaign.
 */
CampaignConfig makeCampaign(uint64_t seed, size_t accesses);

/** One-line human summary of a campaign's knobs. */
std::string describeCampaign(const CampaignConfig &cfg);

/** A divergence observed while replaying a trace. */
struct CampaignFailure
{
    /** Index of the offending access (== trace size: final sweep). */
    size_t access_index = 0;
    std::string why;
};

/**
 * Replay @p accesses against a fresh policy + differential checker
 * built from @p cfg.  Returns the first divergence, or nullopt when
 * the whole trace (plus a final deep state sweep) is clean.
 */
std::optional<CampaignFailure> runCampaignTrace(
    const CampaignConfig &cfg,
    const std::vector<trace::FuzzAccess> &accesses);

/**
 * Greedy delta-debugging shrink: repeatedly drop chunks (halving the
 * chunk size down to single accesses) while @p fails stays true.
 * @p trace must satisfy @p fails on entry; the result still does and
 * is 1-minimal with respect to single-access removal.
 */
std::vector<trace::FuzzAccess> shrinkTrace(
    std::vector<trace::FuzzAccess> trace,
    const std::function<bool(const std::vector<trace::FuzzAccess> &)>
        &fails);

/** Persist @p accesses as a silctrace file (vaddr = paddr). */
void writeFuzzTrace(const std::string &path,
                    const std::vector<trace::FuzzAccess> &accesses);

/** Load a silctrace file back into an access vector (one pass). */
std::vector<trace::FuzzAccess> loadFuzzTrace(const std::string &path);

} // namespace check
} // namespace silc

#endif // SILC_CHECK_CAMPAIGN_HH
