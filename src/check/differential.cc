#include "check/differential.hh"

#include <sstream>

#include "common/logging.hh"

namespace silc {
namespace check {

using core::kNoRemap;
using policy::Location;

namespace {

std::string
locString(const Location &loc)
{
    std::ostringstream os;
    os << (loc.in_nm ? "NM" : "FM") << "+0x" << std::hex
       << loc.device_addr;
    return os.str();
}

} // namespace

DifferentialChecker::DifferentialChecker(const core::SilcFmPolicy &policy)
    : DifferentialChecker(policy, Options{})
{
}

DifferentialChecker::DifferentialChecker(
    const core::SilcFmPolicy &policy, Options opts)
    : policy_(policy),
      opts_(opts),
      ref_(policy.params(),
           policy.metadata().frames() * kLargeBlockSize,
           policy.flatSpaceBytes() -
               policy.metadata().frames() * kLargeBlockSize)
{
    silc_assert(opts_.sweep_interval > 0);
}

void
DifferentialChecker::fail(const std::string &why)
{
    if (opts_.panic_on_divergence) {
        panic("differential oracle: %s (after %llu checked accesses)",
              why.c_str(),
              static_cast<unsigned long long>(checked_));
    }
    // Latch the first divergence: later ones are downstream noise of
    // the same root cause, and the fuzzer's shrinker wants the trace
    // that triggers the original.
    if (!failed_) {
        failed_ = true;
        failure_ = why;
    }
}

void
DifferentialChecker::onDemandResolved(Addr paddr, bool is_write,
                                      CoreId core, Addr pc,
                                      const Location &serviced)
{
    (void)is_write;
    (void)core;
    if (failed_)
        return;

    const RefOutcome out = ref_.access(paddr, pc);
    ++checked_;

    if (out.serviced != serviced) {
        std::ostringstream os;
        os << "serviced location mismatch at paddr 0x" << std::hex
           << paddr << std::dec << ": policy " << locString(serviced)
           << ", reference " << locString(out.serviced);
        fail(os.str());
        return;
    }

    const Location ppost = policy_.locate(paddr);
    const Location rpost = ref_.locate(paddr);
    if (ppost != rpost) {
        std::ostringstream os;
        os << "post-access locate mismatch at paddr 0x" << std::hex
           << paddr << std::dec << ": policy " << locString(ppost)
           << ", reference " << locString(rpost);
        fail(os.str());
        return;
    }

    if (!compareCounters())
        return;

    if (checked_ % opts_.sweep_interval == 0)
        verifyFullState();
}

bool
DifferentialChecker::compareCounters()
{
    struct Pair
    {
        const char *name;
        uint64_t policy_value;
        uint64_t ref_value;
    };
    const Pair pairs[] = {
        {"swaps", policy_.subblockSwaps(), ref_.swaps()},
        {"restores", policy_.restores(), ref_.restores()},
        {"locks", policy_.locks(), ref_.locks()},
        {"unlocks", policy_.unlocks(), ref_.unlocks()},
        {"historyFetched", policy_.historyFetchedSubblocks(),
         ref_.historyFetched()},
        {"bypassed", policy_.bypassedAccesses(), ref_.bypassed()},
        {"allWaysLocked", policy_.allWaysLockedEvents(),
         ref_.allWaysLocked()},
        {"nmServiced", policy_.nmServiced(), ref_.nmServiced()},
        {"fmServiced", policy_.fmServiced(), ref_.fmServiced()},
    };
    for (const Pair &p : pairs) {
        if (p.policy_value != p.ref_value) {
            std::ostringstream os;
            os << "counter '" << p.name << "' mismatch: policy "
               << p.policy_value << ", reference " << p.ref_value;
            fail(os.str());
            return false;
        }
    }
    if (policy_.balancer().bypassing() != ref_.bypassing()) {
        std::ostringstream os;
        os << "bypass flag mismatch: policy "
           << policy_.balancer().bypassing() << ", reference "
           << ref_.bypassing();
        fail(os.str());
        return false;
    }
    return true;
}

bool
DifferentialChecker::compareFrame(uint64_t frame)
{
    const core::WayMeta &m = policy_.metadata().meta(frame);
    const RefFrame &r = ref_.frame(frame);

    std::ostringstream os;
    os << "frame " << frame << " state mismatch: ";

    if (m.remap != r.remap) {
        os << "remap (policy " << m.remap << ", reference " << r.remap
           << ")";
    } else if (m.bv.raw() != r.resident) {
        os << "residency bitvector (policy " << m.bv.toString()
           << ", reference "
           << SubblockVector{r.resident}.toString() << ")";
    } else if (m.used.raw() != r.used) {
        os << "usage bitvector (policy " << m.used.toString()
           << ", reference " << SubblockVector{r.used}.toString()
           << ")";
    } else if (m.locked != r.locked) {
        os << "lock bit (policy " << m.locked << ", reference "
           << r.locked << ")";
    } else if (m.locked && m.native_locked != r.native_locked) {
        // native_locked is only meaningful while locked: an aging
        // unlock leaves the stale owner kind behind by design.
        os << "native_locked (policy " << m.native_locked
           << ", reference " << r.native_locked << ")";
    } else if (m.lru != r.lru) {
        os << "LRU stamp (policy " << m.lru << ", reference " << r.lru
           << ")";
    } else if (m.nm_counter != r.nm_counter) {
        os << "nm_counter (policy " << unsigned(m.nm_counter)
           << ", reference " << unsigned(r.nm_counter) << ")";
    } else if (m.fm_counter != r.fm_counter) {
        os << "fm_counter (policy " << unsigned(m.fm_counter)
           << ", reference " << unsigned(r.fm_counter) << ")";
    } else if (m.has_signature != r.has_signature) {
        os << "signature validity (policy " << m.has_signature
           << ", reference " << r.has_signature << ")";
    } else if (m.has_signature && (m.first_pc != r.first_pc ||
                                   m.first_addr != r.first_addr)) {
        os << "signature value";
    } else {
        return true;
    }
    fail(os.str());
    return false;
}

bool
DifferentialChecker::verifyFullState()
{
    if (failed_)
        return false;
    ++sweeps_;

    std::string why;
    if (!ref_.selfCheck(&why)) {
        fail("reference model self-check failed: " + why);
        return false;
    }

    const core::NmMetadata &meta = policy_.metadata();
    for (uint64_t frame = 0; frame < meta.frames(); ++frame) {
        if (!compareFrame(frame))
            return false;
    }

    // Victim agreement per set: redundant with the raw LRU compare but
    // checks the exact decision future allocations will take.
    for (uint64_t set = 0; set < meta.numSets(); ++set) {
        const int pv = meta.victimWay(set);
        const int rv = ref_.victimWay(set);
        if (pv != rv) {
            std::ostringstream os;
            os << "victim way mismatch in set " << set << ": policy "
               << pv << ", reference " << rv;
            fail(os.str());
            return false;
        }
    }

    return compareCounters();
}

} // namespace check
} // namespace silc
