/**
 * @file
 * The differential oracle: runs a ReferenceModel in lockstep with a
 * live SilcFmPolicy (via the SilcFmObserver hook) and cross-checks,
 * after every demand access,
 *
 *  - where the access was serviced from (NM frame/way vs. FM home),
 *  - the post-access residence of the touched subblock (locate()),
 *  - every cumulative functional counter (swaps, restores, locks,
 *    unlocks, history fetches, bypasses, all-ways-locked events,
 *    NM/FM service counts) and the balancer's bypass flag,
 *
 * plus, every sweep_interval accesses and on demand, a deep sweep of
 * the complete metadata state: remap entries, residency and usage
 * vectors, lock bits, aging counters, raw LRU stamps, signature state,
 * per-set victim agreement, and the reference model's own redundant
 * index (selfCheck).
 *
 * The first divergence is latched with a description; with
 * Options::panic_on_divergence the checker panic()s instead, which is
 * the mode sim::System uses as a hard correctness gate (SILC_CHECK=1).
 * The latching mode keeps the process alive so the fuzzer can shrink a
 * failing trace.
 */

#ifndef SILC_CHECK_DIFFERENTIAL_HH
#define SILC_CHECK_DIFFERENTIAL_HH

#include <cstdint>
#include <string>

#include "check/reference_model.hh"
#include "core/silc_fm.hh"

namespace silc {
namespace check {

class DifferentialChecker final : public core::SilcFmObserver
{
  public:
    struct Options
    {
        /** Accesses between deep full-state sweeps. */
        uint64_t sweep_interval = 1024;
        /** panic() on the first divergence instead of latching it. */
        bool panic_on_divergence = false;
    };

    /**
     * @param policy the live policy to shadow; the caller must also
     *               register this checker via policy.setObserver()
     */
    explicit DifferentialChecker(const core::SilcFmPolicy &policy);
    DifferentialChecker(const core::SilcFmPolicy &policy, Options opts);

    void onDemandResolved(Addr paddr, bool is_write, CoreId core,
                          Addr pc,
                          const policy::Location &serviced) override;

    /** A divergence has been observed (first one is kept). */
    bool failed() const { return failed_; }
    /** Description of the first divergence (empty while clean). */
    const std::string &failure() const { return failure_; }

    uint64_t accessesChecked() const { return checked_; }
    uint64_t sweepsRun() const { return sweeps_; }

    const ReferenceModel &reference() const { return ref_; }

    /**
     * Deep compare of the complete metadata state right now.  Returns
     * false (and latches the divergence) on mismatch.  Also run
     * automatically every Options::sweep_interval accesses.
     */
    bool verifyFullState();

  private:
    void fail(const std::string &why);
    bool compareFrame(uint64_t frame);
    bool compareCounters();

    const core::SilcFmPolicy &policy_;
    Options opts_;
    ReferenceModel ref_;

    bool failed_ = false;
    std::string failure_;
    uint64_t checked_ = 0;
    uint64_t sweeps_ = 0;
};

} // namespace check
} // namespace silc

#endif // SILC_CHECK_DIFFERENTIAL_HH
