#include "check/reference_model.hh"

#include <bit>
#include <sstream>

#include "common/logging.hh"

namespace silc {
namespace check {

using core::kNoRemap;
using policy::Location;

ReferenceModel::ReferenceModel(const core::SilcFmParams &params,
                               uint64_t nm_bytes, uint64_t fm_bytes)
    : params_(params),
      nm_pages_(nm_bytes / kLargeBlockSize),
      total_pages_(nm_pages_ + fm_bytes / kLargeBlockSize),
      num_sets_(nm_pages_ / params.associativity),
      counter_max_(
          static_cast<uint8_t>((1u << params.counter_bits) - 1)),
      frames_(nm_pages_),
      history_(params.history_entries, 0),
      history_mask_(params.history_entries - 1)
{
    silc_assert(nm_pages_ > 0);
    silc_assert(num_sets_ > 0);
}

RefOutcome
ReferenceModel::access(Addr paddr, Addr pc)
{
    silc_assert(paddr < total_pages_ * kLargeBlockSize);

    ++accesses_;
    if (accesses_ % params_.aging_interval == 0)
        agingSweep();

    const uint64_t page = paddr >> kLargeBlockBits;
    const uint32_t sub = subblockOffset(paddr);

    const Location serviced = isNativePage(page)
        ? accessNative(page, sub)
        : accessFar(page, sub, pc);

    if (serviced.in_nm)
        ++nm_serviced_;
    else
        ++fm_serviced_;
    recordBalancer(serviced.in_nm);

    return RefOutcome{serviced};
}

Location
ReferenceModel::accessNative(uint64_t page, uint32_t sub)
{
    RefFrame &f = frames_[page];
    f.nm_counter = satInc(f.nm_counter);
    f.lru = ++lru_clock_;

    const bool bypass = bypassing_;

    if (f.resident & bit(sub)) {
        // The native subblock was displaced by an interleave: it is
        // serviced from the FM page's home slot, and swaps back unless
        // the way is locked or bypassing suppresses the churn.
        const Location loc{false, fmHomeAddr(f.remap, sub)};
        if (f.locked) {
            // Locked interleaves stay put.
        } else if (!bypass) {
            f.resident &= ~bit(sub);
            f.used &= ~bit(sub);
        } else {
            ++bypassed_;
        }
        return loc;
    }

    const Location loc{true, nmAddr(page, sub)};

    if (params_.enable_locking && !f.locked && !bypass &&
        f.nm_counter >= params_.hot_threshold) {
        if (f.remap != kNoRemap)
            restoreFrame(page);
        f.locked = true;
        f.native_locked = true;
        ++locks_;
    }
    return loc;
}

Location
ReferenceModel::accessFar(uint64_t page, uint32_t sub, Addr pc)
{
    const uint64_t set = page % num_sets_;
    const Addr sub_addr = page * kLargeBlockSize +
        static_cast<Addr>(sub) * kSubblockSize;
    const bool bypass = bypassing_;

    auto it = where_.find(page);
    if (it != where_.end()) {
        const uint64_t frame = it->second;
        RefFrame &f = frames_[frame];
        f.fm_counter = satInc(f.fm_counter);
        f.lru = ++lru_clock_;

        Location loc;
        if (f.resident & bit(sub)) {
            loc = Location{true, nmAddr(frame, sub)};
            f.used |= bit(sub);
        } else if (bypass) {
            loc = Location{false, fmHomeAddr(page, sub)};
            ++bypassed_;
        } else {
            loc = Location{false, fmHomeAddr(page, sub)};
            swapIn(frame, page, sub, pc, sub_addr);
        }

        if (params_.enable_locking && !f.locked && !bypass &&
            f.fm_counter >= params_.hot_threshold) {
            lockFrame(frame);
        }
        return loc;
    }

    const Location loc{false, fmHomeAddr(page, sub)};
    if (bypass) {
        ++bypassed_;
        return loc;
    }

    const int victim = victimWay(set);
    if (victim < 0) {
        ++all_locked_;
        return loc;
    }

    const uint64_t frame =
        set * params_.associativity + static_cast<uint64_t>(victim);
    restoreFrame(frame);

    RefFrame &f = frames_[frame];
    f.remap = page;
    where_[page] = frame;
    f.fm_counter = satInc(0);
    f.lru = ++lru_clock_;

    swapIn(frame, page, sub, pc, sub_addr);
    return loc;
}

void
ReferenceModel::swapIn(uint64_t frame, uint64_t fm_page, uint32_t sub,
                       Addr pc, Addr sub_addr)
{
    RefFrame &f = frames_[frame];
    silc_assert(f.remap == fm_page);
    silc_assert((f.resident & bit(sub)) == 0);

    const bool first = f.resident == 0;
    const Addr hist_pc = params_.history_index_by_page ? 0 : pc;
    const Addr hist_addr = params_.history_index_by_page
        ? fm_page * kLargeBlockSize
        : sub_addr;

    f.resident |= bit(sub);
    f.used |= bit(sub);
    ++swaps_;

    if (!first)
        return;

    f.first_pc = hist_pc;
    f.first_addr = hist_addr;
    f.has_signature = true;

    if (!params_.enable_history_fetch)
        return;

    const uint32_t hist = history_[historyIndex(hist_pc, hist_addr)];
    if (static_cast<uint32_t>(std::popcount(hist)) <
        params_.history_min_bits) {
        return;
    }
    for (uint32_t j = 0; j < kSubblocksPerBlock; ++j) {
        if (j == sub || (hist & bit(j)) == 0 || (f.resident & bit(j)))
            continue;
        f.resident |= bit(j);
        ++swaps_;
        ++history_fetched_;
    }
}

void
ReferenceModel::restoreFrame(uint64_t frame)
{
    RefFrame &f = frames_[frame];
    silc_assert(!f.locked);
    if (f.remap == kNoRemap) {
        silc_assert(f.resident == 0);
        return;
    }

    // Only the demanded-usage pattern is worth recalling; an all-zero
    // vector carries no reuse information and is not saved.
    if (f.has_signature && f.used != 0)
        history_[historyIndex(f.first_pc, f.first_addr)] = f.used;
    ++restores_;

    where_.erase(f.remap);
    f.remap = kNoRemap;
    f.resident = 0;
    f.used = 0;
    f.fm_counter = 0;
    f.has_signature = false;
}

void
ReferenceModel::lockFrame(uint64_t frame)
{
    RefFrame &f = frames_[frame];
    silc_assert(!f.locked);
    silc_assert(f.remap != kNoRemap);

    if (static_cast<uint32_t>(std::popcount(f.used)) >=
        params_.lock_full_fetch_min_used) {
        swaps_ += kSubblocksPerBlock -
            static_cast<uint32_t>(std::popcount(f.resident));
        f.resident = ~uint32_t(0);
    }
    f.locked = true;
    f.native_locked = false;
    ++locks_;
}

void
ReferenceModel::agingSweep()
{
    for (RefFrame &f : frames_) {
        f.nm_counter = static_cast<uint8_t>(f.nm_counter >> 1);
        f.fm_counter = static_cast<uint8_t>(f.fm_counter >> 1);
    }
    if (!params_.enable_locking)
        return;
    for (RefFrame &f : frames_) {
        if (!f.locked)
            continue;
        const uint8_t owner =
            f.native_locked ? f.nm_counter : f.fm_counter;
        if (owner < params_.hot_threshold) {
            f.locked = false;
            ++unlocks_;
        }
    }
}

void
ReferenceModel::recordBalancer(bool serviced_from_nm)
{
    if (!params_.enable_bypass)
        return;
    ++bal_in_window_;
    if (serviced_from_nm)
        ++bal_nm_in_window_;
    if (bal_in_window_ >= params_.bypass_window) {
        const double rate = static_cast<double>(bal_nm_in_window_) /
            static_cast<double>(bal_in_window_);
        bypassing_ = rate > params_.bypass_target;
        bal_in_window_ = 0;
        bal_nm_in_window_ = 0;
    }
}

int
ReferenceModel::victimWay(uint64_t set) const
{
    int best = -1;
    uint64_t best_lru = ~uint64_t(0);
    for (uint32_t w = 0; w < params_.associativity; ++w) {
        const RefFrame &f = frames_[set * params_.associativity + w];
        if (f.locked)
            continue;
        if (f.remap == kNoRemap)
            return static_cast<int>(w);
        if (f.lru < best_lru) {
            best_lru = f.lru;
            best = static_cast<int>(w);
        }
    }
    return best;
}

Location
ReferenceModel::locate(Addr paddr) const
{
    const uint64_t page = paddr >> kLargeBlockBits;
    const uint32_t sub = subblockOffset(paddr);

    if (isNativePage(page)) {
        const RefFrame &f = frames_[page];
        if (f.resident & bit(sub)) {
            silc_assert(f.remap != kNoRemap);
            return Location{false, fmHomeAddr(f.remap, sub)};
        }
        return Location{true, nmAddr(page, sub)};
    }

    auto it = where_.find(page);
    if (it != where_.end() &&
        (frames_[it->second].resident & bit(sub))) {
        return Location{true, nmAddr(it->second, sub)};
    }
    return Location{false, fmHomeAddr(page, sub)};
}

bool
ReferenceModel::selfCheck(std::string *why) const
{
    auto report = [why](const std::string &msg) {
        if (why != nullptr)
            *why = msg;
        return false;
    };

    uint64_t remapped = 0;
    for (uint64_t frame = 0; frame < frames_.size(); ++frame) {
        const RefFrame &f = frames_[frame];
        std::ostringstream at;
        at << "ref frame " << frame << ": ";

        if (f.remap != kNoRemap) {
            ++remapped;
            if (isNativePage(f.remap))
                return report(at.str() + "remaps a native page");
            if (f.remap % num_sets_ != frame / params_.associativity)
                return report(at.str() + "remap maps to wrong set");
            auto it = where_.find(f.remap);
            if (it == where_.end() || it->second != frame)
                return report(at.str() + "missing from page index");
        } else if (f.resident != 0) {
            return report(at.str() + "resident bits without remap");
        }
        if ((f.used & ~f.resident) != 0)
            return report(at.str() + "used bits not resident");
        if (f.locked && !f.native_locked && f.remap == kNoRemap)
            return report(at.str() + "FM-locked without remap");
        if (f.locked && f.native_locked &&
            (f.remap != kNoRemap || f.resident != 0)) {
            return report(at.str() + "native-locked still interleaved");
        }
    }

    if (where_.size() != remapped) {
        return report("ref page index size " +
                      std::to_string(where_.size()) +
                      " != remapped frame count " +
                      std::to_string(remapped));
    }
    for (const auto &[page, frame] : where_) {
        if (frame >= frames_.size() || frames_[frame].remap != page)
            return report("ref page index entry stale for page " +
                          std::to_string(page));
    }
    return true;
}

} // namespace check
} // namespace silc
