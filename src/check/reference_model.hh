/**
 * @file
 * Untimed reference model of SILC-FM's functional semantics.
 *
 * ReferenceModel re-derives, from the demand access stream alone, every
 * piece of architectural state the paper defines: the per-frame remap
 * entries, the 32-bit subblock residency and usage vectors, lock bits,
 * aging counters, LRU victim ordering, the bit-vector history table,
 * and the bandwidth-balancer bypass decision.  It deliberately shares
 * no code with core/SilcFmPolicy: where the policy scans ways linearly,
 * the model keeps a page->frame hash index; where the policy spreads
 * state across component classes, the model holds one flat RefFrame
 * array.  The differential checker (differential.hh) runs both in
 * lockstep and cross-checks locations, counters, and full state.
 *
 * Timing-only machinery (the way/location predictor, DRAM traffic,
 * metadata-channel modelling) is intentionally absent: it must never
 * influence where a byte functionally lives.
 */

#ifndef SILC_CHECK_REFERENCE_MODEL_HH
#define SILC_CHECK_REFERENCE_MODEL_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.hh"
#include "core/silc_fm.hh"
#include "policy/policy.hh"

namespace silc {
namespace check {

/** Untimed mirror of one NM frame's metadata. */
struct RefFrame
{
    uint64_t remap = core::kNoRemap;
    /** FM-subblock residency mask (the policy's bv). */
    uint32_t resident = 0;
    /** Demanded-while-interleaved mask (the policy's used). */
    uint32_t used = 0;
    bool locked = false;
    bool native_locked = false;
    uint64_t lru = 0;
    uint8_t nm_counter = 0;
    uint8_t fm_counter = 0;
    Addr first_pc = 0;
    Addr first_addr = 0;
    bool has_signature = false;
};

/** Functional outcome of one access, as the reference model sees it. */
struct RefOutcome
{
    policy::Location serviced;
};

class ReferenceModel
{
  public:
    /**
     * @param params   the policy's configuration (architectural knobs)
     * @param nm_bytes NM capacity in bytes
     * @param fm_bytes FM capacity in bytes
     */
    ReferenceModel(const core::SilcFmParams &params, uint64_t nm_bytes,
                   uint64_t fm_bytes);

    /** Functionally execute one demand access. */
    RefOutcome access(Addr paddr, Addr pc);

    /** Current residence of the 64B block at @p paddr. */
    policy::Location locate(Addr paddr) const;

    // ---- Introspection for the differential checker. ----

    const RefFrame &frame(uint64_t f) const { return frames_[f]; }
    uint64_t frames() const { return frames_.size(); }
    uint64_t numSets() const { return num_sets_; }
    uint32_t associativity() const { return params_.associativity; }
    bool bypassing() const { return bypassing_; }

    uint64_t accesses() const { return accesses_; }
    uint64_t swaps() const { return swaps_; }
    uint64_t restores() const { return restores_; }
    uint64_t locks() const { return locks_; }
    uint64_t unlocks() const { return unlocks_; }
    uint64_t historyFetched() const { return history_fetched_; }
    uint64_t bypassed() const { return bypassed_; }
    uint64_t allWaysLocked() const { return all_locked_; }
    uint64_t nmServiced() const { return nm_serviced_; }
    uint64_t fmServiced() const { return fm_serviced_; }

    /**
     * Victim way the model would choose in @p set right now (-1 when
     * every way is locked).  Exposed so the checker can cross-check
     * LRU/victim agreement directly.
     */
    int victimWay(uint64_t set) const;

    /**
     * Cross-check the model's own redundant structures (the page->frame
     * hash index against a scan of the frame array, plus the paper's
     * structural invariants).  Returns false and fills @p why on the
     * first inconsistency.
     */
    bool selfCheck(std::string *why) const;

  private:
    static uint32_t bit(uint32_t sub) { return uint32_t(1) << sub; }

    bool isNativePage(uint64_t page) const { return page < nm_pages_; }

    Addr
    nmAddr(uint64_t frame, uint32_t sub) const
    {
        return frame * kLargeBlockSize +
            static_cast<Addr>(sub) * kSubblockSize;
    }

    Addr
    fmHomeAddr(uint64_t page, uint32_t sub) const
    {
        return (page - nm_pages_) * kLargeBlockSize +
            static_cast<Addr>(sub) * kSubblockSize;
    }

    uint8_t
    satInc(uint8_t v) const
    {
        return v >= counter_max_ ? counter_max_
                                 : static_cast<uint8_t>(v + 1);
    }

    /**
     * History-table slot of a (pc, first-subblock-address) signature.
     * The fold is part of the architecture (collisions change which
     * vector a fetch recalls), so it must match BitVectorTable exactly.
     */
    uint64_t
    historyIndex(Addr pc, Addr first_addr) const
    {
        uint64_t x = (pc >> 2) ^ (first_addr >> kSubblockBits);
        x ^= x >> 17;
        return x & history_mask_;
    }

    policy::Location accessNative(uint64_t page, uint32_t sub);
    policy::Location accessFar(uint64_t page, uint32_t sub, Addr pc);

    /** Demand swap-in of @p sub, with first-subblock history fetch. */
    void swapIn(uint64_t frame, uint64_t fm_page, uint32_t sub, Addr pc,
                Addr sub_addr);

    /** Undo @p frame's interleave, saving its usage vector. */
    void restoreFrame(uint64_t frame);

    /** Lock @p frame for its FM page (full fetch when dense enough). */
    void lockFrame(uint64_t frame);

    void agingSweep();
    void recordBalancer(bool serviced_from_nm);

    core::SilcFmParams params_;
    uint64_t nm_pages_;
    uint64_t total_pages_;
    uint64_t num_sets_;
    uint8_t counter_max_;

    std::vector<RefFrame> frames_;
    /** Interleaved FM page -> hosting frame (redundant with frames_). */
    std::unordered_map<uint64_t, uint64_t> where_;

    std::vector<uint32_t> history_;
    uint64_t history_mask_;

    uint64_t lru_clock_ = 0;
    bool bypassing_ = false;
    uint64_t bal_in_window_ = 0;
    uint64_t bal_nm_in_window_ = 0;

    uint64_t accesses_ = 0;
    uint64_t swaps_ = 0;
    uint64_t restores_ = 0;
    uint64_t locks_ = 0;
    uint64_t unlocks_ = 0;
    uint64_t history_fetched_ = 0;
    uint64_t bypassed_ = 0;
    uint64_t all_locked_ = 0;
    uint64_t nm_serviced_ = 0;
    uint64_t fm_serviced_ = 0;
};

} // namespace check
} // namespace silc

#endif // SILC_CHECK_REFERENCE_MODEL_HH
