/**
 * @file
 * SubblockVector: the 32-bit residency bit vector that SILC-FM keeps per
 * 2KB large block (Section III-A).  Bit i set means subblock i of the NM
 * frame currently holds data swapped in from FM.
 */

#ifndef SILC_COMMON_BITVECTOR_HH
#define SILC_COMMON_BITVECTOR_HH

#include <bit>
#include <cstdint>
#include <string>

#include "common/logging.hh"
#include "common/types.hh"

namespace silc {

/** Fixed 32-bit subblock residency vector. */
class SubblockVector
{
  public:
    constexpr SubblockVector() = default;
    constexpr explicit SubblockVector(uint32_t raw) : bits_(raw) {}

    /** Vector with every subblock bit set (fully swapped-in block). */
    static constexpr SubblockVector
    all()
    {
        return SubblockVector(~uint32_t(0));
    }

    /** Test bit @p i. */
    bool
    test(uint32_t i) const
    {
        silc_assert(i < kSubblocksPerBlock);
        return (bits_ >> i) & 1u;
    }

    /** Set bit @p i. */
    void
    set(uint32_t i)
    {
        silc_assert(i < kSubblocksPerBlock);
        bits_ |= (1u << i);
    }

    /** Clear bit @p i. */
    void
    clear(uint32_t i)
    {
        silc_assert(i < kSubblocksPerBlock);
        bits_ &= ~(1u << i);
    }

    /** Clear every bit. */
    void clearAll() { bits_ = 0; }

    /** Set every bit. */
    void setAll() { bits_ = ~uint32_t(0); }

    /** Number of set bits. */
    uint32_t count() const { return std::popcount(bits_); }

    /** True when no bit is set. */
    bool none() const { return bits_ == 0; }

    /** True when every bit is set. */
    bool full() const { return bits_ == ~uint32_t(0); }

    /** Raw 32-bit image (for storage in the bit vector history table). */
    uint32_t raw() const { return bits_; }

    bool operator==(const SubblockVector &) const = default;

    /** Render as a 32-character 0/1 string, bit 0 leftmost. */
    std::string
    toString() const
    {
        std::string s(kSubblocksPerBlock, '0');
        for (uint32_t i = 0; i < kSubblocksPerBlock; ++i) {
            if (test(i))
                s[i] = '1';
        }
        return s;
    }

  private:
    uint32_t bits_ = 0;
};

} // namespace silc

#endif // SILC_COMMON_BITVECTOR_HH
