#include "common/config.hh"

#include <algorithm>
#include <cctype>
#include <cstdlib>

#include "common/logging.hh"

namespace silc {

uint64_t
parseSize(const std::string &text)
{
    if (text.empty())
        fatal("empty size literal");

    std::string body = text;
    uint64_t multiplier = 1;
    char last = static_cast<char>(std::tolower(body.back()));
    if (last == 'k' || last == 'm' || last == 'g') {
        multiplier = last == 'k' ? (uint64_t(1) << 10)
                   : last == 'm' ? (uint64_t(1) << 20)
                                 : (uint64_t(1) << 30);
        body.pop_back();
        if (body.empty())
            fatal("size literal '%s' has no digits", text.c_str());
    }

    char *end = nullptr;
    int base = 10;
    if (body.size() > 2 && body[0] == '0' &&
        (body[1] == 'x' || body[1] == 'X')) {
        base = 16;
    }
    const uint64_t value = std::strtoull(body.c_str(), &end, base);
    if (end == nullptr || *end != '\0')
        fatal("malformed integer literal '%s'", text.c_str());
    return value * multiplier;
}

Config
Config::fromArgs(int argc, const char *const *argv)
{
    std::vector<std::string> tokens;
    for (int i = 1; i < argc; ++i)
        tokens.emplace_back(argv[i]);
    return fromTokens(tokens);
}

Config
Config::fromTokens(const std::vector<std::string> &tokens)
{
    Config cfg;
    for (const auto &tok : tokens) {
        auto eq = tok.find('=');
        if (eq == std::string::npos || eq == 0)
            fatal("expected key=value, got '%s'", tok.c_str());
        cfg.set(tok.substr(0, eq), tok.substr(eq + 1));
    }
    return cfg;
}

void
Config::set(const std::string &key, const std::string &value)
{
    auto [it, inserted] = values_.insert_or_assign(key, value);
    (void)it;
    if (inserted)
        order_.push_back(key);
}

bool
Config::has(const std::string &key) const
{
    return values_.count(key) != 0;
}

std::optional<std::string>
Config::getString(const std::string &key) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return std::nullopt;
    touched_[key] = true;
    return it->second;
}

std::string
Config::getString(const std::string &key, const std::string &def) const
{
    auto v = getString(key);
    return v ? *v : def;
}

uint64_t
Config::getU64(const std::string &key, uint64_t def) const
{
    auto v = getString(key);
    return v ? parseSize(*v) : def;
}

double
Config::getDouble(const std::string &key, double def) const
{
    auto v = getString(key);
    if (!v)
        return def;
    char *end = nullptr;
    double d = std::strtod(v->c_str(), &end);
    if (end == nullptr || *end != '\0')
        fatal("malformed double '%s' for key '%s'", v->c_str(), key.c_str());
    return d;
}

bool
Config::getBool(const std::string &key, bool def) const
{
    auto v = getString(key);
    if (!v)
        return def;
    std::string s = *v;
    std::transform(s.begin(), s.end(), s.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    if (s == "1" || s == "true" || s == "yes" || s == "on")
        return true;
    if (s == "0" || s == "false" || s == "no" || s == "off")
        return false;
    fatal("malformed bool '%s' for key '%s'", v->c_str(), key.c_str());
}

std::vector<std::string>
Config::unusedKeys() const
{
    std::vector<std::string> unused;
    for (const auto &key : order_) {
        auto it = touched_.find(key);
        if (it == touched_.end() || !it->second)
            unused.push_back(key);
    }
    return unused;
}

} // namespace silc
