/**
 * @file
 * Generic key=value configuration store used by examples and benches to
 * override simulation defaults from the command line or the environment.
 *
 * Structured per-module parameter structs (DramTimingParams, CacheParams,
 * SilcFmParams, ...) live next to their modules; this store is the string
 * front-end that populates them.
 */

#ifndef SILC_COMMON_CONFIG_HH
#define SILC_COMMON_CONFIG_HH

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace silc {

/** Ordered key=value option set with typed accessors. */
class Config
{
  public:
    Config() = default;

    /**
     * Parse a list of "key=value" tokens (e.g. argv tail).  Tokens without
     * '=' are rejected with fatal().
     */
    static Config fromArgs(int argc, const char *const *argv);

    /** Parse from a vector of "key=value" strings. */
    static Config fromTokens(const std::vector<std::string> &tokens);

    /** Set (or overwrite) @p key. */
    void set(const std::string &key, const std::string &value);

    /** True when @p key is present. */
    bool has(const std::string &key) const;

    /** Raw string value, if present. */
    std::optional<std::string> getString(const std::string &key) const;

    /** String with default. */
    std::string getString(const std::string &key,
                          const std::string &def) const;

    /**
     * Unsigned integer with default.  Accepts size suffixes k/m/g
     * (binary, e.g. "16m" = 16 MiB) and 0x-prefixed hex.  Bad syntax is
     * fatal().
     */
    uint64_t getU64(const std::string &key, uint64_t def) const;

    /** Double with default. */
    double getDouble(const std::string &key, double def) const;

    /** Boolean with default; accepts 0/1/true/false/yes/no. */
    bool getBool(const std::string &key, bool def) const;

    /** All keys in insertion order. */
    const std::vector<std::string> &keys() const { return order_; }

    /**
     * Keys that were set but never read — catches typos in experiment
     * scripts.  Call after configuration is consumed.
     */
    std::vector<std::string> unusedKeys() const;

  private:
    std::map<std::string, std::string> values_;
    std::vector<std::string> order_;
    mutable std::map<std::string, bool> touched_;
};

/** Parse "16k"/"32m"/"2g"/hex/decimal into a byte (or plain) count. */
uint64_t parseSize(const std::string &text);

} // namespace silc

#endif // SILC_COMMON_CONFIG_HH
