#include "common/env.hh"

#include <cctype>
#include <cerrno>
#include <cstdlib>

#include "common/logging.hh"

namespace silc {

uint64_t
envPositiveCount(const char *name, uint64_t fallback, uint64_t max_value)
{
    const char *v = std::getenv(name);
    if (v == nullptr)
        return fallback;
    // Reject empty and leading junk up front: strtoull would skip
    // whitespace and accept a leading '-' by wrapping, both of which we
    // want to be errors for a count knob.
    if (*v == '\0' || !std::isdigit(static_cast<unsigned char>(*v)))
        fatal("%s must be a positive integer, got '%s'", name, v);
    errno = 0;
    char *end = nullptr;
    const unsigned long long n = std::strtoull(v, &end, 10);
    if (errno == ERANGE || (end != nullptr && *end != '\0'))
        fatal("%s must be a positive integer, got '%s'", name, v);
    if (n == 0)
        fatal("%s must be positive, got '%s' (use 1 for sequential)",
              name, v);
    if (n > max_value)
        fatal("%s=%s exceeds the supported maximum of %llu", name, v,
              static_cast<unsigned long long>(max_value));
    return static_cast<uint64_t>(n);
}

unsigned
envThreadCount(const char *name, unsigned fallback)
{
    return static_cast<unsigned>(envPositiveCount(name, fallback, 1024));
}

} // namespace silc
