/**
 * @file
 * Strictly-validated environment knob parsing shared by the thread-count
 * knobs (SILC_THREADS, SILC_SIM_THREADS) and any future small-count
 * knob.  The historical parsers (one strtol in sim/parallel.cc, one
 * parseSize in sim/experiment.cc) silently accepted trailing junk
 * ("4abc" read as 4), which turns a typo into a quietly different
 * experiment; here anything but a clean positive decimal integer is a
 * fatal error naming the variable and the offending value.
 */

#ifndef SILC_COMMON_ENV_HH
#define SILC_COMMON_ENV_HH

#include <cstdint>

namespace silc {

/**
 * Read a positive decimal count from environment variable @p name.
 *
 * Returns @p fallback when the variable is unset.  fatal()s (with the
 * variable name and raw value in the message) when the value is empty,
 * zero, negative, non-numeric, has trailing characters, or exceeds
 * @p max_value.
 */
uint64_t envPositiveCount(const char *name, uint64_t fallback,
                          uint64_t max_value = UINT64_MAX);

/**
 * Thread-count flavour of envPositiveCount(): bounds the value to a
 * sanity cap of 1024 threads so a stray SILC_THREADS=100000 fails fast
 * instead of spawning an unusable process.
 */
unsigned envThreadCount(const char *name, unsigned fallback);

} // namespace silc

#endif // SILC_COMMON_ENV_HH
