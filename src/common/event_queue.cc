#include "common/event_queue.hh"

#include "common/logging.hh"

namespace silc {

void
EventQueue::schedule(Tick when, EventCallback cb)
{
    if (when < last_run_tick_) {
        panic("scheduling event in the past (when=%llu, now=%llu)",
              static_cast<unsigned long long>(when),
              static_cast<unsigned long long>(last_run_tick_));
    }
    heap_.push(Entry{when, next_seq_++, std::move(cb)});
}

size_t
EventQueue::runDue(Tick now)
{
    last_run_tick_ = now;
    size_t count = 0;
    while (!heap_.empty() && heap_.top().when <= now) {
        // priority_queue::top() is const; move out via const_cast, which is
        // safe because the entry is popped immediately afterwards.
        Entry entry = std::move(const_cast<Entry &>(heap_.top()));
        heap_.pop();
        entry.cb(entry.when);
        ++count;
        ++executed_;
    }
    return count;
}

Tick
EventQueue::nextEventTick() const
{
    return heap_.empty() ? kTickNever : heap_.top().when;
}

void
EventQueue::clear()
{
    while (!heap_.empty())
        heap_.pop();
    last_run_tick_ = 0;
}

} // namespace silc
