#include "common/event_queue.hh"

#include <algorithm>
#include <cinttypes>

#include "common/logging.hh"

namespace silc {

namespace {

/** Enough for a typical in-flight window; grows geometrically after. */
constexpr size_t kInitialCapacity = 256;

} // namespace

void
EventQueue::schedule(Tick when, EventCallback cb)
{
    if (when < last_run_tick_) {
        panic("scheduling event in the past (when=%" PRIu64
              ", now=%" PRIu64 ")", when, last_run_tick_);
    }
    if (heap_.capacity() == 0)
        heap_.reserve(kInitialCapacity);
    heap_.push_back(Entry{when, next_seq_++, std::move(cb)});
    std::push_heap(heap_.begin(), heap_.end(), Later{});
}

void
EventQueue::scheduleKeyed(Tick when, uint64_t seq, EventCallback cb)
{
    if (when < last_run_tick_) {
        panic("scheduling keyed event in the past (when=%" PRIu64
              ", now=%" PRIu64 ")", when, last_run_tick_);
    }
    if (heap_.capacity() == 0)
        heap_.reserve(kInitialCapacity);
    heap_.push_back(Entry{when, seq, std::move(cb)});
    std::push_heap(heap_.begin(), heap_.end(), Later{});
}

EventId
EventQueue::scheduleCancellable(Tick when, EventCallback cb)
{
    const EventId id = next_seq_;
    schedule(when, std::move(cb));
    return id;
}

void
EventQueue::cancel(EventId id)
{
    if (id == kEventIdInvalid)
        return;
    tombstones_.insert(id);
    ++cancelled_total_;
}

size_t
EventQueue::runDueSlow(Tick now)
{
    last_run_tick_ = now;
    size_t count = 0;
    while (!heap_.empty() && heap_.front().when <= now) {
        std::pop_heap(heap_.begin(), heap_.end(), Later{});
        Entry entry = std::move(heap_.back());
        heap_.pop_back();
        if (!tombstones_.empty() && tombstones_.erase(entry.seq) != 0)
            continue;
        entry.cb(entry.when);
        ++count;
        ++executed_;
    }
    return count;
}

Tick
EventQueue::nextEventTick() const
{
    return heap_.empty() ? kTickNever : heap_.front().when;
}

void
EventQueue::clear()
{
    heap_.clear();
    tombstones_.clear();
    last_run_tick_ = 0;
}

} // namespace silc
