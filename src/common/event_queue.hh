/**
 * @file
 * A deterministic discrete-event queue driven in lockstep with the global
 * cycle loop.
 *
 * Components schedule callbacks at absolute ticks; the simulator drains all
 * events due at the current tick each cycle.  Ties are broken by insertion
 * order so simulations are bit-exact across runs.
 */

#ifndef SILC_COMMON_EVENT_QUEUE_HH
#define SILC_COMMON_EVENT_QUEUE_HH

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "common/small_function.hh"
#include "common/types.hh"

namespace silc {

/**
 * Callback invoked when an event fires; receives the firing tick.
 *
 * A SmallFunction rather than std::function: completion lambdas capture
 * a DemandCallback plus a few words of context, which overflows
 * std::function's tiny inline buffer and would heap-allocate on every
 * schedule() — the hottest allocation site in the simulator (see
 * BM_EventSchedule* in bench/micro_structures.cc).
 */
using EventCallback = SmallFunction<void(Tick), 64>;

/** Handle naming one cancellable event (see scheduleCancellable()). */
using EventId = uint64_t;

/** Sentinel for "no event" / "already fired". */
constexpr EventId kEventIdInvalid = ~EventId(0);

/**
 * Min-heap of timed callbacks with FIFO tie-breaking.
 *
 * The queue is intentionally simple: the simulator's hot paths (cores and
 * memory controllers) tick explicitly in the main loop, so only
 * transaction-completion style events and the DRAM controllers' re-armed
 * wakeups land here.
 */
class EventQueue
{
  public:
    EventQueue() = default;

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /**
     * Schedule @p cb to run at absolute tick @p when.
     *
     * @pre when must not be in the past relative to the last runDue() tick.
     */
    void schedule(Tick when, EventCallback cb);

    /** Schedule @p cb to run @p delay ticks after @p now. */
    void
    scheduleIn(Tick now, Tick delay, EventCallback cb)
    {
        schedule(now + delay, std::move(cb));
    }

    /**
     * Like schedule(), but returns a handle usable with cancel().  The
     * handle is consumed when the event fires; callers that re-arm must
     * forget it at the top of the callback (see ChannelController).
     */
    EventId scheduleCancellable(Tick when, EventCallback cb);

    // ---- Deterministic ordering keys (windowed parallel execution) ---
    //
    // Tie-breaking between events due at the same tick is by sequence
    // number, i.e. insertion order.  The windowed parallel simulator
    // (sim/domain.hh) replays DRAM channel scans *after* the serial core
    // phase of a window has already scheduled its events, so plain
    // insertion order would no longer equal the sequential simulator's
    // chronological scheduling order.  Order points fix that: the main
    // loop advances the sequence counter to a composite
    // (tick, loop-phase) base before each phase, and the window merge
    // inserts deferred DRAM completions with explicitly composed keys —
    // the exact sequence values the sequential run would have assigned —
    // making the heap order bit-identical to the sequential schedule.

    /** Bits of the per-order-point counter below the composite base. */
    static constexpr unsigned kOrderCounterBits = 24;

    /**
     * Compose the sequence base for main-loop phase @p phase (0-3) of
     * tick @p tick.  Phases follow the main loop: 0 events+cores, 1 NM
     * scan, 2 FM scan, 3 policy.
     */
    static constexpr uint64_t
    orderKey(Tick tick, uint32_t phase, uint64_t counter = 0)
    {
        return (((tick << 2) | phase) << kOrderCounterBits) | counter;
    }

    /**
     * Advance the sequence counter to the base for (@p tick, @p phase).
     * Subsequent schedule() calls take ascending sequence numbers from
     * that base.  Never moves the counter backwards (pre-loop schedules
     * already consumed the low values), so with ascending order points
     * the relative order of scheduled events is untouched — this only
     * creates gaps for scheduleKeyed() to target.
     */
    void
    setOrderPoint(Tick tick, uint32_t phase)
    {
        const uint64_t base = orderKey(tick, phase);
        if (base > next_seq_)
            next_seq_ = base;
    }

    /**
     * Schedule @p cb at tick @p when with an explicit sequence @p seq
     * (compose with orderKey()).  Used by the window merge to insert
     * deferred DRAM completions at their sequential-equivalent position;
     * the caller owns uniqueness of (when, seq).
     */
    void scheduleKeyed(Tick when, uint64_t seq, EventCallback cb);

    /**
     * Cancel a pending cancellable event.  The entry stays in the heap
     * and is discarded (without running) when it reaches the front —
     * lazy deletion, so cancel is O(1).
     *
     * @pre id names an event that has not fired yet (callers must drop
     *      their handle when the callback runs); cancelling a fired id
     *      would leak a tombstone until clear().
     */
    void cancel(EventId id);

    /**
     * Run every event due at or before @p now, in (tick, insertion) order.
     * Events scheduled while draining for the same tick also run.
     *
     * Inline fast path: the per-cycle call from the simulator's main loop
     * is almost always a no-op, so the empty/not-due check must not cost
     * a function call.
     *
     * @return number of events executed.
     */
    size_t
    runDue(Tick now)
    {
        if (heap_.empty() || heap_.front().when > now) {
            last_run_tick_ = now;
            return 0;
        }
        return runDueSlow(now);
    }

    /** Tick of the earliest pending event, or kTickNever when empty. */
    Tick nextEventTick() const;

    /** True when no events are pending (cancelled entries count). */
    bool empty() const { return heap_.empty(); }

    /** Number of pending events. */
    size_t size() const { return heap_.size(); }

    /** Total number of events ever executed. */
    uint64_t executed() const { return executed_; }

    /** Total number of events ever cancelled. */
    uint64_t cancelled() const { return cancelled_total_; }

    /** Drop all pending events (used between experiment runs). */
    void clear();

  private:
    struct Entry
    {
        Tick when;
        uint64_t seq;
        EventCallback cb;
    };

    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    size_t runDueSlow(Tick now);

    // An explicit vector heap (std::push_heap/pop_heap) instead of
    // std::priority_queue: the storage can be reserved up front and its
    // capacity survives clear(), and popped entries move out cleanly
    // without the const_cast that priority_queue::top() forces.
    std::vector<Entry> heap_;
    /** Sequence numbers of cancelled-but-not-yet-popped entries. */
    std::unordered_set<uint64_t> tombstones_;
    uint64_t next_seq_ = 0;
    uint64_t executed_ = 0;
    uint64_t cancelled_total_ = 0;
    Tick last_run_tick_ = 0;
};

} // namespace silc

#endif // SILC_COMMON_EVENT_QUEUE_HH
