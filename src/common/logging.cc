#include "common/logging.hh"

#include <atomic>
#include <cstdarg>
#include <mutex>
#include <vector>

namespace silc {

namespace {

std::atomic<uint64_t> warn_counter{0};

/** Serialises writes to the sinks; parallel runs share stderr. */
std::mutex sink_mutex;

thread_local std::string thread_tag;

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Panic: return "panic";
      case LogLevel::Fatal: return "fatal";
      case LogLevel::Warn: return "warn";
      case LogLevel::Inform: return "info";
    }
    return "?";
}

} // namespace

std::string
logFormatV(const char *fmt, va_list args)
{
    va_list copy;
    va_copy(copy, args);
    int needed = std::vsnprintf(nullptr, 0, fmt, copy);
    va_end(copy);
    if (needed < 0)
        return std::string(fmt);
    std::vector<char> buf(static_cast<size_t>(needed) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args);
    return std::string(buf.data());
}

std::string
logFormat(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string out = logFormatV(fmt, args);
    va_end(args);
    return out;
}

void
logEmit(LogLevel level, const std::string &msg)
{
    if (level == LogLevel::Warn)
        warn_counter.fetch_add(1, std::memory_order_relaxed);
    std::FILE *sink = (level == LogLevel::Inform) ? stdout : stderr;
    std::lock_guard<std::mutex> lock(sink_mutex);
    if (thread_tag.empty()) {
        std::fprintf(sink, "%s: %s\n", levelName(level), msg.c_str());
    } else {
        std::fprintf(sink, "%s: [%s] %s\n", levelName(level),
                     thread_tag.c_str(), msg.c_str());
    }
}

uint64_t
warnCount()
{
    return warn_counter.load(std::memory_order_relaxed);
}

void
logSetThreadTag(std::string tag)
{
    thread_tag = std::move(tag);
}

const std::string &
logThreadTag()
{
    return thread_tag;
}

void
panic(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    logEmit(LogLevel::Panic, logFormatV(fmt, args));
    va_end(args);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    logEmit(LogLevel::Fatal, logFormatV(fmt, args));
    va_end(args);
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    logEmit(LogLevel::Warn, logFormatV(fmt, args));
    va_end(args);
}

void
inform(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    logEmit(LogLevel::Inform, logFormatV(fmt, args));
    va_end(args);
}

} // namespace silc
