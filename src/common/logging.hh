/**
 * @file
 * gem5-style status and error reporting.
 *
 * panic()  - an internal invariant was violated (simulator bug); aborts.
 * fatal()  - the user asked for something impossible (bad config); exits.
 * warn()   - something is suspicious but simulation can continue.
 * inform() - purely informational status output.
 */

#ifndef SILC_COMMON_LOGGING_HH
#define SILC_COMMON_LOGGING_HH

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace silc {

/** Severity classes understood by the log sink. */
enum class LogLevel { Panic, Fatal, Warn, Inform };

/**
 * Formats a printf-style message and routes it to the log sink.
 * Exposed mainly so tests can exercise formatting without dying.
 */
std::string logFormat(const char *fmt, ...);

/** printf-style va_list variant of logFormat. */
std::string logFormatV(const char *fmt, va_list args);

/**
 * Emit @p msg at @p level without terminating.  Thread-safe: the sink is
 * mutex-guarded so messages from concurrent simulation runs never
 * interleave mid-line.
 */
void logEmit(LogLevel level, const std::string &msg);

/** Number of warnings emitted so far (useful in tests). */
uint64_t warnCount();

/**
 * Attach a tag (e.g. "mcf/silcfm") to every message this thread emits,
 * so output from parallel runs is attributable.  Empty clears the tag.
 */
void logSetThreadTag(std::string tag);

/** The calling thread's current log tag ("" when unset). */
const std::string &logThreadTag();

/** Internal invariant violated: print and abort(). */
[[noreturn]] void panic(const char *fmt, ...);

/** User/config error: print and exit(1). */
[[noreturn]] void fatal(const char *fmt, ...);

/** Suspicious but survivable condition. */
void warn(const char *fmt, ...);

/** Informational status message. */
void inform(const char *fmt, ...);

/** panic() with a standard message unless @p cond holds. */
#define silc_assert(cond)                                                   \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::silc::panic("assertion '%s' failed at %s:%d", #cond,          \
                          __FILE__, __LINE__);                              \
        }                                                                   \
    } while (0)

} // namespace silc

#endif // SILC_COMMON_LOGGING_HH
