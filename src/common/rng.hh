/**
 * @file
 * Deterministic pseudo-random number generation for workload synthesis and
 * randomized placement policies.
 *
 * A SplitMix64 seeder feeding xoshiro256** state; small, fast, and
 * reproducible across platforms (unlike std::mt19937 distributions, whose
 * outputs are implementation-defined for some distribution types).
 */

#ifndef SILC_COMMON_RNG_HH
#define SILC_COMMON_RNG_HH

#include <array>
#include <cmath>
#include <cstdint>

#include "common/logging.hh"

namespace silc {

/** xoshiro256** PRNG with SplitMix64 seeding. */
class Rng
{
  public:
    /** Construct from a 64-bit seed (default: a fixed project seed). */
    explicit Rng(uint64_t seed = 0x51CF00D5EEDULL) { reseed(seed); }

    /** Re-initialise the state from @p seed. */
    void
    reseed(uint64_t seed)
    {
        uint64_t x = seed;
        for (auto &word : s_)
            word = splitmix64(x);
    }

    /** Next raw 64-bit value. */
    uint64_t
    next()
    {
        const uint64_t result = rotl(s_[1] * 5, 7) * 9;
        const uint64_t t = s_[1] << 17;
        s_[2] ^= s_[0];
        s_[3] ^= s_[1];
        s_[1] ^= s_[2];
        s_[0] ^= s_[3];
        s_[2] ^= t;
        s_[3] = rotl(s_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). @pre bound > 0. */
    uint64_t
    below(uint64_t bound)
    {
        silc_assert(bound > 0);
        // Lemire's multiply-shift rejection-free approximation is fine for
        // simulation purposes; use 128-bit multiply for unbiased-enough
        // mapping.
        return static_cast<uint64_t>(
            (static_cast<unsigned __int128>(next()) * bound) >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. @pre lo <= hi. */
    uint64_t
    between(uint64_t lo, uint64_t hi)
    {
        silc_assert(lo <= hi);
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability @p p of returning true. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

    /** The raw xoshiro256** state, for checkpoint serialization. */
    std::array<uint64_t, 4>
    state() const
    {
        return {s_[0], s_[1], s_[2], s_[3]};
    }

    /** Restore state captured by state(). */
    void
    setState(const std::array<uint64_t, 4> &s)
    {
        for (int i = 0; i < 4; ++i)
            s_[i] = s[i];
    }

  private:
    static uint64_t
    rotl(uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    static uint64_t
    splitmix64(uint64_t &state)
    {
        uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
        z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
        z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
        return z ^ (z >> 31);
    }

    uint64_t s_[4];
};

/**
 * Zipfian sampler over [0, n): rank r is drawn with probability
 * proportional to 1 / (r+1)^alpha.  Used to model skewed page popularity
 * (hot working sets) in the synthetic SPEC-like workloads.
 *
 * Uses the rejection-inversion method of Hormann & Derflinger, which is
 * O(1) per sample and exact for alpha != 1 as well.
 */
class ZipfSampler
{
  public:
    /**
     * @param n     number of items (> 0)
     * @param alpha skew (0 = uniform; typical hot-page skew 0.6 - 1.2)
     */
    ZipfSampler(uint64_t n, double alpha)
        : n_(n), alpha_(alpha)
    {
        silc_assert(n > 0);
        silc_assert(alpha >= 0.0);
        hxm_ = h(static_cast<double>(n) + 0.5);
        const double h0 = h(0.5);
        hx0_minus_hxm_ = h0 - hxm_;
        s_ = 2.0 - hInv(h(2.5) - pow1(2.0));
    }

    /** Draw a rank in [0, n) using entropy from @p rng. */
    uint64_t
    sample(Rng &rng)
    {
        if (alpha_ == 0.0)
            return rng.below(n_);
        while (true) {
            const double u = hxm_ + rng.uniform() * hx0_minus_hxm_;
            const double x = hInv(u);
            double k = std::floor(x + 0.5);
            if (k < 1.0)
                k = 1.0;
            else if (k > static_cast<double>(n_))
                k = static_cast<double>(n_);
            if (k - x <= s_ || u >= h(k + 0.5) - pow1(k)) {
                return static_cast<uint64_t>(k) - 1;
            }
        }
    }

    uint64_t items() const { return n_; }
    double alpha() const { return alpha_; }

  private:
    // H(x) = integral of 1/x^alpha
    double
    h(double x) const
    {
        if (alpha_ == 1.0)
            return std::log(x);
        return (std::pow(x, 1.0 - alpha_) - 1.0) / (1.0 - alpha_);
    }

    double
    hInv(double x) const
    {
        if (alpha_ == 1.0)
            return std::exp(x);
        return std::pow(1.0 + x * (1.0 - alpha_), 1.0 / (1.0 - alpha_));
    }

    double
    pow1(double x) const
    {
        return std::pow(x, -alpha_);
    }

    uint64_t n_;
    double alpha_;
    double hxm_;
    double hx0_minus_hxm_;
    double s_;
};

} // namespace silc

#endif // SILC_COMMON_RNG_HH
