#include "common/serialize.hh"

#include <cstring>

#include "common/logging.hh"

namespace silc {

void
BlobWriter::raw(const void *p, size_t n)
{
    const uint8_t *b = static_cast<const uint8_t *>(p);
    buf_.insert(buf_.end(), b, b + n);
}

void
BlobWriter::putU32(uint32_t v)
{
    uint8_t b[4];
    for (int i = 0; i < 4; ++i)
        b[i] = static_cast<uint8_t>(v >> (8 * i));
    raw(b, sizeof(b));
}

void
BlobWriter::putU64(uint64_t v)
{
    uint8_t b[8];
    for (int i = 0; i < 8; ++i)
        b[i] = static_cast<uint8_t>(v >> (8 * i));
    raw(b, sizeof(b));
}

void
BlobWriter::putF64(double v)
{
    static_assert(sizeof(double) == sizeof(uint64_t), "IEEE-754 doubles");
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    putU64(bits);
}

void
BlobWriter::putStr(const std::string &s)
{
    putU64(s.size());
    raw(s.data(), s.size());
}

void
BlobWriter::section(const char tag[5])
{
    raw(tag, 4);
}

const uint8_t *
BlobReader::need(size_t n)
{
    if (n > buf_.size() - pos_) {
        fatal("checkpoint blob truncated: need %zu bytes at offset %zu "
              "of %zu", n, pos_, buf_.size());
    }
    const uint8_t *p = buf_.data() + pos_;
    pos_ += n;
    return p;
}

uint8_t
BlobReader::getU8()
{
    return *need(1);
}

uint32_t
BlobReader::getU32()
{
    const uint8_t *b = need(4);
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<uint32_t>(b[i]) << (8 * i);
    return v;
}

uint64_t
BlobReader::getU64()
{
    const uint8_t *b = need(8);
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<uint64_t>(b[i]) << (8 * i);
    return v;
}

double
BlobReader::getF64()
{
    const uint64_t bits = getU64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
}

std::string
BlobReader::getStr()
{
    const uint64_t n = getU64();
    if (n > remaining()) {
        fatal("checkpoint blob truncated: string of %llu bytes at offset "
              "%zu of %zu", static_cast<unsigned long long>(n), pos_,
              buf_.size());
    }
    const uint8_t *b = need(static_cast<size_t>(n));
    return std::string(reinterpret_cast<const char *>(b),
                       static_cast<size_t>(n));
}

void
BlobReader::expect(const char tag[5])
{
    const uint8_t *b = need(4);
    if (std::memcmp(b, tag, 4) != 0) {
        fatal("checkpoint section mismatch at offset %zu: expected '%s', "
              "found '%c%c%c%c'", pos_ - 4, tag, b[0], b[1], b[2], b[3]);
    }
}

void
BlobReader::done() const
{
    if (pos_ != buf_.size()) {
        fatal("checkpoint blob has %zu trailing bytes (consumed %zu of "
              "%zu)", buf_.size() - pos_, pos_, buf_.size());
    }
}

} // namespace silc
