/**
 * @file
 * In-memory checkpoint blob serialization.
 *
 * The sampling subsystem (src/sample/) snapshots simulator state into a
 * flat byte buffer so one functional-warming pass can yield N
 * checkpoints that replay independently (and in parallel) later.
 * BlobWriter appends typed little-endian fields; BlobReader consumes
 * them in the same order.  There is no self-describing framing beyond
 * four-byte section tags: writer and reader are versioned together via
 * the 'SILC' header section (see sample/checkpoint.cc), which is enough
 * for an in-process, same-binary format.
 *
 * Readers are bounds-checked: a truncated or misordered blob is a
 * checkpoint-corruption bug and fatal()s with the offending offset
 * rather than returning garbage state.
 */

#ifndef SILC_COMMON_SERIALIZE_HH
#define SILC_COMMON_SERIALIZE_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace silc {

/** Append-only typed writer over a growable byte buffer. */
class BlobWriter
{
  public:
    void putU8(uint8_t v) { raw(&v, 1); }
    void putU32(uint32_t v);
    void putU64(uint64_t v);
    void putI64(int64_t v) { putU64(static_cast<uint64_t>(v)); }
    void putBool(bool v) { putU8(v ? 1 : 0); }
    void putF64(double v);
    void putStr(const std::string &s);

    /**
     * Write a four-character section marker (e.g. "TRCE").  Cheap
     * structural redundancy: the reader's expect() catches writer/reader
     * drift at the section boundary instead of fields later.
     */
    void section(const char tag[5]);

    const std::vector<uint8_t> &data() const { return buf_; }
    size_t size() const { return buf_.size(); }

  private:
    void raw(const void *p, size_t n);

    std::vector<uint8_t> buf_;
};

/**
 * Sequential typed reader over a checkpoint blob.  All reads are
 * bounds-checked and fatal() on truncation; done() verifies the whole
 * blob was consumed (a partial read means the schemas diverged).
 */
class BlobReader
{
  public:
    explicit BlobReader(const std::vector<uint8_t> &buf) : buf_(buf) {}

    uint8_t getU8();
    uint32_t getU32();
    uint64_t getU64();
    int64_t getI64() { return static_cast<int64_t>(getU64()); }
    bool getBool() { return getU8() != 0; }
    double getF64();
    std::string getStr();

    /** Consume a section marker, fatal()ing if it is not @p tag. */
    void expect(const char tag[5]);

    size_t offset() const { return pos_; }
    size_t remaining() const { return buf_.size() - pos_; }

    /** fatal() unless every byte of the blob has been consumed. */
    void done() const;

  private:
    const uint8_t *need(size_t n);

    const std::vector<uint8_t> &buf_;
    size_t pos_ = 0;
};

} // namespace silc

#endif // SILC_COMMON_SERIALIZE_HH
