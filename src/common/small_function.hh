/**
 * @file
 * A move-only callable wrapper with a large inline buffer.
 *
 * The event queue schedules millions of completion callbacks per run;
 * wrapping each one in std::function heap-allocates as soon as the
 * capture exceeds the library's tiny SBO (16 bytes on libstdc++).
 * SmallFunction keeps captures up to its Capacity inline — sized so the
 * simulator's completion lambdas (a captured DemandCallback plus a few
 * words of context) never touch the allocator — and falls back to the
 * heap only for oversized callables.
 *
 * Unlike std::function it is move-only, so it can also hold callables
 * with move-only captures.
 */

#ifndef SILC_COMMON_SMALL_FUNCTION_HH
#define SILC_COMMON_SMALL_FUNCTION_HH

#include <cstddef>
#include <memory>
#include <type_traits>
#include <utility>

namespace silc {

template <typename Signature, size_t Capacity = 64>
class SmallFunction;

template <typename R, typename... Args, size_t Capacity>
class SmallFunction<R(Args...), Capacity>
{
  public:
    SmallFunction() = default;
    SmallFunction(std::nullptr_t) {}

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, SmallFunction> &&
                  std::is_invocable_r_v<R, std::decay_t<F> &, Args...>>>
    SmallFunction(F &&f)
    {
        using Fn = std::decay_t<F>;
        if constexpr (fitsInline<Fn>()) {
            ::new (static_cast<void *>(buf_)) Fn(std::forward<F>(f));
            ops_ = &inlineOps<Fn>;
        } else {
            ::new (static_cast<void *>(buf_))
                Fn *(new Fn(std::forward<F>(f)));
            ops_ = &heapOps<Fn>;
        }
    }

    SmallFunction(SmallFunction &&other) noexcept { moveFrom(other); }

    SmallFunction &
    operator=(SmallFunction &&other) noexcept
    {
        if (this != &other) {
            reset();
            moveFrom(other);
        }
        return *this;
    }

    SmallFunction(const SmallFunction &) = delete;
    SmallFunction &operator=(const SmallFunction &) = delete;

    ~SmallFunction() { reset(); }

    explicit operator bool() const { return ops_ != nullptr; }

    R
    operator()(Args... args)
    {
        return ops_->invoke(buf_, std::forward<Args>(args)...);
    }

    /** True when the held callable lives in the inline buffer. */
    bool
    storedInline() const
    {
        return ops_ != nullptr && ops_->inline_storage;
    }

  private:
    struct Ops
    {
        R (*invoke)(void *, Args &&...);
        void (*relocate)(void *dst, void *src);  ///< move + destroy src
        void (*destroy)(void *);
        bool inline_storage;
    };

    template <typename Fn>
    static constexpr bool
    fitsInline()
    {
        return sizeof(Fn) <= Capacity &&
            alignof(Fn) <= alignof(std::max_align_t) &&
            std::is_nothrow_move_constructible_v<Fn>;
    }

    template <typename Fn>
    static constexpr Ops inlineOps = {
        [](void *p, Args &&...args) -> R {
            return (*std::launder(reinterpret_cast<Fn *>(p)))(
                std::forward<Args>(args)...);
        },
        [](void *dst, void *src) {
            Fn *s = std::launder(reinterpret_cast<Fn *>(src));
            ::new (dst) Fn(std::move(*s));
            s->~Fn();
        },
        [](void *p) { std::launder(reinterpret_cast<Fn *>(p))->~Fn(); },
        true,
    };

    template <typename Fn>
    static constexpr Ops heapOps = {
        [](void *p, Args &&...args) -> R {
            return (**std::launder(reinterpret_cast<Fn **>(p)))(
                std::forward<Args>(args)...);
        },
        [](void *dst, void *src) {
            // Pointers are trivially destructible; relocating is a copy.
            ::new (dst) Fn *(*std::launder(reinterpret_cast<Fn **>(src)));
        },
        [](void *p) { delete *std::launder(reinterpret_cast<Fn **>(p)); },
        false,
    };

    void
    reset()
    {
        if (ops_ != nullptr) {
            ops_->destroy(buf_);
            ops_ = nullptr;
        }
    }

    void
    moveFrom(SmallFunction &other)
    {
        if (other.ops_ != nullptr) {
            other.ops_->relocate(buf_, other.buf_);
            ops_ = other.ops_;
            other.ops_ = nullptr;
        }
    }

    alignas(std::max_align_t) unsigned char buf_[Capacity];
    const Ops *ops_ = nullptr;
};

} // namespace silc

#endif // SILC_COMMON_SMALL_FUNCTION_HH
