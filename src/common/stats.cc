#include "common/stats.hh"

#include <cmath>
#include <iomanip>
#include <sstream>

#include "common/logging.hh"

namespace silc {
namespace stats {

std::string
StatBase::render() const
{
    std::ostringstream os;
    os << value();
    return os.str();
}

Distribution::Distribution(double min, double max, size_t num_buckets)
{
    init(min, max, num_buckets);
}

void
Distribution::init(double min, double max, size_t num_buckets)
{
    silc_assert(max > min);
    silc_assert(num_buckets > 0);
    min_ = min;
    max_ = max;
    bucket_width_ = (max - min) / static_cast<double>(num_buckets);
    buckets_.assign(num_buckets, 0);
    underflow_ = overflow_ = 0;
    n_ = 0;
    sum_ = 0.0;
}

void
Distribution::sample(double v)
{
    ++n_;
    sum_ += v;
    if (v < min_) {
        ++underflow_;
    } else if (v >= max_) {
        ++overflow_;
    } else {
        auto idx = static_cast<size_t>((v - min_) / bucket_width_);
        if (idx >= buckets_.size())
            idx = buckets_.size() - 1;
        ++buckets_[idx];
    }
}

double
Distribution::value() const
{
    return n_ == 0 ? 0.0 : sum_ / static_cast<double>(n_);
}

double
Distribution::percentile(double p) const
{
    if (n_ == 0)
        return 0.0;
    p = std::min(1.0, std::max(0.0, p));
    const double target = p * static_cast<double>(n_);
    double cum = static_cast<double>(underflow_);
    if (target <= cum)
        return min_;
    for (size_t i = 0; i < buckets_.size(); ++i) {
        const auto cnt = static_cast<double>(buckets_[i]);
        if (cnt > 0.0 && target <= cum + cnt) {
            const double frac = (target - cum) / cnt;
            return min_ +
                (static_cast<double>(i) + frac) * bucket_width_;
        }
        cum += cnt;
    }
    return max_;
}

Distribution
Distribution::minus(const Distribution &earlier) const
{
    silc_assert(min_ == earlier.min_ && max_ == earlier.max_ &&
                buckets_.size() == earlier.buckets_.size());
    silc_assert(n_ >= earlier.n_ && underflow_ >= earlier.underflow_ &&
                overflow_ >= earlier.overflow_);
    Distribution d(min_, max_, buckets_.size());
    for (size_t i = 0; i < buckets_.size(); ++i) {
        silc_assert(buckets_[i] >= earlier.buckets_[i]);
        d.buckets_[i] = buckets_[i] - earlier.buckets_[i];
    }
    d.underflow_ = underflow_ - earlier.underflow_;
    d.overflow_ = overflow_ - earlier.overflow_;
    d.n_ = n_ - earlier.n_;
    d.sum_ = sum_ - earlier.sum_;
    return d;
}

void
Distribution::reset()
{
    for (auto &b : buckets_)
        b = 0;
    underflow_ = overflow_ = 0;
    n_ = 0;
    sum_ = 0.0;
}

std::string
Distribution::render() const
{
    std::ostringstream os;
    os << "mean=" << value() << " n=" << n_ << " p50=" << percentile(0.5)
       << " p95=" << percentile(0.95) << " p99=" << percentile(0.99);
    return os.str();
}

void
StatSet::add(const std::string &name, StatBase &stat)
{
    auto [it, inserted] = stats_.emplace(name, &stat);
    (void)it;
    if (!inserted)
        panic("duplicate stat name '%s'", name.c_str());
    order_.push_back(name);
}

const StatBase *
StatSet::find(const std::string &name) const
{
    auto it = stats_.find(name);
    return it == stats_.end() ? nullptr : it->second;
}

double
StatSet::get(const std::string &name) const
{
    const StatBase *s = find(name);
    if (s == nullptr)
        panic("unknown stat '%s'", name.c_str());
    return s->value();
}

void
StatSet::resetAll()
{
    for (auto &[name, stat] : stats_) {
        (void)name;
        stat->reset();
    }
}

void
StatSet::dump(std::ostream &os, const std::string &prefix) const
{
    for (const auto &name : order_) {
        const StatBase *s = stats_.at(name);
        os << std::left << std::setw(44) << (prefix + name) << " "
           << std::setw(16) << s->render();
        if (!s->desc().empty())
            os << " # " << s->desc();
        os << "\n";
    }
}

} // namespace stats
} // namespace silc
