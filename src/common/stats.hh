/**
 * @file
 * Lightweight statistics package in the spirit of gem5's Stats.
 *
 * Components own concrete stat objects (Scalar, Average, Distribution) and
 * register them, with hierarchical names, into a StatSet.  The StatSet can
 * enumerate, reset, and pretty-print everything — this is what the bench
 * harness uses to extract figure data.
 */

#ifndef SILC_COMMON_STATS_HH
#define SILC_COMMON_STATS_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace silc {
namespace stats {

/** Abstract base for all statistics. */
class StatBase
{
  public:
    virtual ~StatBase() = default;

    /** Primary scalar view of the stat (count, mean, ...). */
    virtual double value() const = 0;

    /** Reset to the zero state. */
    virtual void reset() = 0;

    /** One-line textual rendering used by StatSet::dump(). */
    virtual std::string render() const;

    /** Short description shown next to the value. */
    const std::string &desc() const { return desc_; }

    /** Attach a human-readable description; returns *this for chaining. */
    StatBase &
    describe(std::string d)
    {
        desc_ = std::move(d);
        return *this;
    }

  private:
    std::string desc_;
};

/** Monotonic counter. */
class Scalar : public StatBase
{
  public:
    Scalar &operator++() { ++count_; return *this; }
    Scalar &operator+=(uint64_t v) { count_ += v; return *this; }

    uint64_t count() const { return count_; }
    double value() const override { return static_cast<double>(count_); }
    void reset() override { count_ = 0; }

  private:
    uint64_t count_ = 0;
};

/** Running mean of samples (e.g. latency averages). */
class Average : public StatBase
{
  public:
    void
    sample(double v)
    {
        sum_ += v;
        ++n_;
    }

    uint64_t samples() const { return n_; }
    double sum() const { return sum_; }

    double
    value() const override
    {
        return n_ == 0 ? 0.0 : sum_ / static_cast<double>(n_);
    }

    void
    reset() override
    {
        sum_ = 0.0;
        n_ = 0;
    }

  private:
    double sum_ = 0.0;
    uint64_t n_ = 0;
};

/**
 * Fixed-width bucketed histogram over [min, max); samples outside the
 * range land in saturating under/overflow buckets.
 */
class Distribution : public StatBase
{
  public:
    Distribution() : Distribution(0.0, 1.0, 1) {}

    /** Configure buckets; may also be called to re-shape before use. */
    Distribution(double min, double max, size_t num_buckets);

    void init(double min, double max, size_t num_buckets);

    void sample(double v);

    uint64_t samples() const { return n_; }
    double min() const { return min_; }
    double max() const { return max_; }
    const std::vector<uint64_t> &buckets() const { return buckets_; }
    uint64_t underflows() const { return underflow_; }
    uint64_t overflows() const { return overflow_; }

    /** Mean of all samples (including out-of-range ones). */
    double value() const override;

    /**
     * The @p p quantile (p in [0, 1]) estimated from the buckets with
     * linear interpolation inside the containing bucket.  Samples in the
     * underflow bucket report min(), overflow samples max() — the
     * histogram cannot resolve beyond its range.  Zero samples yield 0.
     */
    double percentile(double p) const;

    /**
     * Bucket-wise difference against an earlier snapshot of the same
     * histogram: the returned distribution holds exactly the samples
     * recorded after @p earlier was copied.  Both operands must share
     * geometry (min/max/bucket count) and @p earlier must be a prefix
     * (every count <= ours); the sampling subsystem uses this to turn
     * cumulative DRAM latency histograms into per-window ones.
     */
    Distribution minus(const Distribution &earlier) const;

    void reset() override;
    std::string render() const override;

  private:
    double min_ = 0.0;
    double max_ = 1.0;
    double bucket_width_ = 1.0;
    std::vector<uint64_t> buckets_;
    uint64_t underflow_ = 0;
    uint64_t overflow_ = 0;
    uint64_t n_ = 0;
    double sum_ = 0.0;
};

/**
 * Named registry of stats.  Does not own the stat objects; owners must
 * outlive the set (in practice both live inside the same component).
 */
class StatSet
{
  public:
    /** Register @p stat under @p name. Duplicate names are a panic. */
    void add(const std::string &name, StatBase &stat);

    /** Look a stat up by exact name; nullptr when absent. */
    const StatBase *find(const std::string &name) const;

    /** Scalar value of a registered stat; panics when absent. */
    double get(const std::string &name) const;

    /** Reset every registered stat. */
    void resetAll();

    /** Names in registration order. */
    const std::vector<std::string> &names() const { return order_; }

    /** Pretty-print "name value # desc" lines, gem5 stats.txt style. */
    void dump(std::ostream &os, const std::string &prefix = "") const;

  private:
    std::map<std::string, StatBase *> stats_;
    std::vector<std::string> order_;
};

} // namespace stats
} // namespace silc

#endif // SILC_COMMON_STATS_HH
