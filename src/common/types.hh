/**
 * @file
 * Fundamental scalar types and address-geometry constants shared by every
 * subsystem of the SILC-FM reproduction.
 *
 * The paper (SILC-FM, HPCA 2017, Section II) fixes two granularities:
 * a "subblock" (or small block) is 64B of contiguous address space and a
 * "large block" (page) is 2KB.  All remapping metadata is kept per large
 * block while data movement happens per subblock.
 */

#ifndef SILC_COMMON_TYPES_HH
#define SILC_COMMON_TYPES_HH

#include <cstdint>
#include <cstddef>

namespace silc {

/** Global simulation time, measured in CPU cycles (3.2 GHz by default). */
using Tick = uint64_t;

/** A physical or virtual byte address. */
using Addr = uint64_t;

/** An index of a CPU core. */
using CoreId = uint32_t;

/** Sentinel for "no tick scheduled". */
constexpr Tick kTickNever = ~Tick(0);

/** Sentinel for an invalid address. */
constexpr Addr kAddrInvalid = ~Addr(0);

/** Size of a subblock (small block) in bytes; also the cache line size. */
constexpr uint64_t kSubblockSize = 64;

/** Size of a large block (page) in bytes. */
constexpr uint64_t kLargeBlockSize = 2048;

/** Number of subblocks within a large block (32 in the paper). */
constexpr uint32_t kSubblocksPerBlock =
    static_cast<uint32_t>(kLargeBlockSize / kSubblockSize);

/** log2 of the subblock size. */
constexpr uint32_t kSubblockBits = 6;

/** log2 of the large block size. */
constexpr uint32_t kLargeBlockBits = 11;

static_assert((uint64_t(1) << kSubblockBits) == kSubblockSize);
static_assert((uint64_t(1) << kLargeBlockBits) == kLargeBlockSize);
static_assert(kSubblocksPerBlock == 32);

/** Integer log2 for power-of-two values (0 maps to 0). */
constexpr uint32_t
floorLog2(uint64_t x)
{
    uint32_t result = 0;
    while (x > 1) {
        x >>= 1;
        ++result;
    }
    return result;
}

/** True when @p x is a power of two (and non-zero). */
constexpr bool
isPowerOf2(uint64_t x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

/** Align @p addr down to a multiple of @p align (power of two). */
constexpr Addr
alignDown(Addr addr, uint64_t align)
{
    return addr & ~(align - 1);
}

/** The subblock-aligned address containing @p addr. */
constexpr Addr
subblockAddr(Addr addr)
{
    return alignDown(addr, kSubblockSize);
}

/** The large-block-aligned address containing @p addr. */
constexpr Addr
largeBlockAddr(Addr addr)
{
    return alignDown(addr, kLargeBlockSize);
}

/** Index of the large block containing @p addr. */
constexpr uint64_t
largeBlockNumber(Addr addr)
{
    return addr >> kLargeBlockBits;
}

/** Index of the subblock containing @p addr, within the whole space. */
constexpr uint64_t
subblockNumber(Addr addr)
{
    return addr >> kSubblockBits;
}

/**
 * Offset (0..31) of the subblock containing @p addr within its large
 * block; this selects the bit in the per-block bit vector.
 */
constexpr uint32_t
subblockOffset(Addr addr)
{
    return static_cast<uint32_t>((addr >> kSubblockBits) &
                                 (kSubblocksPerBlock - 1));
}

/** Kibibytes to bytes. */
constexpr uint64_t operator""_KiB(unsigned long long v) { return v << 10; }
/** Mebibytes to bytes. */
constexpr uint64_t operator""_MiB(unsigned long long v) { return v << 20; }
/** Gibibytes to bytes. */
constexpr uint64_t operator""_GiB(unsigned long long v) { return v << 30; }

} // namespace silc

#endif // SILC_COMMON_TYPES_HH
