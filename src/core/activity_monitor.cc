#include "core/activity_monitor.hh"

#include "common/logging.hh"

namespace silc {
namespace core {

AgingCounterOps::AgingCounterOps(uint32_t bits)
{
    if (bits == 0 || bits > 8)
        fatal("aging counter width must be 1..8 bits");
    max_ = static_cast<uint8_t>((1u << bits) - 1);
}

uint8_t
AgingCounterOps::increment(uint8_t value) const
{
    return value >= max_ ? max_ : static_cast<uint8_t>(value + 1);
}

AgingSchedule::AgingSchedule(uint64_t interval)
    : interval_(interval)
{
    if (interval_ == 0)
        fatal("aging interval must be positive");
}

bool
AgingSchedule::onAccess()
{
    ++accesses_;
    if (accesses_ % interval_ == 0) {
        ++sweeps_;
        return true;
    }
    return false;
}

} // namespace core
} // namespace silc
