/**
 * @file
 * Memory activity monitoring (SILC-FM Section III-B): saturating 6-bit
 * aging counters classify coexisting NM-native and swapped-in FM blocks
 * as hot or cold.  Counters shift right every `aging_interval` memory
 * accesses so stale hotness decays; a block whose counter crosses the
 * threshold becomes a locking candidate.
 */

#ifndef SILC_CORE_ACTIVITY_MONITOR_HH
#define SILC_CORE_ACTIVITY_MONITOR_HH

#include <cstdint>

#include "common/serialize.hh"

namespace silc {
namespace core {

/** Saturating counter arithmetic for a fixed bit width. */
class AgingCounterOps
{
  public:
    /** @param bits counter width (paper: 6). */
    explicit AgingCounterOps(uint32_t bits);

    /** Increment @p value, saturating at the width's maximum. */
    uint8_t increment(uint8_t value) const;

    /** One aging step (right shift). */
    static uint8_t age(uint8_t value) { return value >> 1; }

    uint8_t max() const { return max_; }

  private:
    uint8_t max_;
};

/**
 * Tracks total accesses and tells the owner when an aging sweep is due.
 */
class AgingSchedule
{
  public:
    /** @param interval memory accesses between sweeps (paper: 1M). */
    explicit AgingSchedule(uint64_t interval);

    /**
     * Record one access.
     * @retval true when an aging sweep should run now.
     */
    bool onAccess();

    uint64_t accesses() const { return accesses_; }
    uint64_t sweeps() const { return sweeps_; }

    /** Serialize / restore the access/sweep counters. */
    void
    snapshot(BlobWriter &w) const
    {
        w.putU64(accesses_);
        w.putU64(sweeps_);
    }

    void
    restore(BlobReader &r)
    {
        accesses_ = r.getU64();
        sweeps_ = r.getU64();
    }

  private:
    uint64_t interval_;
    uint64_t accesses_ = 0;
    uint64_t sweeps_ = 0;
};

} // namespace core
} // namespace silc

#endif // SILC_CORE_ACTIVITY_MONITOR_HH
