#include "core/bandwidth_balancer.hh"

#include "common/logging.hh"

namespace silc {
namespace core {

BandwidthBalancer::BandwidthBalancer(bool enabled, double target_rate,
                                     uint64_t window)
    : enabled_(enabled), target_rate_(target_rate), window_(window)
{
    if (window_ == 0)
        fatal("bandwidth balancer window must be positive");
    if (target_rate_ <= 0.0 || target_rate_ > 1.0)
        fatal("bandwidth balancer target rate must be in (0, 1]");
}

void
BandwidthBalancer::record(bool serviced_from_nm)
{
    if (!enabled_)
        return;

    ++in_window_;
    if (serviced_from_nm)
        ++nm_in_window_;

    if (in_window_ >= window_) {
        last_rate_ = static_cast<double>(nm_in_window_) /
            static_cast<double>(in_window_);
        // Bypass while the measured rate exceeds the target; re-enable
        // swapping as soon as the rate drops back (Section III-E).
        bypassing_ = last_rate_ > target_rate_;
        ++windows_;
        if (bypassing_)
            ++bypassed_windows_;
        in_window_ = 0;
        nm_in_window_ = 0;
    }
}

} // namespace core
} // namespace silc
