/**
 * @file
 * Bypassing / bandwidth balancing (SILC-FM Section III-E).
 *
 * With an NM:FM bandwidth ratio of N:1, servicing everything from NM
 * leaves FM's bandwidth idle; the optimum steers ~1/(N+1) of demand to
 * FM.  The balancer tracks the access rate over a sliding window and
 * raises the bypass flag whenever the rate exceeds the target (0.8 for
 * the paper's 4:1 system); while bypassing, no new subblocks are swapped
 * into NM, so FM keeps servicing its share.
 */

#ifndef SILC_CORE_BANDWIDTH_BALANCER_HH
#define SILC_CORE_BANDWIDTH_BALANCER_HH

#include <cstdint>

#include "common/serialize.hh"

namespace silc {
namespace core {

/** The access-rate-driven bypass controller. */
class BandwidthBalancer
{
  public:
    /**
     * @param enabled     feature flag (the Fig. 6 ablation disables it)
     * @param target_rate access rate above which bypassing engages
     * @param window      demand accesses per measurement window
     */
    BandwidthBalancer(bool enabled, double target_rate, uint64_t window);

    /**
     * Record one demand access and update the bypass decision at window
     * boundaries.
     *
     * @param serviced_from_nm where the critical data came from
     */
    void record(bool serviced_from_nm);

    /** True while new swap-ins are suppressed. */
    bool bypassing() const { return bypassing_; }

    /** Access rate measured over the last complete window. */
    double lastWindowRate() const { return last_rate_; }

    uint64_t windowsElapsed() const { return windows_; }
    uint64_t bypassedWindows() const { return bypassed_windows_; }

    /** Serialize / restore the window state (ctor params excluded). */
    void
    snapshot(BlobWriter &w) const
    {
        w.putU64(in_window_);
        w.putU64(nm_in_window_);
        w.putBool(bypassing_);
        w.putF64(last_rate_);
        w.putU64(windows_);
        w.putU64(bypassed_windows_);
    }

    void
    restore(BlobReader &r)
    {
        in_window_ = r.getU64();
        nm_in_window_ = r.getU64();
        bypassing_ = r.getBool();
        last_rate_ = r.getF64();
        windows_ = r.getU64();
        bypassed_windows_ = r.getU64();
    }

  private:
    bool enabled_;
    double target_rate_;
    uint64_t window_;

    uint64_t in_window_ = 0;
    uint64_t nm_in_window_ = 0;
    bool bypassing_ = false;
    double last_rate_ = 0.0;
    uint64_t windows_ = 0;
    uint64_t bypassed_windows_ = 0;
};

} // namespace core
} // namespace silc

#endif // SILC_CORE_BANDWIDTH_BALANCER_HH
