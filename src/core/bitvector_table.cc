#include "core/bitvector_table.hh"

#include "common/logging.hh"
#include "common/serialize.hh"

namespace silc {
namespace core {

BitVectorTable::BitVectorTable(uint64_t entries)
{
    if (!isPowerOf2(entries))
        fatal("bit vector table entries must be a power of two");
    table_.assign(entries, 0);
    mask_ = entries - 1;
}

uint64_t
BitVectorTable::indexFor(Addr pc, Addr first_addr) const
{
    // XOR of PC and the first swapped-in subblock address, folded; both
    // are known to correlate strongly with execution phase (Section
    // III-A and its citations).
    uint64_t x = (pc >> 2) ^ (first_addr >> kSubblockBits);
    x ^= x >> 17;
    return x & mask_;
}

void
BitVectorTable::save(Addr pc, Addr first_addr, SubblockVector bv)
{
    if (bv.none())
        return;   // an all-zero vector carries no reuse information
    table_[indexFor(pc, first_addr)] = bv.raw();
    ++saves_;
}

SubblockVector
BitVectorTable::lookup(Addr pc, Addr first_addr) const
{
    ++lookups_;
    const SubblockVector bv{table_[indexFor(pc, first_addr)]};
    if (!bv.none())
        ++hits_;
    return bv;
}

void
BitVectorTable::reset()
{
    std::fill(table_.begin(), table_.end(), 0);
    saves_ = hits_ = lookups_ = 0;
}

void
BitVectorTable::snapshot(BlobWriter &w) const
{
    // The table is large (paper: 1M entries) but mostly empty on short
    // warming runs; store only the populated slots.
    uint64_t populated = 0;
    for (uint32_t v : table_) {
        if (v != 0)
            ++populated;
    }
    w.putU64(table_.size());
    w.putU64(populated);
    for (uint64_t i = 0; i < table_.size(); ++i) {
        if (table_[i] != 0) {
            w.putU64(i);
            w.putU32(table_[i]);
        }
    }
    w.putU64(saves_);
    w.putU64(hits_);
    w.putU64(lookups_);
}

void
BitVectorTable::restore(BlobReader &r)
{
    const uint64_t n = r.getU64();
    if (n != table_.size())
        fatal("bit vector table restore: %llu entries vs %zu",
              static_cast<unsigned long long>(n), table_.size());
    std::fill(table_.begin(), table_.end(), 0);
    const uint64_t populated = r.getU64();
    for (uint64_t i = 0; i < populated; ++i) {
        const uint64_t idx = r.getU64();
        if (idx >= table_.size())
            fatal("bit vector table restore: index %llu out of range",
                  static_cast<unsigned long long>(idx));
        table_[idx] = r.getU32();
    }
    saves_ = r.getU64();
    hits_ = r.getU64();
    lookups_ = r.getU64();
}

} // namespace core
} // namespace silc
