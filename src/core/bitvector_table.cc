#include "core/bitvector_table.hh"

#include "common/logging.hh"

namespace silc {
namespace core {

BitVectorTable::BitVectorTable(uint64_t entries)
{
    if (!isPowerOf2(entries))
        fatal("bit vector table entries must be a power of two");
    table_.assign(entries, 0);
    mask_ = entries - 1;
}

uint64_t
BitVectorTable::indexFor(Addr pc, Addr first_addr) const
{
    // XOR of PC and the first swapped-in subblock address, folded; both
    // are known to correlate strongly with execution phase (Section
    // III-A and its citations).
    uint64_t x = (pc >> 2) ^ (first_addr >> kSubblockBits);
    x ^= x >> 17;
    return x & mask_;
}

void
BitVectorTable::save(Addr pc, Addr first_addr, SubblockVector bv)
{
    if (bv.none())
        return;   // an all-zero vector carries no reuse information
    table_[indexFor(pc, first_addr)] = bv.raw();
    ++saves_;
}

SubblockVector
BitVectorTable::lookup(Addr pc, Addr first_addr) const
{
    ++lookups_;
    const SubblockVector bv{table_[indexFor(pc, first_addr)]};
    if (!bv.none())
        ++hits_;
    return bv;
}

void
BitVectorTable::reset()
{
    std::fill(table_.begin(), table_.end(), 0);
    saves_ = hits_ = lookups_ = 0;
}

} // namespace core
} // namespace silc
