/**
 * @file
 * The bit vector history table (SILC-FM Section III-A): when a block is
 * swapped out of NM, its subblock-usage bit vector is stored in a small
 * SRAM structure indexed by the XOR of the PC and address of the first
 * subblock swapped in.  When the same (PC, address) signature recurs,
 * the stored vector drives a multi-subblock fetch, recovering spatial
 * locality that single-subblock schemes (CAMEO) leave on the table.
 */

#ifndef SILC_CORE_BITVECTOR_TABLE_HH
#define SILC_CORE_BITVECTOR_TABLE_HH

#include <cstdint>
#include <vector>

#include "common/bitvector.hh"
#include "common/types.hh"

namespace silc {

class BlobWriter;
class BlobReader;

namespace core {

/** Direct-mapped, tagless SRAM table of subblock-usage bit vectors. */
class BitVectorTable
{
  public:
    /** @param entries table size; must be a power of two. */
    explicit BitVectorTable(uint64_t entries);

    /** Index for a (PC, first-subblock-address) signature. */
    uint64_t indexFor(Addr pc, Addr first_addr) const;

    /** Store @p bv under the signature (empty vectors are not stored). */
    void save(Addr pc, Addr first_addr, SubblockVector bv);

    /**
     * Look a signature up.
     * @retval non-empty vector on hit, empty vector on miss.
     */
    SubblockVector lookup(Addr pc, Addr first_addr) const;

    uint64_t entries() const { return table_.size(); }
    uint64_t saves() const { return saves_; }
    uint64_t hits() const { return hits_; }
    uint64_t lookups() const { return lookups_; }

    void reset();

    /** Serialize / restore contents (sparse: non-empty entries only). */
    void snapshot(BlobWriter &w) const;
    void restore(BlobReader &r);

  private:
    std::vector<uint32_t> table_;
    uint64_t mask_;
    uint64_t saves_ = 0;
    mutable uint64_t hits_ = 0;
    mutable uint64_t lookups_ = 0;
};

} // namespace core
} // namespace silc

#endif // SILC_CORE_BITVECTOR_TABLE_HH
