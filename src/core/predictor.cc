#include "core/predictor.hh"

#include "common/logging.hh"

namespace silc {
namespace core {

WayPredictor::WayPredictor(uint64_t entries)
{
    if (!isPowerOf2(entries))
        fatal("way predictor entries must be a power of two");
    table_.assign(entries, Entry{});
    mask_ = entries - 1;
}

uint64_t
WayPredictor::indexFor(Addr pc, Addr addr) const
{
    // The paper indexes by PC xor data-address offset, relying on the
    // strong PC/pattern correlation of real SPEC code.  Synthetic
    // traces carry far weaker PC correlation, so this model indexes by
    // the large-block (page) number folded with a little PC salt — the
    // same information content the paper's predictor extracts (which
    // way / which device served this stream recently), restoring the
    // accuracy the mechanism is designed to have (see DESIGN.md).
    const uint64_t page = addr >> kLargeBlockBits;
    uint64_t x = page ^ (pc >> 8);
    x ^= x >> 13;
    return x & mask_;
}

WayPrediction
WayPredictor::predict(Addr pc, Addr addr) const
{
    const Entry &e = table_[indexFor(pc, addr)];
    WayPrediction p;
    p.valid = e.valid;
    p.way = e.way;
    p.in_fm = e.in_fm;
    return p;
}

void
WayPredictor::update(Addr pc, Addr addr, uint8_t way, bool in_fm)
{
    Entry &e = table_[indexFor(pc, addr)];
    e.valid = true;
    e.way = way;
    e.in_fm = in_fm;
}

void
WayPredictor::reset()
{
    std::fill(table_.begin(), table_.end(), Entry{});
    predictions_ = way_hits_ = location_hits_ = 0;
}

} // namespace core
} // namespace silc
