#include "core/predictor.hh"

#include "common/logging.hh"
#include "common/serialize.hh"

namespace silc {
namespace core {

WayPredictor::WayPredictor(uint64_t entries)
{
    if (!isPowerOf2(entries))
        fatal("way predictor entries must be a power of two");
    table_.assign(entries, Entry{});
    mask_ = entries - 1;
}

uint64_t
WayPredictor::indexFor(Addr pc, Addr addr) const
{
    // The paper indexes by PC xor data-address offset, relying on the
    // strong PC/pattern correlation of real SPEC code.  Synthetic
    // traces carry far weaker PC correlation, so this model indexes by
    // the large-block (page) number folded with a little PC salt — the
    // same information content the paper's predictor extracts (which
    // way / which device served this stream recently), restoring the
    // accuracy the mechanism is designed to have (see DESIGN.md).
    const uint64_t page = addr >> kLargeBlockBits;
    uint64_t x = page ^ (pc >> 8);
    x ^= x >> 13;
    return x & mask_;
}

WayPrediction
WayPredictor::predict(Addr pc, Addr addr) const
{
    const Entry &e = table_[indexFor(pc, addr)];
    WayPrediction p;
    p.valid = e.valid;
    p.way = e.way;
    p.in_fm = e.in_fm;
    return p;
}

void
WayPredictor::update(Addr pc, Addr addr, uint8_t way, bool in_fm)
{
    Entry &e = table_[indexFor(pc, addr)];
    e.valid = true;
    e.way = way;
    e.in_fm = in_fm;
}

void
WayPredictor::reset()
{
    std::fill(table_.begin(), table_.end(), Entry{});
    predictions_ = way_hits_ = location_hits_ = 0;
}

void
WayPredictor::snapshot(BlobWriter &w) const
{
    uint64_t valid = 0;
    for (const Entry &e : table_) {
        if (e.valid)
            ++valid;
    }
    w.putU64(table_.size());
    w.putU64(valid);
    for (uint64_t i = 0; i < table_.size(); ++i) {
        if (table_[i].valid) {
            w.putU64(i);
            w.putU8(table_[i].way);
            w.putBool(table_[i].in_fm);
        }
    }
    w.putU64(predictions_);
    w.putU64(way_hits_);
    w.putU64(location_hits_);
}

void
WayPredictor::restore(BlobReader &r)
{
    const uint64_t n = r.getU64();
    if (n != table_.size())
        fatal("way predictor restore: %llu entries vs %zu",
              static_cast<unsigned long long>(n), table_.size());
    std::fill(table_.begin(), table_.end(), Entry{});
    const uint64_t valid = r.getU64();
    for (uint64_t i = 0; i < valid; ++i) {
        const uint64_t idx = r.getU64();
        if (idx >= table_.size())
            fatal("way predictor restore: index %llu out of range",
                  static_cast<unsigned long long>(idx));
        Entry &e = table_[idx];
        e.valid = true;
        e.way = r.getU8();
        e.in_fm = r.getBool();
    }
    predictions_ = r.getU64();
    way_hits_ = r.getU64();
    location_hits_ = r.getU64();
}

} // namespace core
} // namespace silc
