/**
 * @file
 * The way/location predictor (SILC-FM Section III-F): a small tagless
 * table indexed by PC XOR data-address offset.  Each entry remembers the
 * most recent way within the NM set and one bit speculating whether the
 * data is in NM or FM.
 *
 * A correct FM speculation lets the request go to FM in parallel with
 * the NM remap-entry fetch, hiding the NM metadata latency; a correct
 * way prediction avoids serially fetching all remap entries of the set.
 */

#ifndef SILC_CORE_PREDICTOR_HH
#define SILC_CORE_PREDICTOR_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace silc {

class BlobWriter;
class BlobReader;

namespace core {

/** One prediction. */
struct WayPrediction
{
    bool valid = false;
    uint8_t way = 0;
    bool in_fm = false;
};

/** The PC xor address indexed way/location predictor. */
class WayPredictor
{
  public:
    /** @param entries table size (paper: 4K); must be a power of two. */
    explicit WayPredictor(uint64_t entries);

    /** Predict for a (pc, address) pair. */
    WayPrediction predict(Addr pc, Addr addr) const;

    /** Train with the observed outcome. */
    void update(Addr pc, Addr addr, uint8_t way, bool in_fm);

    uint64_t entries() const { return table_.size(); }

    uint64_t predictions() const { return predictions_; }
    uint64_t wayHits() const { return way_hits_; }
    uint64_t locationHits() const { return location_hits_; }

    /** Record prediction accuracy (called by the policy). */
    void
    recordOutcome(bool way_correct, bool location_correct)
    {
        ++predictions_;
        if (way_correct)
            ++way_hits_;
        if (location_correct)
            ++location_hits_;
    }

    void reset();

    /** Serialize / restore contents (sparse: valid entries only). */
    void snapshot(BlobWriter &w) const;
    void restore(BlobReader &r);

  private:
    struct Entry
    {
        bool valid = false;
        uint8_t way = 0;
        bool in_fm = false;
    };

    uint64_t indexFor(Addr pc, Addr addr) const;

    std::vector<Entry> table_;
    uint64_t mask_;
    uint64_t predictions_ = 0;
    uint64_t way_hits_ = 0;
    uint64_t location_hits_ = 0;
};

} // namespace core
} // namespace silc

#endif // SILC_CORE_PREDICTOR_HH
