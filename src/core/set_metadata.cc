#include "core/set_metadata.hh"

#include "common/logging.hh"
#include "common/serialize.hh"

namespace silc {
namespace core {

NmMetadata::NmMetadata(uint64_t nm_frames, uint32_t associativity)
    : assoc_(associativity)
{
    if (associativity == 0)
        fatal("silcfm: associativity must be at least 1");
    if (nm_frames == 0 || nm_frames % associativity != 0)
        fatal("silcfm: NM frames (%llu) not divisible by associativity "
              "(%u)",
              static_cast<unsigned long long>(nm_frames), associativity);
    frames_.resize(nm_frames);
    num_sets_ = nm_frames / associativity;
}

int
NmMetadata::findWay(uint64_t set, uint64_t fm_page) const
{
    for (uint32_t w = 0; w < assoc_; ++w) {
        const WayMeta &m = frames_[frameOf(set, w)];
        if (m.remap == fm_page)
            return static_cast<int>(w);
    }
    return -1;
}

int
NmMetadata::victimWay(uint64_t set) const
{
    int best = -1;
    uint64_t best_lru = ~uint64_t(0);
    for (uint32_t w = 0; w < assoc_; ++w) {
        const WayMeta &m = frames_[frameOf(set, w)];
        if (m.locked)
            continue;
        if (m.remap == kNoRemap)
            return static_cast<int>(w);
        if (m.lru < best_lru) {
            best_lru = m.lru;
            best = static_cast<int>(w);
        }
    }
    return best;
}

uint64_t
NmMetadata::lockedWays() const
{
    uint64_t n = 0;
    for (const auto &m : frames_) {
        if (m.locked)
            ++n;
    }
    return n;
}

void
NmMetadata::ageCounters()
{
    for (auto &m : frames_) {
        m.nm_counter >>= 1;
        m.fm_counter >>= 1;
    }
}

void
NmMetadata::snapshot(BlobWriter &w) const
{
    w.putU64(frames_.size());
    for (const WayMeta &m : frames_) {
        w.putU64(m.remap);
        w.putU32(m.bv.raw());
        w.putU32(m.used.raw());
        w.putBool(m.locked);
        w.putBool(m.native_locked);
        w.putU64(m.lru);
        w.putU8(m.nm_counter);
        w.putU8(m.fm_counter);
        w.putU64(m.first_pc);
        w.putU64(m.first_addr);
        w.putBool(m.has_signature);
    }
    w.putU64(lru_clock_);
}

void
NmMetadata::restore(BlobReader &r)
{
    const uint64_t n = r.getU64();
    if (n != frames_.size())
        fatal("silcfm restore: checkpoint has %llu NM frames, metadata "
              "has %zu", static_cast<unsigned long long>(n),
              frames_.size());
    for (WayMeta &m : frames_) {
        m.remap = r.getU64();
        m.bv = SubblockVector{r.getU32()};
        m.used = SubblockVector{r.getU32()};
        m.locked = r.getBool();
        m.native_locked = r.getBool();
        m.lru = r.getU64();
        m.nm_counter = r.getU8();
        m.fm_counter = r.getU8();
        m.first_pc = r.getU64();
        m.first_addr = r.getU64();
        m.has_signature = r.getBool();
    }
    lru_clock_ = r.getU64();
}

} // namespace core
} // namespace silc
