/**
 * @file
 * Per-NM-frame metadata and the set-associative organization of NM
 * (SILC-FM Sections III-A, III-C, III-D).
 *
 * NM is divided into 2KB frames.  Frame f is the home of NM-native flat
 * page f, and can additionally host subblocks of exactly one FM page,
 * interleaved (the remap entry names that page; the 32-bit bit vector
 * marks which subblock positions currently hold swapped-in FM data).
 * Frames are grouped into sets of `associativity` ways; an FM page maps
 * to a set by modulo and may occupy any unlocked way.
 */

#ifndef SILC_CORE_SET_METADATA_HH
#define SILC_CORE_SET_METADATA_HH

#include <cstdint>
#include <vector>

#include "common/bitvector.hh"
#include "common/types.hh"

namespace silc {

class BlobWriter;
class BlobReader;

namespace core {

/** Sentinel: no FM page interleaved into this frame. */
constexpr uint64_t kNoRemap = ~uint64_t(0);

/** Metadata of one NM frame (one way of a set). */
struct WayMeta
{
    /** Flat page id of the FM page interleaved here (kNoRemap if none). */
    uint64_t remap = kNoRemap;
    /** Which subblock positions hold swapped-in FM data. */
    SubblockVector bv;
    /**
     * Which subblocks were actually demanded while interleaved (as
     * opposed to fetched by locking or the history prefetch).  This is
     * what gets saved into the bit vector history table, so lock-driven
     * full fetches do not pollute the recalled usage pattern.
     */
    SubblockVector used;
    /** Hot block pinned in NM (Section III-C). */
    bool locked = false;
    /** True when the lock belongs to the NM-native page (remap-free). */
    bool native_locked = false;
    /** LRU timestamp for victim selection among unlocked ways. */
    uint64_t lru = 0;
    /** 6-bit aging counter: accesses to the NM-native block. */
    uint8_t nm_counter = 0;
    /** 6-bit aging counter: accesses to the swapped-in FM block. */
    uint8_t fm_counter = 0;
    /** PC of the first subblock swapped in (bit vector table index). */
    Addr first_pc = 0;
    /** Address of the first subblock swapped in. */
    Addr first_addr = 0;
    /** first_pc/first_addr hold a valid signature. */
    bool has_signature = false;
};

/** The NM metadata array. */
class NmMetadata
{
  public:
    /**
     * @param nm_frames     number of 2KB NM frames
     * @param associativity ways per set (1, 2 or 4 in the paper)
     */
    NmMetadata(uint64_t nm_frames, uint32_t associativity);

    uint64_t frames() const { return frames_.size(); }
    uint64_t numSets() const { return num_sets_; }
    uint32_t associativity() const { return assoc_; }

    /** Set an FM flat page maps to. */
    uint64_t
    setOf(uint64_t fm_page) const
    {
        return fm_page % num_sets_;
    }

    /** Frame index of way @p way in set @p set. */
    uint64_t
    frameOf(uint64_t set, uint32_t way) const
    {
        return set * assoc_ + way;
    }

    /** Set and way that NM frame @p frame belongs to. */
    uint64_t setOfFrame(uint64_t frame) const { return frame / assoc_; }
    uint32_t
    wayOfFrame(uint64_t frame) const
    {
        return static_cast<uint32_t>(frame % assoc_);
    }

    WayMeta &meta(uint64_t frame) { return frames_[frame]; }
    const WayMeta &meta(uint64_t frame) const { return frames_[frame]; }

    /**
     * Way of @p set whose remap names @p fm_page, or -1.
     */
    int findWay(uint64_t set, uint64_t fm_page) const;

    /**
     * Choose a victim way in @p set for a new FM page: an unlocked way
     * with no remap first, else the LRU unlocked way; -1 when every way
     * is locked.
     */
    int victimWay(uint64_t set) const;

    /** Bump the LRU stamp of @p frame. */
    void
    touch(uint64_t frame)
    {
        frames_[frame].lru = ++lru_clock_;
    }

    /** Number of currently locked ways (diagnostics). */
    uint64_t lockedWays() const;

    /** Age every activity counter by one right-shift (Section III-B). */
    void ageCounters();

    /** Serialize / restore the full frame array and LRU clock. */
    void snapshot(BlobWriter &w) const;
    void restore(BlobReader &r);

  private:
    std::vector<WayMeta> frames_;
    uint64_t num_sets_;
    uint32_t assoc_;
    uint64_t lru_clock_ = 0;
};

} // namespace core
} // namespace silc

#endif // SILC_CORE_SET_METADATA_HH
