#include "core/silc_fm.hh"

#include "common/logging.hh"
#include "common/serialize.hh"
#include "telemetry/sampler.hh"

namespace silc {
namespace core {

using policy::Location;

SilcFmPolicy::SilcFmPolicy(policy::PolicyEnv env, SilcFmParams params)
    : FlatMemoryPolicy(env),
      params_(params),
      nm_pages_(env.nm ? env.nm->capacity() / kLargeBlockSize : 0),
      total_pages_((env.nm ? env.nm->capacity() : 0) / kLargeBlockSize +
                   env.fm->capacity() / kLargeBlockSize),
      meta_(nm_pages_, params.associativity),
      history_(params.history_entries),
      predictor_(params.predictor_entries),
      balancer_(params.enable_bypass, params.bypass_target,
                params.bypass_window),
      counter_ops_(params.counter_bits),
      aging_(params.aging_interval)
{
    silc_assert(env_.nm != nullptr);
    if (params_.hot_threshold > counter_ops_.max())
        fatal("silcfm: hot threshold %u exceeds %u-bit counter maximum",
              params_.hot_threshold, params_.counter_bits);
}

uint64_t
SilcFmPolicy::flatSpaceBytes() const
{
    return env_.nm->capacity() + env_.fm->capacity();
}

int
SilcFmPolicy::metadataChannel() const
{
    if (!params_.dedicated_metadata_channel)
        return -1;
    return static_cast<int>(env_.nm->params().channels - 1);
}

Addr
SilcFmPolicy::metadataAddr(uint64_t set) const
{
    // One metadata line per set, interleaved across the channel's banks
    // so remap fetches pipeline (Section III-D stores metadata in its
    // own channel to keep its row buffer locality high; banking keeps
    // the channel from serialising at tCCD).
    const dram::DramTimingParams &p = env_.nm->params();
    const uint64_t banks = p.banks_per_rank * p.ranks_per_channel;
    const uint64_t cols = p.row_buffer_bytes / kSubblockSize;
    const uint64_t bank = set % banks;
    const uint64_t group = set / banks;
    const uint64_t col = group % cols;
    const uint64_t row = group / cols;
    const uint64_t rest = (row * banks + bank) * cols + col;
    return (rest * p.channels * kSubblockSize) % env_.nm->capacity();
}

Location
SilcFmPolicy::locate(Addr paddr) const
{
    silc_assert(paddr < flatSpaceBytes());
    const uint64_t page = paddr >> kLargeBlockBits;
    const uint32_t sub = subblockOffset(paddr);

    if (isNativePage(page)) {
        const WayMeta &m = meta_.meta(page);
        if (m.bv.test(sub)) {
            silc_assert(m.remap != kNoRemap);
            return Location{false, fmHomeAddr(m.remap, sub)};
        }
        return Location{true, nmAddr(page, sub)};
    }

    const uint64_t set = meta_.setOf(page);
    const int way = meta_.findWay(set, page);
    if (way >= 0) {
        const uint64_t frame = meta_.frameOf(set, way);
        if (meta_.meta(frame).bv.test(sub))
            return Location{true, nmAddr(frame, sub)};
    }
    return Location{false, fmHomeAddr(page, sub)};
}

void
SilcFmPolicy::migrateSubblockIn(uint64_t frame, uint64_t fm_page,
                                uint32_t sub, CoreId core, Tick now)
{
    // Native subblock leaves NM for the FM page's home slot; the FM
    // subblock is installed into the frame.
    moveSubblock(Location{true, nmAddr(frame, sub)},
                 Location{false, fmHomeAddr(fm_page, sub)}, core, now);
    moveSubblock(Location{false, fmHomeAddr(fm_page, sub)},
                 Location{true, nmAddr(frame, sub)}, core, now);
}

void
SilcFmPolicy::migrateSubblockOut(uint64_t frame, uint64_t fm_page,
                                 uint32_t sub, CoreId core, Tick now)
{
    // The swapped-in FM subblock returns home; the native subblock
    // returns to its frame.
    moveSubblock(Location{true, nmAddr(frame, sub)},
                 Location{false, fmHomeAddr(fm_page, sub)}, core, now);
    moveSubblock(Location{false, fmHomeAddr(fm_page, sub)},
                 Location{true, nmAddr(frame, sub)}, core, now);
}

void
SilcFmPolicy::swapInSubblock(uint64_t frame, uint64_t fm_page,
                             uint32_t sub, Addr pc, Addr sub_addr,
                             CoreId core, Tick now, bool demand)
{
    WayMeta &m = meta_.meta(frame);
    silc_assert(m.remap == fm_page);
    silc_assert(!m.bv.test(sub));

    const bool first = m.bv.none();
    const Addr hist_pc = params_.history_index_by_page ? 0 : pc;
    const Addr hist_addr = params_.history_index_by_page
        ? fm_page * kLargeBlockSize
        : sub_addr;

    if (demand) {
        // The demand FM read (issued by the caller) carries the data to
        // the LLC and into NM; only the native eviction and the NM
        // install are extra traffic.
        ++migration_ops_;
        moveSubblock(Location{true, nmAddr(frame, sub)},
                     Location{false, fmHomeAddr(fm_page, sub)}, core,
                     now);
        issueWrite(*env_.nm, nmAddr(frame, sub),
                   static_cast<uint32_t>(kSubblockSize),
                   dram::TrafficClass::Migration, core, now);
    } else {
        migrateSubblockIn(frame, fm_page, sub, core, now);
    }
    m.bv.set(sub);
    if (demand)
        m.used.set(sub);
    ++swaps_;

    if (first) {
        m.first_pc = hist_pc;
        m.first_addr = hist_addr;
        m.has_signature = true;

        if (params_.enable_history_fetch) {
            const SubblockVector hist =
                history_.lookup(hist_pc, hist_addr);
            if (hist.count() < params_.history_min_bits)
                return;
            for (uint32_t j = 0; j < kSubblocksPerBlock; ++j) {
                if (j == sub || !hist.test(j) || m.bv.test(j))
                    continue;
                migrateSubblockIn(frame, fm_page, j, core, now);
                m.bv.set(j);
                ++swaps_;
                ++history_fetched_;
            }
        }
    }
}

void
SilcFmPolicy::restoreWay(uint64_t frame, CoreId core, Tick now)
{
    WayMeta &m = meta_.meta(frame);
    silc_assert(!m.locked);
    if (m.remap == kNoRemap) {
        silc_assert(m.bv.none());
        return;
    }

    // Save the demanded-usage pattern (not the residency vector, which
    // locking or history fetches may have inflated) for the next time
    // this signature recurs.
    if (m.has_signature)
        history_.save(m.first_pc, m.first_addr, m.used);

    for (uint32_t j = 0; j < kSubblocksPerBlock; ++j) {
        if (m.bv.test(j))
            migrateSubblockOut(frame, m.remap, j, core, now);
    }
    ++restores_;

    m.remap = kNoRemap;
    m.bv.clearAll();
    m.used.clearAll();
    m.fm_counter = 0;
    m.has_signature = false;
}

void
SilcFmPolicy::lockWay(uint64_t frame, CoreId core, Tick now)
{
    WayMeta &m = meta_.meta(frame);
    silc_assert(!m.locked);
    silc_assert(m.remap != kNoRemap);

    // Complete the large-block remap (Section III-C) when the block's
    // demanded usage is dense enough to justify moving 2KB; sparser hot
    // blocks are pinned without the bulk fetch.
    if (m.used.count() >= params_.lock_full_fetch_min_used) {
        for (uint32_t j = 0; j < kSubblocksPerBlock; ++j) {
            if (!m.bv.test(j)) {
                migrateSubblockIn(frame, m.remap, j, core, now);
                ++swaps_;
            }
        }
        m.bv.setAll();
    }
    m.locked = true;
    m.native_locked = false;
    ++locks_;
}

void
SilcFmPolicy::agingSweep()
{
    meta_.ageCounters();
    if (!params_.enable_locking)
        return;
    for (uint64_t f = 0; f < meta_.frames(); ++f) {
        WayMeta &m = meta_.meta(f);
        if (!m.locked)
            continue;
        const uint8_t owner =
            m.native_locked ? m.nm_counter : m.fm_counter;
        if (owner < params_.hot_threshold) {
            // Clearing the lock has no immediate data movement: an
            // FM-locked block keeps behaving as a fully swapped-in
            // unlocked block (Section III-C).
            m.locked = false;
            ++unlocks_;
        }
    }
}

SilcFmPolicy::Resolution
SilcFmPolicy::resolveNative(uint64_t page, uint32_t sub, Addr pc,
                            CoreId core, Tick now)
{
    (void)pc;
    Resolution res;
    res.native = true;
    const uint64_t frame = page;
    WayMeta &m = meta_.meta(frame);
    m.nm_counter = counter_ops_.increment(m.nm_counter);
    meta_.touch(frame);
    res.way = static_cast<int>(meta_.wayOfFrame(frame));

    const bool bypass = balancer_.bypassing();

    if (m.bv.test(sub)) {
        // Table I: remap mismatch, bit set, NM address -> the native
        // subblock was swapped out; service it from FM and swap it
        // back (unless the way is locked for its hot FM page, or
        // bypassing is active).
        res.loc = Location{false, fmHomeAddr(m.remap, sub)};
        if (m.locked) {
            // Locked interleaves are stable: no swap-back churn.
        } else if (!bypass) {
            migrateSubblockOut(frame, m.remap, sub, core, now);
            m.bv.clear(sub);
            m.used.clear(sub);
            res.metadata_dirty = true;
        } else {
            ++bypassed_;
        }
        return res;
    }

    // Native subblock resident in NM.
    res.loc = Location{true, nmAddr(frame, sub)};

    // Native block hot: lock it so FM interleaves stop displacing it.
    if (params_.enable_locking && !m.locked && !bypass &&
        m.nm_counter >= params_.hot_threshold) {
        if (m.remap != kNoRemap)
            restoreWay(frame, core, now);
        m.locked = true;
        m.native_locked = true;
        ++locks_;
        res.metadata_dirty = true;
    }
    return res;
}

SilcFmPolicy::Resolution
SilcFmPolicy::resolveFar(uint64_t page, uint32_t sub, Addr pc,
                         CoreId core, Tick now)
{
    Resolution res;
    const uint64_t set = meta_.setOf(page);
    const Addr sub_addr = page * kLargeBlockSize +
        static_cast<Addr>(sub) * kSubblockSize;
    const bool bypass = balancer_.bypassing();

    int way = meta_.findWay(set, page);
    if (way >= 0) {
        const uint64_t frame = meta_.frameOf(set, way);
        WayMeta &m = meta_.meta(frame);
        m.fm_counter = counter_ops_.increment(m.fm_counter);
        meta_.touch(frame);
        res.way = way;

        if (m.bv.test(sub)) {
            // Resident (fully locked blocks have every subblock set).
            res.loc = Location{true, nmAddr(frame, sub)};
            m.used.set(sub);
        } else if (bypass) {
            res.loc = Location{false, fmHomeAddr(page, sub)};
            ++bypassed_;
        } else {
            res.loc = Location{false, fmHomeAddr(page, sub)};
            swapInSubblock(frame, page, sub, pc, sub_addr, core, now,
                           true);
            res.metadata_dirty = true;
        }

        if (params_.enable_locking && !m.locked && !bypass &&
            m.fm_counter >= params_.hot_threshold) {
            lockWay(frame, core, now);
            res.metadata_dirty = true;
        }
        return res;
    }

    // No way holds this page yet.
    res.loc = Location{false, fmHomeAddr(page, sub)};
    if (bypass) {
        ++bypassed_;
        return res;
    }

    const int victim = meta_.victimWay(set);
    if (victim < 0) {
        // Every way is locked: the page cannot interleave (Section
        // III-C's motivation for associativity).
        ++all_locked_;
        return res;
    }

    const uint64_t frame = meta_.frameOf(set, victim);
    restoreWay(frame, core, now);

    WayMeta &m = meta_.meta(frame);
    m.remap = page;
    m.fm_counter = counter_ops_.increment(0);
    meta_.touch(frame);
    res.way = victim;
    res.metadata_dirty = true;

    swapInSubblock(frame, page, sub, pc, sub_addr, core, now, true);
    return res;
}

void
SilcFmPolicy::issueDemandTimed(const Resolution &res, uint64_t set,
                               Addr pc, Addr sub_addr, CoreId core,
                               policy::DemandCallback done, Tick now)
{
    const int meta_ch = metadataChannel();
    const Addr meta_addr = metadataAddr(set);

    bool way_correct = res.native;
    bool loc_correct = false;
    bool parallel = false;

    if (params_.enable_predictor) {
        const WayPrediction pred = predictor_.predict(pc, sub_addr);
        way_correct = way_correct ||
            (pred.valid && res.way >= 0 &&
             pred.way == static_cast<uint8_t>(res.way));
        loc_correct = pred.valid && (pred.in_fm == !res.loc.in_nm);
        predictor_.recordOutcome(way_correct, loc_correct);
        // Correct speculation overlaps the data access with the
        // remap-entry fetch (Section III-F): an FM prediction forwards
        // the request to FM immediately; an NM prediction with the
        // right way reads that way's data concurrently with its remap
        // entry.
        const bool fm_speculation =
            pred.valid && pred.in_fm && !res.loc.in_nm;
        const bool nm_speculation = pred.valid && !pred.in_fm &&
            res.loc.in_nm && way_correct;
        parallel = fm_speculation || nm_speculation;
        predictor_.update(pc, sub_addr,
                          res.way >= 0
                              ? static_cast<uint8_t>(res.way)
                              : 0,
                          !res.loc.in_nm);
    }

    // A mispredicted (or unpredicted) way serialises the fetch of every
    // remap entry in the set: model it as a longer metadata burst.
    const uint32_t meta_bytes = way_correct
        ? params_.metadata_bytes
        : params_.metadata_bytes * params_.associativity;

    dram::DramSystem &data_dev = deviceFor(res.loc);
    const Addr data_addr = res.loc.device_addr;

    if (!params_.model_metadata_traffic) {
        issueRead(data_dev, data_addr,
                  static_cast<uint32_t>(kSubblockSize),
                  dram::TrafficClass::Demand, core, std::move(done), now);
        return;
    }

    if (parallel) {
        // Metadata verification proceeds off the critical path.
        issueRead(*env_.nm, meta_addr, meta_bytes,
                  dram::TrafficClass::Metadata, core, nullptr, now,
                  meta_ch);
        issueRead(data_dev, data_addr,
                  static_cast<uint32_t>(kSubblockSize),
                  dram::TrafficClass::Demand, core, std::move(done), now);
    } else {
        // Serial: remap entry first, then the data access.
        dram::DramSystem *dev = &data_dev;
        auto data_fetch = [this, dev, data_addr, core,
                           done = std::move(done)](Tick t) mutable {
            issueRead(*dev, data_addr,
                      static_cast<uint32_t>(kSubblockSize),
                      dram::TrafficClass::Demand, core, std::move(done),
                      t);
        };
        issueRead(*env_.nm, meta_addr, meta_bytes,
                  dram::TrafficClass::Metadata, core,
                  std::move(data_fetch), now, meta_ch);
    }

    if (res.metadata_dirty) {
        issueWrite(*env_.nm, meta_addr, params_.metadata_bytes,
                   dram::TrafficClass::Metadata, core, now, meta_ch);
    }
}

void
SilcFmPolicy::demandAccess(Addr paddr, bool is_write, CoreId core,
                           Addr pc, policy::DemandCallback done, Tick now)
{
    silc_assert(paddr < flatSpaceBytes());

    if (aging_.onAccess())
        agingSweep();

    const uint64_t page = paddr >> kLargeBlockBits;
    const uint32_t sub = subblockOffset(paddr);
    const Addr sub_addr = subblockAddr(paddr);

    Resolution res = isNativePage(page)
        ? resolveNative(page, sub, pc, core, now)
        : resolveFar(page, sub, pc, core, now);

    const uint64_t set = isNativePage(page)
        ? meta_.setOfFrame(page)
        : meta_.setOf(page);

    recordService(res.loc.in_nm);
    balancer_.record(res.loc.in_nm);

    issueDemandTimed(res, set, pc, sub_addr, core, std::move(done), now);

    if (observer_ != nullptr)
        observer_->onDemandResolved(paddr, is_write, core, pc, res.loc);
}

void
SilcFmPolicy::registerTelemetry(telemetry::Sampler &sampler) const
{
    FlatMemoryPolicy::registerTelemetry(sampler);
    sampler.addCounter("silcfm.swaps",
                       [this] { return double(swaps_); });
    sampler.addCounter("silcfm.restores",
                       [this] { return double(restores_); });
    sampler.addCounter("silcfm.locks",
                       [this] { return double(locks_); });
    sampler.addCounter("silcfm.unlocks",
                       [this] { return double(unlocks_); });
    sampler.addCounter("silcfm.historyFetched",
                       [this] { return double(history_fetched_); });
    sampler.addCounter("silcfm.bypassed",
                       [this] { return double(bypassed_); });
    // Share of the epoch's demand misses the balancer steered to FM —
    // the phase view of Section III-E's reaction to bandwidth shifts.
    sampler.addRatio("silcfm.bypassRate",
                     [this] { return double(bypassed_); },
                     [this] { return double(demandRequests()); });
}

bool
SilcFmPolicy::verifyIntegrity() const
{
    for (uint64_t set = 0; set < meta_.numSets(); ++set) {
        for (uint32_t w = 0; w < meta_.associativity(); ++w) {
            const uint64_t frame = meta_.frameOf(set, w);
            const WayMeta &m = meta_.meta(frame);
            if (m.remap != kNoRemap) {
                if (isNativePage(m.remap))
                    panic("silcfm: frame %llu remaps a native page",
                          static_cast<unsigned long long>(frame));
                if (meta_.setOf(m.remap) != set)
                    panic("silcfm: frame %llu remap maps to wrong set",
                          static_cast<unsigned long long>(frame));
                // No duplicate remap within the set.
                for (uint32_t w2 = w + 1; w2 < meta_.associativity();
                     ++w2) {
                    if (meta_.meta(meta_.frameOf(set, w2)).remap ==
                        m.remap) {
                        panic("silcfm: duplicate remap in set %llu",
                              static_cast<unsigned long long>(set));
                    }
                }
            } else if (!m.bv.none()) {
                panic("silcfm: frame %llu has bits set without remap",
                      static_cast<unsigned long long>(frame));
            }
            if (m.locked && !m.native_locked && m.remap == kNoRemap)
                panic("silcfm: FM-locked frame %llu has no remap",
                      static_cast<unsigned long long>(frame));
            if (m.locked && m.native_locked &&
                (m.remap != kNoRemap || !m.bv.none())) {
                panic("silcfm: native-locked frame %llu still "
                      "interleaved",
                      static_cast<unsigned long long>(frame));
            }
        }
    }
    return true;
}

void
SilcFmPolicy::snapshotState(BlobWriter &w) const
{
    FlatMemoryPolicy::snapshotState(w);
    meta_.snapshot(w);
    history_.snapshot(w);
    predictor_.snapshot(w);
    balancer_.snapshot(w);
    aging_.snapshot(w);
    w.putU64(swaps_);
    w.putU64(restores_);
    w.putU64(locks_);
    w.putU64(unlocks_);
    w.putU64(history_fetched_);
    w.putU64(bypassed_);
    w.putU64(all_locked_);
}

void
SilcFmPolicy::restoreState(BlobReader &r)
{
    FlatMemoryPolicy::restoreState(r);
    meta_.restore(r);
    history_.restore(r);
    predictor_.restore(r);
    balancer_.restore(r);
    aging_.restore(r);
    swaps_ = r.getU64();
    restores_ = r.getU64();
    locks_ = r.getU64();
    unlocks_ = r.getU64();
    history_fetched_ = r.getU64();
    bypassed_ = r.getU64();
    all_locked_ = r.getU64();
}

} // namespace core
} // namespace silc
