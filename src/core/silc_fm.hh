/**
 * @file
 * SILC-FM: Subblocked InterLeaved Cache-Like Flat Memory organization —
 * the paper's primary contribution (Section III).
 *
 * NM is an OS-visible part of the flat address space, internally managed
 * as a set-associative structure of 2KB frames.  Subblocks (64B) from an
 * FM page can interleave into an NM frame alongside the frame's native
 * page; a per-frame remap entry plus a 32-bit bit vector track residency
 * (Table I enumerates the six access scenarios).  Features:
 *
 *  - subblock-granular swapping with bit-vector-history multi-fetch,
 *  - hot-block locking driven by 6-bit aging counters (threshold 50),
 *  - 1/2/4-way associativity with LRU victim choice among unlocked ways,
 *  - bypassing that balances NM/FM bandwidth at a 0.8 access-rate target,
 *  - a way + NM/FM location predictor hiding remap-fetch latency,
 *  - remap metadata held in a dedicated NM channel.
 */

#ifndef SILC_CORE_SILC_FM_HH
#define SILC_CORE_SILC_FM_HH

#include <cstdint>

#include "core/activity_monitor.hh"
#include "core/bandwidth_balancer.hh"
#include "core/bitvector_table.hh"
#include "core/predictor.hh"
#include "core/set_metadata.hh"
#include "policy/policy.hh"

namespace silc {
namespace core {

/** SILC-FM configuration; defaults follow the paper. */
struct SilcFmParams
{
    /** Ways per NM set (paper adopts 4; Fig. 6 ablates 1). */
    uint32_t associativity = 4;
    /** Hot-block locking (Section III-C). */
    bool enable_locking = true;
    /** Bandwidth balancing / bypass (Section III-E). */
    bool enable_bypass = true;
    /** Way + location predictor (Section III-F). */
    bool enable_predictor = true;
    /** Bit-vector-history driven multi-subblock fetch (Section III-A). */
    bool enable_history_fetch = true;

    /** Hotness threshold (paper: 50 works best). */
    uint32_t hot_threshold = 50;
    /** Activity counter width in bits (paper: 6). */
    uint32_t counter_bits = 6;
    /** Memory accesses between counter agings (paper: 1M). */
    uint64_t aging_interval = 1'000'000;

    /** Target access rate for bypassing (paper: 0.8 for 4:1 bandwidth). */
    double bypass_target = 0.8;
    /** Demand accesses per access-rate measurement window. */
    uint64_t bypass_window = 4096;

    /** Bit vector history table entries (power of two). */
    uint64_t history_entries = uint64_t(1) << 20;
    /**
     * Index the history table by large-block number instead of the
     * paper's PC xor first-subblock-address signature.  Synthetic
     * traces lack the PC/pattern correlation of real SPEC code, so the
     * page id carries the information the paper's signature is meant to
     * recall (which subblocks of this block were useful last time);
     * setting this false restores the literal paper indexing.
     */
    bool history_index_by_page = true;
    /**
     * Minimum set bits in a recalled history vector for the batch fetch
     * to fire.  The paper's signature match implicitly restricts the
     * multi-subblock fetch to regular (spatially dense) access
     * patterns; sparse pointer-chasing vectors are not worth prefetching
     * and would only add swap/restore churn.
     */
    uint32_t history_min_bits = 12;
    /**
     * Minimum demanded subblocks before locking completes the full
     * large-block remap (fetching every missing subblock, as in the
     * paper).  Sparser hot blocks are pinned in place without the bulk
     * fetch — locking's protection without PoM-like fetch waste.
     */
    uint32_t lock_full_fetch_min_used = 8;
    /** Predictor entries (paper: 4K). */
    uint64_t predictor_entries = 4096;

    /** Remap metadata lives in a dedicated NM channel (Section III-D). */
    bool dedicated_metadata_channel = true;
    /**
     * Model remap-entry fetch traffic and its serialization (ablation
     * hook; false idealises metadata as free on-chip state).
     */
    bool model_metadata_traffic = true;
    /** Bytes per remap-entry fetch. */
    uint32_t metadata_bytes = 8;
};

/**
 * Observes every demand access after its functional resolution, with
 * the policy's metadata already in its post-access state.  The
 * differential oracle (src/check/) implements this to drive an untimed
 * reference model in lockstep with the timed policy.
 */
class SilcFmObserver
{
  public:
    virtual ~SilcFmObserver() = default;

    /**
     * @param paddr    flat physical address of the demand (64B aligned)
     * @param is_write the miss was triggered by a store
     * @param core     requesting core
     * @param pc       program counter of the triggering instruction
     * @param serviced where the critical data was serviced from
     */
    virtual void onDemandResolved(Addr paddr, bool is_write, CoreId core,
                                  Addr pc,
                                  const policy::Location &serviced) = 0;
};

/** The SILC-FM flat-memory policy. */
class SilcFmPolicy : public policy::FlatMemoryPolicy
{
  public:
    SilcFmPolicy(policy::PolicyEnv env, SilcFmParams params);

    const char *name() const override { return "silcfm"; }
    uint64_t flatSpaceBytes() const override;
    void demandAccess(Addr paddr, bool is_write, CoreId core, Addr pc,
                      policy::DemandCallback done, Tick now) override;
    policy::Location locate(Addr paddr) const override;
    void registerTelemetry(telemetry::Sampler &sampler) const override;

    bool supportsSampling() const override { return true; }
    void snapshotState(BlobWriter &w) const override;
    void restoreState(BlobReader &r) override;

    // ---- Introspection for tests and benches. ----

    const SilcFmParams &params() const { return params_; }
    const NmMetadata &metadata() const { return meta_; }
    const BitVectorTable &historyTable() const { return history_; }
    const WayPredictor &predictor() const { return predictor_; }
    const BandwidthBalancer &balancer() const { return balancer_; }

    uint64_t subblockSwaps() const { return swaps_; }
    uint64_t restores() const { return restores_; }
    uint64_t locks() const { return locks_; }
    uint64_t unlocks() const { return unlocks_; }
    uint64_t historyFetchedSubblocks() const { return history_fetched_; }
    uint64_t bypassedAccesses() const { return bypassed_; }
    uint64_t allWaysLockedEvents() const { return all_locked_; }

    /**
     * Check every structural invariant of the metadata (remap targets
     * map to their set, no duplicate remap in a set, lock/bit-vector
     * consistency).  panic()s on violation; returns true otherwise.
     */
    bool verifyIntegrity() const;

    /**
     * Attach (or detach, with nullptr) a lockstep observer.  Called at
     * the end of every demandAccess with the post-access state; the
     * policy does not own the observer, which must outlive it or be
     * detached first.
     */
    void setObserver(SilcFmObserver *observer) { observer_ = observer; }

    /**
     * Mutable metadata handle for the injected-fault self-tests of the
     * differential oracle (tests/test_check.cc) ONLY: production code
     * must never mutate metadata from outside the policy.
     */
    NmMetadata &metadataForFaultInjection() { return meta_; }

  private:
    /** Flat page id is NM-native (homed in an NM frame). */
    bool isNativePage(uint64_t page) const { return page < nm_pages_; }

    /** NM device byte address of subblock @p sub of frame @p frame. */
    Addr
    nmAddr(uint64_t frame, uint32_t sub) const
    {
        return frame * kLargeBlockSize +
            static_cast<Addr>(sub) * kSubblockSize;
    }

    /** FM device byte address of subblock @p sub of FM page @p page. */
    Addr
    fmHomeAddr(uint64_t page, uint32_t sub) const
    {
        return (page - nm_pages_) * kLargeBlockSize +
            static_cast<Addr>(sub) * kSubblockSize;
    }

    /** Outcome of the functional resolution of one demand access. */
    struct Resolution
    {
        policy::Location loc;
        /** Way the access mapped to (-1: no way involved). */
        int way = -1;
        /** Metadata was mutated (swap/restore/lock) by this access. */
        bool metadata_dirty = false;
        /**
         * NM-native request: the frame (and thus way) is determined by
         * the address alone, so no serialized way search is ever needed.
         */
        bool native = false;
    };

    Resolution resolveNative(uint64_t page, uint32_t sub, Addr pc,
                             CoreId core, Tick now);
    Resolution resolveFar(uint64_t page, uint32_t sub, Addr pc,
                          CoreId core, Tick now);

    /**
     * Swap subblock @p sub of FM page @p fm_page into @p frame
     * (migration traffic for the native eviction and the install; the
     * demand read itself is issued by the caller).  Fires the history
     * fetch when this is the way's first swapped-in subblock.
     */
    void swapInSubblock(uint64_t frame, uint64_t fm_page, uint32_t sub,
                        Addr pc, Addr sub_addr, CoreId core, Tick now,
                        bool demand);

    /** Fetch one subblock as pure migration (history fetch, locking). */
    void migrateSubblockIn(uint64_t frame, uint64_t fm_page, uint32_t sub,
                           CoreId core, Tick now);

    /** Return one swapped-in subblock to FM and restore the native one. */
    void migrateSubblockOut(uint64_t frame, uint64_t fm_page, uint32_t sub,
                            CoreId core, Tick now);

    /** Fully restore @p frame's interleave and save its bit vector. */
    void restoreWay(uint64_t frame, CoreId core, Tick now);

    /** Complete the remap of @p frame's FM page and lock it. */
    void lockWay(uint64_t frame, CoreId core, Tick now);

    /** Aging sweep: age counters, unlock no-longer-hot ways. */
    void agingSweep();

    /** NM channel used for metadata requests (-1: interleaved). */
    int metadataChannel() const;

    /** Device address used for set @p set's remap metadata. */
    Addr metadataAddr(uint64_t set) const;

    /**
     * Issue the timing skeleton of a demand access: metadata fetch,
     * possibly predictor-parallel data fetch, completion chaining.
     */
    void issueDemandTimed(const Resolution &res, uint64_t set, Addr pc,
                          Addr sub_addr, CoreId core,
                          policy::DemandCallback done, Tick now);

    SilcFmParams params_;
    uint64_t nm_pages_;
    uint64_t total_pages_;

    NmMetadata meta_;
    BitVectorTable history_;
    WayPredictor predictor_;
    BandwidthBalancer balancer_;
    AgingCounterOps counter_ops_;
    AgingSchedule aging_;

    SilcFmObserver *observer_ = nullptr;

    uint64_t swaps_ = 0;
    uint64_t restores_ = 0;
    uint64_t locks_ = 0;
    uint64_t unlocks_ = 0;
    uint64_t history_fetched_ = 0;
    uint64_t bypassed_ = 0;
    uint64_t all_locked_ = 0;
};

} // namespace core
} // namespace silc

#endif // SILC_CORE_SILC_FM_HH
