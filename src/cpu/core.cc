#include "cpu/core.hh"

#include "common/logging.hh"

namespace silc {
namespace cpu {

Core::Core(CoreId id, CoreParams params, trace::TraceSource &trace,
           MemoryPort &port)
    : id_(id), params_(params), trace_(trace), port_(port)
{
    silc_assert(params_.rob_entries > 0);
    silc_assert(params_.width > 0);
    rob_.resize(params_.rob_entries);
    if (isPowerOf2(params_.rob_entries))
        rob_mask_ = params_.rob_entries - 1;
}

void
Core::onLoadComplete(uint64_t seq, Tick when)
{
    // The entry must still be in flight: retire never pops an entry whose
    // ready_tick is kTickNever.
    silc_assert(seq >= head_seq_ && seq < tail_seq_);
    slot(seq).ready_tick = when;
    if (seq == head_seq_)
        stall_until_ = 0;
}

void
Core::functionalTick(Tick now)
{
    if (done())
        return;

    uint32_t n = 0;
    while (n < params_.width && retired_ < params_.instruction_budget) {
        // Bypass the staged_ optional on the hot path; it only holds an
        // instruction across a mode switch from a detailed phase.
        const trace::TraceInstruction ins =
            staged_ ? *staged_ : trace_.next();
        staged_.reset();

        if (ins.is_mem) {
            const bool accepted =
                port_.access(id_, ins.vaddr, ins.pc, ins.is_write,
                             nullptr, now);
            if (!accepted) {
                // Cannot happen in functional mode (the MSHR file is
                // bypassed), but keep tick()'s retry semantics: the
                // instruction stays staged for the next cycle.
                ++mem_stall_cycles_;
                staged_ = ins;
                break;
            }
            if (ins.is_write)
                ++stores_;
            else
                ++loads_;
        }

        ++dispatched_;
        ++retired_;
        ++n;
    }
    if (retired_ >= params_.instruction_budget)
        finish_tick_ = now;
}

void
Core::tick(Tick now)
{
    if (done())
        return;

    // Fully stalled: ROB full behind an unready head.  The full logic
    // below would do exactly this pair of increments and nothing else,
    // so skip it until the head can retire (see stall_until_).
    if (stall_until_ > now) {
        ++retire_stalls_;
        ++rob_full_cycles_;
        return;
    }

    // ---- Retire: up to `width` ready instructions, in order. ----
    uint32_t retired_now = 0;
    while (retired_now < params_.width && head_seq_ < tail_seq_) {
        RobEntry &head = slot(head_seq_);
        if (head.ready_tick > now)
            break;
        head.ready_tick = kTickNever;
        ++head_seq_;
        ++retired_;
        ++retired_now;
        if (retired_ >= params_.instruction_budget) {
            finish_tick_ = now;
            return;
        }
    }
    if (retired_now == 0 && head_seq_ < tail_seq_)
        ++retire_stalls_;

    // ---- Dispatch: up to `width` instructions into the ROB. ----
    uint32_t dispatched_now = 0;
    while (dispatched_now < params_.width) {
        if (tail_seq_ - head_seq_ >= params_.rob_entries) {
            ++rob_full_cycles_;
            break;
        }
        // Do not fetch beyond the budget.
        if (dispatched_ >= params_.instruction_budget)
            break;

        if (!staged_)
            staged_ = trace_.next();

        const trace::TraceInstruction &ins = *staged_;
        const uint64_t seq = tail_seq_;

        if (ins.is_mem) {
            // Allocate the ROB slot before issuing: hits may complete
            // synchronously and must find the entry in place.
            slot(seq).ready_tick = kTickNever;
            ++tail_seq_;

            bool accepted;
            if (ins.is_write) {
                // Stores retire via the store buffer next cycle; the
                // access still flows through the hierarchy for traffic.
                slot(seq).ready_tick = now + 1;
                accepted = port_.access(id_, ins.vaddr, ins.pc, true,
                                        nullptr, now);
            } else {
                accepted = port_.access(
                    id_, ins.vaddr, ins.pc, false,
                    [this, seq](Tick when) { onLoadComplete(seq, when); },
                    now);
            }

            if (!accepted) {
                // Roll the slot back and stall this cycle.
                --tail_seq_;
                slot(seq).ready_tick = kTickNever;
                ++mem_stall_cycles_;
                break;
            }
            if (ins.is_write)
                ++stores_;
            else
                ++loads_;
        } else {
            slot(seq).ready_tick = now + 1;
            ++tail_seq_;
        }

        staged_.reset();
        ++dispatched_;
        ++dispatched_now;
    }

    // Detect the fully-stalled state for the fast path above.  A
    // kTickNever head (load still in flight) is fine: onLoadComplete
    // resets stall_until_ the moment the head's data returns.
    if (tail_seq_ - head_seq_ >= params_.rob_entries &&
        slot(head_seq_).ready_tick > now) {
        stall_until_ = slot(head_seq_).ready_tick;
    }
}

} // namespace cpu
} // namespace silc
