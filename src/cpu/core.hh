/**
 * @file
 * Trace-driven core model: 4-wide dispatch/retire through a 128-entry
 * reorder buffer (Table II), with loads completing via memory-hierarchy
 * callbacks and stores retiring through an implicit store buffer.
 *
 * This is the standard "ROB-occupancy limit" model used by memory-system
 * studies: it exposes memory-level parallelism (multiple outstanding
 * misses) and stalls when the ROB fills behind a long-latency load —
 * exactly the behaviours that differentiate NM/FM placement schemes.
 */

#ifndef SILC_CPU_CORE_HH
#define SILC_CPU_CORE_HH

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "common/types.hh"
#include "trace/generator.hh"

namespace silc {
namespace cpu {

/** Core configuration (defaults per Table II). */
struct CoreParams
{
    uint32_t rob_entries = 128;
    uint32_t width = 4;
    /** Instructions to retire before the core reports done. */
    uint64_t instruction_budget = 1'000'000;
};

/**
 * The memory hierarchy as seen by a core.
 *
 * access() may complete synchronously (cache hits invoke @p done before
 * returning) or asynchronously.  A false return means the hierarchy is
 * out of tracking resources (MSHRs) and the core must retry next cycle.
 */
class MemoryPort
{
  public:
    virtual ~MemoryPort() = default;

    /**
     * Issue a memory access.
     *
     * @param core     issuing core
     * @param vaddr    virtual byte address
     * @param pc       program counter of the instruction
     * @param is_write store?
     * @param done     completion callback (tick when data is available)
     * @param now      current tick
     * @retval true    accepted (done will fire, possibly already has)
     * @retval false   resource stall; retry later
     */
    virtual bool access(CoreId core, Addr vaddr, Addr pc, bool is_write,
                        std::function<void(Tick)> done, Tick now) = 0;
};

/** One trace-driven core. */
class Core
{
  public:
    Core(CoreId id, CoreParams params, trace::TraceSource &trace,
         MemoryPort &port);

    /** Advance one cycle: retire then dispatch. */
    void tick(Tick now);

    /**
     * Functional-warming cycle: dispatch-and-retire up to `width`
     * instructions without ROB bookkeeping.  Valid only while the
     * memory system is in functional mode, where every access is
     * accepted and completes synchronously — under that invariant the
     * access stream this emits is identical to tick()'s (width
     * instructions per core per cycle, in dispatch order), it just
     * skips the per-entry ROB and completion-callback machinery that
     * dominates warming time.  Budget pause points behave exactly as
     * with tick(): the staged slot carries across calls and the core
     * reports done() at the same retired count.
     */
    void functionalTick(Tick now);

    /** True once the instruction budget has fully retired. */
    bool done() const { return retired_ >= params_.instruction_budget; }

    /** Tick at which the budget retired (valid once done()). */
    Tick finishTick() const { return finish_tick_; }

    CoreId id() const { return id_; }
    uint64_t retired() const { return retired_; }
    uint64_t dispatched() const { return dispatched_; }
    uint64_t loads() const { return loads_; }
    uint64_t stores() const { return stores_; }

    /** Cycles in which nothing could retire (head not ready). */
    uint64_t retireStallCycles() const { return retire_stalls_; }

    /** Cycles in which dispatch was blocked by a full ROB. */
    uint64_t robFullCycles() const { return rob_full_cycles_; }

    /** Cycles in which dispatch was blocked by memory backpressure. */
    uint64_t memStallCycles() const { return mem_stall_cycles_; }

    /** All dispatch-blocked cycles (ROB full + memory backpressure). */
    uint64_t stallCycles() const
    {
        return rob_full_cycles_ + mem_stall_cycles_;
    }

    /** Current ROB occupancy. */
    uint32_t robOccupancy() const
    {
        return static_cast<uint32_t>(tail_seq_ - head_seq_);
    }

    /**
     * While this is above the current tick, tick() is exactly the
     * counters-only stall path (see stall_until_): the main loop may
     * fast-forward such cycles wholesale via addStalledCycles().
     */
    Tick stallUntil() const { return stall_until_; }

    /** Account @p n skipped fully-stalled cycles (see System::run). */
    void
    addStalledCycles(uint64_t n)
    {
        retire_stalls_ += n;
        rob_full_cycles_ += n;
    }

    uint64_t instructionBudget() const
    {
        return params_.instruction_budget;
    }

    /**
     * Extend (or shrink) the retire target.  The sampling run loop
     * pauses the system at per-core instruction boundaries by walking
     * the budget forward between System::runToBudget() calls; at a
     * pause point the ROB is empty and the staged slot clear, so
     * re-entering tick() with a larger budget resumes dispatch exactly
     * where the trace left off.
     */
    void setInstructionBudget(uint64_t budget)
    {
        params_.instruction_budget = budget;
    }

  private:
    struct RobEntry
    {
        Tick ready_tick = kTickNever;
    };

    RobEntry &slot(uint64_t seq)
    {
        // ROB sizes are powers of two in practice; masking avoids a
        // 64-bit divide on the hottest accessor in the simulator.
        return rob_[rob_mask_ != 0 ? (seq & rob_mask_)
                                   : (seq % params_.rob_entries)];
    }

    void onLoadComplete(uint64_t seq, Tick when);

    CoreId id_;
    CoreParams params_;
    trace::TraceSource &trace_;
    MemoryPort &port_;

    std::vector<RobEntry> rob_;
    uint64_t rob_mask_ = 0;
    uint64_t head_seq_ = 0;
    uint64_t tail_seq_ = 0;

    /**
     * Fully-stalled fast path: while the ROB is full and the head is not
     * ready, every cycle is exactly "count a retire stall and a ROB-full
     * stall" — no retire, no fetch, no dispatch.  When tick() detects
     * that state it records the head's ready tick here and subsequent
     * ticks take the counters-only path until the head can retire.
     * onLoadComplete() clears it when the head's load returns, so a
     * kTickNever in-flight head cannot park the core forever.
     */
    Tick stall_until_ = 0;

    /** Instruction fetched but not yet dispatched (resource stall). */
    std::optional<trace::TraceInstruction> staged_;

    uint64_t retired_ = 0;
    uint64_t dispatched_ = 0;
    uint64_t loads_ = 0;
    uint64_t stores_ = 0;
    uint64_t retire_stalls_ = 0;
    uint64_t rob_full_cycles_ = 0;
    uint64_t mem_stall_cycles_ = 0;
    Tick finish_tick_ = 0;
};

} // namespace cpu
} // namespace silc

#endif // SILC_CPU_CORE_HH
