#include "dram/bank.hh"

#include <algorithm>

namespace silc {
namespace dram {

BankService
Bank::serve(int64_t row, Tick now, Tick burst_ticks, Tick bus_free,
            const DramTimingParams &t)
{
    BankService out;
    Tick start = std::max(now, ready_);

    Tick cas_issued;
    if (open_row_ == row) {
        // Row buffer hit: column access only.
        out.row_hit = true;
        cas_issued = start;
    } else if (open_row_ >= 0) {
        // Row conflict: precharge (after tRAS from activation) + activate.
        Tick pre_start =
            std::max(start, activated_at_ + t.toTicks(t.t_ras));
        Tick act_start = pre_start + t.toTicks(t.t_rp);
        activated_at_ = act_start;
        cas_issued = act_start + t.toTicks(t.t_rcd);
        out.activated = true;
    } else {
        // Bank precharged: activate only.
        activated_at_ = start;
        cas_issued = start + t.toTicks(t.t_rcd);
        out.activated = true;
    }

    Tick data_start = cas_issued + t.toTicks(t.t_cas);
    // The data burst must wait for the shared channel bus.
    data_start = std::max(data_start, bus_free);
    out.data_start = data_start;
    out.data_done = data_start + burst_ticks;

    open_row_ = row;
    // Column accesses pipeline: the bank can take its next CAS tCCD
    // after this one.  Burst serialization is enforced by the shared
    // channel data bus (bus_free), not the bank.
    ready_ = cas_issued + t.toTicks(t.t_ccd);
    return out;
}

void
Bank::refresh(Tick now, const DramTimingParams &t)
{
    open_row_ = -1;
    ready_ = std::max(ready_, now) + t.toTicks(t.t_rfc);
}

void
Bank::reset()
{
    open_row_ = -1;
    ready_ = 0;
    activated_at_ = 0;
}

} // namespace dram
} // namespace silc
