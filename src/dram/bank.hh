/**
 * @file
 * Open-page DRAM bank state machine.
 *
 * Each bank tracks its open row and the earliest tick it can accept the
 * next composite command (ACT/PRE/CAS collapsed into one service request).
 * The controller asks a bank to serve a (row, read/write) access and gets
 * back the data-burst window, honouring tRCD/tCAS/tRP/tRAS and data bus
 * availability.
 */

#ifndef SILC_DRAM_BANK_HH
#define SILC_DRAM_BANK_HH

#include <cstdint>

#include "common/types.hh"
#include "dram/timing.hh"

namespace silc {
namespace dram {

/** Result of serving one access from a bank. */
struct BankService
{
    /** First tick of the data burst on the channel data bus. */
    Tick data_start = 0;
    /** Tick at which the last beat has transferred (completion). */
    Tick data_done = 0;
    /** The access hit the open row. */
    bool row_hit = false;
    /** The access required an activation (row was closed or conflicted). */
    bool activated = false;
};

/** One DRAM bank with an open-page policy. */
class Bank
{
  public:
    Bank() = default;

    /** Row currently open, or -1 when precharged. */
    int64_t openRow() const { return open_row_; }

    /** Earliest tick the bank can begin another access. */
    Tick readyAt() const { return ready_; }

    /**
     * Serve an access to @p row.
     *
     * @param row       target row index
     * @param now       current tick (issue time)
     * @param burst_ticks  CPU ticks of data bus occupancy
     * @param bus_free  earliest tick the channel data bus is free
     * @param t         device timings
     * @return the computed service window; the caller must commit the
     *         returned data_done back into its bus bookkeeping.
     */
    BankService serve(int64_t row, Tick now, Tick burst_ticks,
                      Tick bus_free, const DramTimingParams &t);

    /**
     * Model a refresh: close the row and block the bank for tRFC.
     * @param now current tick.
     */
    void refresh(Tick now, const DramTimingParams &t);

    /** Forget all state (between experiment runs). */
    void reset();

  private:
    int64_t open_row_ = -1;
    Tick ready_ = 0;
    /** Tick of the most recent activation (for the tRAS constraint). */
    Tick activated_at_ = 0;
};

} // namespace dram
} // namespace silc

#endif // SILC_DRAM_BANK_HH
