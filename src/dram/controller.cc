#include "dram/controller.hh"

#include <algorithm>

#include "common/logging.hh"

namespace silc {
namespace dram {

const char *
trafficClassName(TrafficClass c)
{
    switch (c) {
      case TrafficClass::Demand: return "demand";
      case TrafficClass::Migration: return "migration";
      case TrafficClass::Metadata: return "metadata";
      case TrafficClass::Writeback: return "writeback";
    }
    return "?";
}

ChannelController::ChannelController(const DramTimingParams &params,
                                     EventQueue &events,
                                     stats::Distribution *read_delay_hist)
    : params_(params), events_(events),
      read_delay_hist_(read_delay_hist)
{
    banks_.resize(params_.banks_per_rank * params_.ranks_per_channel);
    next_refresh_ = params_.t_refi != 0
        ? params_.toTicks(params_.t_refi)
        : kTickNever;

    // Drain engages near-full and releases a margin below the watermark.
    // The margin scales with the queue depth (the old fixed margin of 8
    // could exceed the watermark itself at depth <= 8, making the release
    // condition unsatisfiable and draining the queue to empty).  At the
    // default depth of 32 this is the same high=28/release<=20 window the
    // polled controller used.
    drain_high_ = params_.queue_depth -
        std::max<size_t>(1, params_.queue_depth / 8);
    drain_release_margin_ = std::max<size_t>(1, params_.queue_depth / 4);

    bg_max_wait_ticks_ = params_.bg_max_wait_mem_cycles != 0
        ? params_.toTicks(params_.bg_max_wait_mem_cycles)
        : 0;

    slots_.reserve(2 * params_.queue_depth);
    next_.reserve(2 * params_.queue_depth);

    // The refresh deadline is the only wakeup source that exists before
    // any traffic arrives.
    next_scan_ = next_refresh_;
}

uint32_t
ChannelController::allocSlot(DecodedRequest &&dec)
{
    uint32_t idx;
    if (free_head_ != kNullSlot) {
        idx = free_head_;
        free_head_ = next_[idx];
        slots_[idx] = std::move(dec);
    } else {
        idx = static_cast<uint32_t>(slots_.size());
        slots_.push_back(std::move(dec));
        next_.push_back(kNullSlot);
    }
    next_[idx] = kNullSlot;
    return idx;
}

void
ChannelController::freeSlot(uint32_t idx)
{
    next_[idx] = free_head_;
    free_head_ = idx;
}

void
ChannelController::pushBack(SlotList &q, uint32_t idx)
{
    if (q.tail == kNullSlot)
        q.head = idx;
    else
        next_[q.tail] = idx;
    q.tail = idx;
    ++q.count;
}

void
ChannelController::unlink(SlotList &q, uint32_t idx, uint32_t prev)
{
    if (prev == kNullSlot)
        q.head = next_[idx];
    else
        next_[prev] = next_[idx];
    if (q.tail == idx)
        q.tail = prev;
    --q.count;
}

void
ChannelController::enqueue(DecodedRequest req, Tick now)
{
    req.enqueued = now;
    SlotList *q;
    if (req.req.is_write) {
        q = &write_q_;
    } else if (req.req.traffic == TrafficClass::Demand ||
               req.req.traffic == TrafficClass::Metadata) {
        q = &read_q_;
    } else {
        q = &bg_read_q_;
    }
    pushBack(*q, allocSlot(std::move(req)));
}

void
ChannelController::scan(Tick now)
{
    // Consume the wakeup; rearm() below computes the next one.
    next_scan_ = kTickNever;

    // Refresh all banks when the interval elapses.  Event-driven wakeups
    // make jumps past several t_refi intervals routine on idle channels,
    // so catch up interval by interval (each one is a real refresh the
    // device would have performed) instead of firing once and leaving
    // next_refresh_ permanently behind.
    while (now >= next_refresh_) {
        for (auto &bank : banks_)
            bank.refresh(now, params_);
        ++refreshes_;
        next_refresh_ += params_.toTicks(params_.t_refi);
    }

    // Read-priority write drain: writes normally use idle slots (no
    // ready read); a forced drain engages only when the write queue is
    // nearly full and releases after a short burst, so demand/metadata
    // reads never stall behind long write trains.
    if (write_q_.count >= drain_high_)
        draining_writes_ = true;
    else if (write_q_.count + drain_release_margin_ <= drain_high_)
        draining_writes_ = false;

    const bool issued = tryIssue(now);
    rearm(now, issued);
}

bool
ChannelController::bgPromotable(Tick now) const
{
    return bg_max_wait_ticks_ != 0 && bg_read_q_.count != 0 &&
        now >= slots_[bg_read_q_.head].enqueued + bg_max_wait_ticks_;
}

ChannelController::SlotList *
ChannelController::owningQueue(Tick now, bool *promoted)
{
    // Priority: forced write drain > aged background reads > critical
    // reads > opportunistic writes > background reads.  The first
    // non-empty class owns the slot; if none of its requests is
    // bank-ready the cycle idles rather than letting lower-priority
    // traffic occupy the bus ahead of it.  The aged-background tier is
    // the starvation fix: without it, sustained demand+writeback traffic
    // parks migration reads indefinitely.
    *promoted = false;
    if (draining_writes_ && write_q_.count != 0)
        return &write_q_;
    if (bgPromotable(now)) {
        *promoted = true;
        return &bg_read_q_;
    }
    if (read_q_.count != 0)
        return &read_q_;
    if (write_q_.count != 0)
        return &write_q_;
    if (bg_read_q_.count != 0)
        return &bg_read_q_;
    return nullptr;
}

bool
ChannelController::tryIssue(Tick now)
{
    bool promoted = false;
    SlotList *q = owningQueue(now, &promoted);
    scan_had_owner_ = q != nullptr;
    scan_owner_ready_ = kTickNever;
    if (q == nullptr)
        return false;

    uint32_t prev = kNullSlot;
    const uint32_t pick = selectFrFcfs(*q, now, &prev,
                                       &scan_owner_ready_);
    if (pick == kNullSlot)
        return false;
    unlink(*q, pick, prev);
    DecodedRequest dec = std::move(slots_[pick]);
    freeSlot(pick);
    if (promoted)
        ++bg_promotions_;
    issue(dec, now);
    return true;
}

uint32_t
ChannelController::selectFrFcfs(const SlotList &q, Tick now,
                                uint32_t *prev_out,
                                Tick *min_ready_out) const
{
    // Plain FR-FCFS within one queue: first ready row hit, else the
    // oldest ready request.  Priority across traffic classes is handled
    // by the queue split in tryIssue().  The window bound matches the
    // old deque scan: only the queue_depth oldest entries compete.
    uint32_t oldest_ready = kNullSlot;
    uint32_t oldest_prev = kNullSlot;
    uint32_t prev = kNullSlot;
    size_t n = 0;
    for (uint32_t i = q.head;
         i != kNullSlot && n < params_.queue_depth;
         prev = i, i = next_[i], ++n) {
        const DecodedRequest &dec = slots_[i];
        const Bank &bank = banks_[dec.bank];
        if (bank.readyAt() > now) {
            *min_ready_out = std::min(*min_ready_out, bank.readyAt());
            continue;
        }
        if (bank.openRow() == dec.row) {
            *prev_out = prev;
            return i;
        }
        if (oldest_ready == kNullSlot) {
            oldest_ready = i;
            oldest_prev = prev;
        }
    }
    *prev_out = oldest_prev;
    return oldest_ready;
}

void
ChannelController::issue(DecodedRequest &dec, Tick now)
{
    Bank &bank = banks_[dec.bank];
    const Tick burst = params_.toTicks(
        params_.burstMemCycles(dec.req.bytes));
    BankService svc = bank.serve(dec.row, now, burst, bus_free_, params_);

    bus_free_ = svc.data_done;
    bus_busy_ticks_ += svc.data_done - svc.data_start;

    if (svc.row_hit)
        ++row_hits_;
    else
        ++row_misses_;
    if (svc.activated)
        ++activations_;

    if (dec.req.is_write) {
        ++writes_served_;
    } else {
        ++reads_served_;
        const double delay =
            static_cast<double>(svc.data_start - dec.enqueued);
        read_delay_sum_ += delay;
        if (read_delay_hist_) {
            // In window mode the histogram is device-shared but this
            // scan may run on a worker thread: defer the sample; the
            // merge replays samples in (scan tick, channel) order so the
            // histogram's floating-point sum stays bit-identical to the
            // sequential interleaving.
            if (window_mode_)
                deferred_samples_.push_back({now, delay});
            else
                read_delay_hist_->sample(delay);
        }
    }

    if (dec.req.on_complete) {
        if (window_mode_) {
            deferred_completions_.push_back(
                {now, svc.data_done,
                 EventCallback([cb = std::move(dec.req.on_complete)](
                     Tick t) mutable { cb(t); })});
        } else {
            events_.schedule(svc.data_done,
                             [cb = std::move(dec.req.on_complete)](
                                 Tick t) mutable { cb(t); });
        }
    }
}

void
ChannelController::bufferEnqueue(DecodedRequest dec, Tick now,
                                 Tick scan_at)
{
    if (dec.req.is_write)
        ++pending_writes_;
    else
        ++pending_reads_;
    pending_.push_back({std::move(dec), now, scan_at});
}

void
ChannelController::replayWindow(Tick w1)
{
    // Interleave buffered enqueues with scans exactly as the sequential
    // loop would: an enqueue becomes visible just before the first scan
    // tick that may see it (its recorded scan_at), scans run strictly
    // before w1.  pending_ is in arrival order and scan_at is
    // nondecreasing (both follow simulation time), so a single cursor
    // suffices.
    size_t pi = 0;
    const size_t np = pending_.size();
    while (true) {
        const Tick s = next_scan_;
        if (pi < np && pending_[pi].scan_at <= s) {
            PendingEnqueue &p = pending_[pi++];
            if (p.dec.req.is_write)
                --pending_writes_;
            else
                --pending_reads_;
            enqueue(std::move(p.dec), p.now);
            requestScanAt(p.scan_at);
            continue;
        }
        if (s >= w1)
            break;
        scan(s);
    }
    // Leftovers become visible at the next window; apply them now so
    // queue state (and the depth probes) match the sequential simulator
    // at tick w1, and arm the wakeup they would have requested.
    for (; pi < np; ++pi) {
        PendingEnqueue &p = pending_[pi];
        if (p.dec.req.is_write)
            --pending_writes_;
        else
            --pending_reads_;
        enqueue(std::move(p.dec), p.now);
        requestScanAt(p.scan_at);
    }
    pending_.clear();
}

void
ChannelController::rearm(Tick now, bool issued)
{
    const Tick step = params_.toTicks(1);
    // The next mem-cycle boundary at or after a tick, so wakeups land
    // where the polled controller would have scanned.
    const auto align_up = [step](Tick t) {
        return ((t + step - 1) / step) * step;
    };

    Tick next = kTickNever;
    if (issued) {
        // One issue per memory cycle: anything still queued gets its
        // chance at the next boundary.
        if (read_q_.count != 0 || write_q_.count != 0 ||
            bg_read_q_.count != 0)
            next = align_up(now + 1);
    } else {
        // Nothing could issue: the owning queue's earliest chance is
        // when one of its banks becomes ready.  tryIssue() recorded that
        // tick while it scanned the window (every bank there is strictly
        // busy past now, or no queue owned the slot).
        if (scan_had_owner_ && scan_owner_ready_ != kTickNever)
            next = align_up(scan_owner_ready_);
    }

    // A queued background read may out-age the bound and preempt the
    // current owner before any of the above.
    if (bg_read_q_.count != 0 && bg_max_wait_ticks_ != 0) {
        const Tick deadline =
            slots_[bg_read_q_.head].enqueued + bg_max_wait_ticks_;
        if (deadline > now)
            next = std::min(next, align_up(deadline));
    }

    next = std::min(next, next_refresh_);
    requestScanAt(next);
}

std::vector<DecodedRequest>
ChannelController::queueSnapshot(int which) const
{
    const SlotList &q =
        which == 0 ? read_q_ : which == 1 ? bg_read_q_ : write_q_;
    std::vector<DecodedRequest> out;
    out.reserve(q.count);
    for (uint32_t i = q.head; i != kNullSlot; i = next_[i]) {
        DecodedRequest copy;
        copy.req.addr = slots_[i].req.addr;
        copy.req.is_write = slots_[i].req.is_write;
        copy.req.bytes = slots_[i].req.bytes;
        copy.req.traffic = slots_[i].req.traffic;
        copy.req.core = slots_[i].req.core;
        copy.bank = slots_[i].bank;
        copy.row = slots_[i].row;
        copy.enqueued = slots_[i].enqueued;
        out.push_back(std::move(copy));
    }
    return out;
}

void
ChannelController::reset()
{
    for (auto &bank : banks_)
        bank.reset();
    slots_.clear();
    next_.clear();
    free_head_ = kNullSlot;
    read_q_ = SlotList{};
    bg_read_q_ = SlotList{};
    write_q_ = SlotList{};
    bus_free_ = 0;
    bus_busy_ticks_ = 0;
    draining_writes_ = false;
    next_refresh_ = params_.t_refi != 0
        ? params_.toTicks(params_.t_refi)
        : kTickNever;
    next_scan_ = next_refresh_;
    pending_.clear();
    pending_reads_ = pending_writes_ = 0;
    deferred_completions_.clear();
    deferred_samples_.clear();
    row_hits_ = row_misses_ = activations_ = refreshes_ = 0;
    bg_promotions_ = 0;
    read_delay_sum_ = 0.0;
    reads_served_ = writes_served_ = 0;
}

} // namespace dram
} // namespace silc
