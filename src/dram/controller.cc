#include "dram/controller.hh"

#include <algorithm>

#include "common/logging.hh"

namespace silc {
namespace dram {

const char *
trafficClassName(TrafficClass c)
{
    switch (c) {
      case TrafficClass::Demand: return "demand";
      case TrafficClass::Migration: return "migration";
      case TrafficClass::Metadata: return "metadata";
      case TrafficClass::Writeback: return "writeback";
    }
    return "?";
}

ChannelController::ChannelController(const DramTimingParams &params,
                                     EventQueue &events,
                                     stats::Distribution *read_delay_hist)
    : params_(params), events_(events),
      read_delay_hist_(read_delay_hist)
{
    banks_.resize(params_.banks_per_rank * params_.ranks_per_channel);
    next_refresh_ = params_.t_refi != 0
        ? params_.toTicks(params_.t_refi)
        : kTickNever;
}

void
ChannelController::enqueue(DecodedRequest req, Tick now)
{
    req.enqueued = now;
    if (req.req.is_write) {
        write_q_.push_back(std::move(req));
    } else if (req.req.traffic == TrafficClass::Demand ||
               req.req.traffic == TrafficClass::Metadata) {
        read_q_.push_back(std::move(req));
    } else {
        bg_read_q_.push_back(std::move(req));
    }
}

void
ChannelController::tick(Tick now)
{
    // Refresh all banks when the interval elapses.
    if (now >= next_refresh_) {
        for (auto &bank : banks_)
            bank.refresh(now, params_);
        ++refreshes_;
        next_refresh_ += params_.toTicks(params_.t_refi);
    }

    // Read-priority write drain: writes normally use idle slots (no
    // ready read); a forced drain engages only when the write queue is
    // nearly full and releases after a short burst, so demand/metadata
    // reads never stall behind long write trains.
    const size_t high = params_.queue_depth -
        std::max<size_t>(1, params_.queue_depth / 8);
    if (write_q_.size() >= high)
        draining_writes_ = true;
    else if (write_q_.size() + 8 <= high)
        draining_writes_ = false;

    tryIssue(now);
}

bool
ChannelController::tryIssue(Tick now)
{
    // Priority: forced write drain > critical reads > background reads
    // > opportunistic writes.  The first non-empty class owns the slot;
    // if none of its requests is bank-ready the cycle idles rather than
    // letting lower-priority traffic occupy the bus ahead of it.
    std::deque<DecodedRequest> *q = nullptr;
    if (draining_writes_ && !write_q_.empty())
        q = &write_q_;
    else if (!read_q_.empty())
        q = &read_q_;
    else if (!write_q_.empty())
        q = &write_q_;
    else if (!bg_read_q_.empty())
        q = &bg_read_q_;
    if (q == nullptr)
        return false;

    int pick = selectFrFcfs(*q, now);
    if (pick < 0)
        return false;
    DecodedRequest dec = std::move((*q)[static_cast<size_t>(pick)]);
    q->erase(q->begin() + pick);
    issue(dec, now);
    return true;
}

int
ChannelController::selectFrFcfs(const std::deque<DecodedRequest> &q,
                                Tick now) const
{
    // Plain FR-FCFS within one queue: first ready row hit, else the
    // oldest ready request.  Priority across traffic classes is handled
    // by the queue split in tryIssue().
    const size_t window = std::min<size_t>(q.size(), params_.queue_depth);
    int oldest_ready = -1;
    for (size_t i = 0; i < window; ++i) {
        const DecodedRequest &dec = q[i];
        const Bank &bank = banks_[dec.bank];
        if (bank.readyAt() > now)
            continue;
        if (bank.openRow() == dec.row)
            return static_cast<int>(i);
        if (oldest_ready < 0)
            oldest_ready = static_cast<int>(i);
    }
    return oldest_ready;
}

void
ChannelController::issue(DecodedRequest &dec, Tick now)
{
    Bank &bank = banks_[dec.bank];
    const Tick burst = params_.toTicks(
        params_.burstMemCycles(dec.req.bytes));
    BankService svc = bank.serve(dec.row, now, burst, bus_free_, params_);

    bus_free_ = svc.data_done;
    bus_busy_ticks_ += svc.data_done - svc.data_start;

    if (svc.row_hit)
        ++row_hits_;
    else
        ++row_misses_;
    if (svc.activated)
        ++activations_;

    if (dec.req.is_write) {
        ++writes_served_;
    } else {
        ++reads_served_;
        const double delay =
            static_cast<double>(svc.data_start - dec.enqueued);
        read_delay_sum_ += delay;
        if (read_delay_hist_)
            read_delay_hist_->sample(delay);
    }

    if (dec.req.on_complete) {
        events_.schedule(svc.data_done,
                         [cb = std::move(dec.req.on_complete)](Tick t) {
                             cb(t);
                         });
    }
}

void
ChannelController::reset()
{
    for (auto &bank : banks_)
        bank.reset();
    read_q_.clear();
    bg_read_q_.clear();
    write_q_.clear();
    bus_free_ = 0;
    bus_busy_ticks_ = 0;
    draining_writes_ = false;
    next_refresh_ = params_.t_refi != 0
        ? params_.toTicks(params_.t_refi)
        : kTickNever;
    row_hits_ = row_misses_ = activations_ = refreshes_ = 0;
    read_delay_sum_ = 0.0;
    reads_served_ = writes_served_ = 0;
}

} // namespace dram
} // namespace silc
