/**
 * @file
 * Per-channel memory controller: read/write queues with a drain-mode write
 * policy and FR-FCFS scheduling over a bounded window, issuing at most one
 * composite access per memory cycle.
 */

#ifndef SILC_DRAM_CONTROLLER_HH
#define SILC_DRAM_CONTROLLER_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "common/event_queue.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "dram/bank.hh"
#include "dram/request.hh"
#include "dram/timing.hh"

namespace silc {
namespace dram {

/** A request decoded onto a channel's geometry. */
struct DecodedRequest
{
    DramRequest req;
    uint32_t bank = 0;     ///< flat bank index (rank folded in)
    int64_t row = 0;
    Tick enqueued = 0;
};

/**
 * One DRAM channel: banks, data bus, queues, scheduler.
 *
 * Ticked by the owning DramSystem once per memory cycle.  Reads take
 * priority over writes except in drain mode (write queue above its high
 * watermark) or when no reads are pending.
 */
class ChannelController
{
  public:
    /**
     * @param read_delay_hist optional device-shared histogram of read
     *        queueing delays (CPU ticks), sampled once per read issued;
     *        the owning DramSystem exports its percentiles as telemetry.
     */
    ChannelController(const DramTimingParams &params, EventQueue &events,
                      stats::Distribution *read_delay_hist = nullptr);

    /** Accept a decoded request (queues are elastic; see DESIGN.md). */
    void enqueue(DecodedRequest req, Tick now);

    /** Advance by one memory cycle ending at CPU tick @p now. */
    void tick(Tick now);

    /** Pending reads + writes. */
    size_t queuedRequests() const
    {
        return read_q_.size() + bg_read_q_.size() + write_q_.size();
    }

    size_t readQueueDepth() const
    {
        return read_q_.size() + bg_read_q_.size();
    }
    size_t writeQueueDepth() const { return write_q_.size(); }

    /** Ticks the data bus has been busy (utilization numerator). */
    Tick busBusyTicks() const { return bus_busy_ticks_; }

    uint64_t rowHits() const { return row_hits_; }
    uint64_t rowMisses() const { return row_misses_; }
    uint64_t activations() const { return activations_; }
    uint64_t refreshes() const { return refreshes_; }

    /** Sum and count of read queueing delays (enqueue to data start). */
    double readQueueDelaySum() const { return read_delay_sum_; }
    uint64_t readsServed() const { return reads_served_; }
    uint64_t writesServed() const { return writes_served_; }

    /** Forget all queued work and bank state. */
    void reset();

  private:
    /** Pick and issue at most one request; true if one was issued. */
    bool tryIssue(Tick now);

    /** FR-FCFS selection from @p q within the scheduling window. */
    int selectFrFcfs(const std::deque<DecodedRequest> &q, Tick now) const;

    void issue(DecodedRequest &dec, Tick now);

    const DramTimingParams &params_;
    EventQueue &events_;
    stats::Distribution *read_delay_hist_;

    std::vector<Bank> banks_;
    /** Critical-path reads: demand and metadata. */
    std::deque<DecodedRequest> read_q_;
    /** Background reads: migration and writeback-related. */
    std::deque<DecodedRequest> bg_read_q_;
    std::deque<DecodedRequest> write_q_;

    Tick bus_free_ = 0;
    Tick bus_busy_ticks_ = 0;
    bool draining_writes_ = false;
    Tick next_refresh_ = 0;

    uint64_t row_hits_ = 0;
    uint64_t row_misses_ = 0;
    uint64_t activations_ = 0;
    uint64_t refreshes_ = 0;
    double read_delay_sum_ = 0.0;
    uint64_t reads_served_ = 0;
    uint64_t writes_served_ = 0;
};

} // namespace dram
} // namespace silc

#endif // SILC_DRAM_CONTROLLER_HH
