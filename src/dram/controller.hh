/**
 * @file
 * Per-channel memory controller: read/write queues with a drain-mode write
 * policy and FR-FCFS scheduling over a bounded window, issuing at most one
 * composite access per memory cycle.
 *
 * The controller is event-driven: instead of being scanned every memory
 * cycle it keeps exactly one pending wakeup — the earliest tick anything
 * observable can happen (an owning-queue bank becoming ready, the
 * refresh deadline, a background-read aging deadline, or a new enqueue).
 * The wakeup lives in a plain tick register (next_scan_) that the owning
 * DramSystem compares against a device-wide minimum each cycle, not in
 * the EventQueue heap: at saturation a channel re-arms every memory
 * cycle, and going through heap push/pop plus callback dispatch for that
 * measurably regressed end-to-end throughput (see DESIGN.md,
 * "Event-driven DRAM scheduling").  Scans still run in DramSystem's
 * tick() phase, so issued-command ordering is identical to the
 * historical polled loop.
 *
 * Queued requests live in a per-channel arena with intrusive FIFO lists
 * per traffic class, so FR-FCFS picks unlink in O(1) instead of the old
 * deque erase-from-middle.
 */

#ifndef SILC_DRAM_CONTROLLER_HH
#define SILC_DRAM_CONTROLLER_HH

#include <cstdint>
#include <vector>

#include "common/event_queue.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "dram/bank.hh"
#include "dram/request.hh"
#include "dram/timing.hh"

namespace silc {
namespace dram {

/** A request decoded onto a channel's geometry. */
struct DecodedRequest
{
    DramRequest req;
    uint32_t bank = 0;     ///< flat bank index (rank folded in)
    int64_t row = 0;
    Tick enqueued = 0;
};

/** Null index for the request arena's intrusive lists. */
constexpr uint32_t kNullSlot = ~uint32_t(0);

/**
 * A completion callback captured during a windowed replay instead of
 * being scheduled on the (shared) event queue.  The merge phase turns
 * these into keyed event-queue entries in deterministic
 * (scan tick, channel) order (see sim/domain.hh).
 */
struct DeferredCompletion
{
    Tick scan_tick = 0;  ///< tick of the scan that issued the request
    Tick when = 0;       ///< completion (data_done) tick
    EventCallback cb;
};

/** A read-delay histogram sample deferred the same way. */
struct DeferredSample
{
    Tick scan_tick = 0;
    double delay = 0.0;
};

/**
 * One DRAM channel: banks, data bus, queues, scheduler.
 *
 * Scanned by the owning DramSystem only at its pending-wakeup tick
 * (see requestScanAt()/nextScanAt()).  Reads take priority over writes
 * except in drain mode (write queue above its high watermark) or when no
 * reads are pending; background reads that exceed the aging bound are
 * promoted ahead of demand traffic so migration never starves.
 */
class ChannelController
{
  public:
    /**
     * @param read_delay_hist optional device-shared histogram of read
     *        queueing delays (CPU ticks), sampled once per read issued;
     *        the owning DramSystem exports its percentiles as telemetry.
     */
    ChannelController(const DramTimingParams &params, EventQueue &events,
                      stats::Distribution *read_delay_hist = nullptr);

    /** Accept a decoded request (queues are elastic; see DESIGN.md). */
    void enqueue(DecodedRequest req, Tick now);

    /**
     * Ensure the channel is scanned no later than tick @p when.  Pulling
     * the register earlier never loses a wakeup; a too-early value only
     * costs one harmless no-op scan (scans are idempotent at any tick).
     */
    void requestScanAt(Tick when)
    {
        if (when < next_scan_)
            next_scan_ = when;
    }

    /**
     * Tick of the pending wakeup: the earliest tick at which this
     * channel could possibly act (issue, refresh, drain-state change, or
     * background promotion), or kTickNever when no such tick exists.
     * The never-miss invariant the oracle tests check: whenever the
     * channel has something actionable at tick T, nextScanAt() <= T.
     */
    Tick nextScanAt() const { return next_scan_; }

    /**
     * Run one scheduling step at tick @p now: refresh catch-up, write
     * drain hysteresis, at most one FR-FCFS issue, then re-arm the next
     * wakeup.  Called by DramSystem for due channels only.
     */
    void scan(Tick now);

    /**
     * Pending reads + writes.  Window-buffered enqueues count: they are
     * requests the sequential simulator would already have queued, and
     * the telemetry queue-depth probes must see identical values.
     */
    size_t queuedRequests() const
    {
        return read_q_.count + bg_read_q_.count + write_q_.count +
            pending_reads_ + pending_writes_;
    }

    size_t readQueueDepth() const
    {
        return read_q_.count + bg_read_q_.count + pending_reads_;
    }
    size_t writeQueueDepth() const
    {
        return write_q_.count + pending_writes_;
    }

    // ---- Windowed parallel execution (see sim/domain.hh) -------------

    /**
     * Switch completion scheduling and histogram sampling into deferred
     * buffers so scan() becomes channel-local (no shared event queue or
     * device-shared histogram writes) and replayWindow() may run on a
     * worker thread.
     */
    void setWindowMode(bool on) { window_mode_ = on; }

    /**
     * Record an enqueue performed during a window's serial core phase.
     * @p scan_at is the first scan tick that may see the request (the
     * same value DramSystem::issue computes for requestScanAt); the
     * replay applies it just before its channel reaches that tick.
     */
    void bufferEnqueue(DecodedRequest dec, Tick now, Tick scan_at);

    /**
     * Replay this channel's window: interleave buffered enqueues and
     * scheduling scans in exactly the order the sequential simulator
     * would have performed them, stopping before tick @p w1.  Leftover
     * enqueues (first visible scan at or past @p w1) are applied at the
     * end so queue state matches the sequential simulator at @p w1.
     * Channel-local: safe to run concurrently across channels.
     */
    void replayWindow(Tick w1);

    /** Deferred completions recorded by the last replay (merge drains). */
    std::vector<DeferredCompletion> &deferredCompletions()
    {
        return deferred_completions_;
    }

    /** Deferred histogram samples of the last replay (merge drains). */
    std::vector<DeferredSample> &deferredSamples()
    {
        return deferred_samples_;
    }

    /** Buffered-but-unapplied enqueues (diagnostics/tests). */
    size_t pendingEnqueues() const { return pending_.size(); }

    /** Ticks the data bus has been busy (utilization numerator). */
    Tick busBusyTicks() const { return bus_busy_ticks_; }

    uint64_t rowHits() const { return row_hits_; }
    uint64_t rowMisses() const { return row_misses_; }
    uint64_t activations() const { return activations_; }
    uint64_t refreshes() const { return refreshes_; }

    /** Background reads issued ahead of demand via the aging bound. */
    uint64_t bgPromotions() const { return bg_promotions_; }

    /** Sum and count of read queueing delays (enqueue to data start). */
    double readQueueDelaySum() const { return read_delay_sum_; }
    uint64_t readsServed() const { return reads_served_; }
    uint64_t writesServed() const { return writes_served_; }

    /** Forget all queued work and bank state; re-arm the first refresh. */
    void reset();

    // ---- test-only introspection (wakeup-oracle unit tests) ----------

    Tick nextRefreshAt() const { return next_refresh_; }
    bool drainingWrites() const { return draining_writes_; }
    size_t numBanks() const { return banks_.size(); }
    const Bank &bankAt(size_t i) const { return banks_[i]; }
    /** Snapshot of one queue in FIFO order; 0=read, 1=bg, 2=write. */
    std::vector<DecodedRequest> queueSnapshot(int which) const;

  private:
    /** Intrusive FIFO list over the request arena. */
    struct SlotList
    {
        uint32_t head = kNullSlot;
        uint32_t tail = kNullSlot;
        uint32_t count = 0;
    };

    uint32_t allocSlot(DecodedRequest &&dec);
    void freeSlot(uint32_t idx);
    void pushBack(SlotList &q, uint32_t idx);
    void unlink(SlotList &q, uint32_t idx, uint32_t prev);

    /** True when the oldest background read has aged past the bound. */
    bool bgPromotable(Tick now) const;

    /**
     * The queue that owns the issue slot this cycle, or nullptr when all
     * queues are empty.  Priority: forced write drain > aged background
     * reads > critical reads > opportunistic writes > background reads.
     */
    SlotList *owningQueue(Tick now, bool *promoted);

    /** Pick and issue at most one request; true if one was issued. */
    bool tryIssue(Tick now);

    /**
     * FR-FCFS selection from @p q within the scheduling window: first
     * ready row hit, else the oldest ready request.  Returns the slot
     * index (kNullSlot if none ready) and its list predecessor.  When
     * nothing is ready, @p min_ready_out holds the earliest readyAt()
     * across the window's banks — the re-arm tick — so rearm() never
     * walks the queue a second time.
     */
    uint32_t selectFrFcfs(const SlotList &q, Tick now, uint32_t *prev_out,
                          Tick *min_ready_out) const;

    void issue(DecodedRequest &dec, Tick now);

    /** Compute and arm the next wakeup after a scan at @p now. */
    void rearm(Tick now, bool issued);

    const DramTimingParams &params_;
    EventQueue &events_;
    stats::Distribution *read_delay_hist_;

    std::vector<Bank> banks_;

    /** Request arena: slots_[i] is linked through next_[i]. */
    std::vector<DecodedRequest> slots_;
    std::vector<uint32_t> next_;
    uint32_t free_head_ = kNullSlot;

    /** Critical-path reads: demand and metadata. */
    SlotList read_q_;
    /** Background reads: migration and writeback-related. */
    SlotList bg_read_q_;
    SlotList write_q_;

    Tick bus_free_ = 0;
    Tick bus_busy_ticks_ = 0;
    bool draining_writes_ = false;
    Tick next_refresh_ = 0;

    /** Drain engages at the high watermark... */
    size_t drain_high_ = 0;
    /** ...and releases this many entries below it (>=1 even at depth 8). */
    size_t drain_release_margin_ = 0;
    /** Aging bound for background reads in CPU ticks (0: disabled). */
    Tick bg_max_wait_ticks_ = 0;

    /** The pending wakeup (see nextScanAt()). */
    Tick next_scan_ = kTickNever;

    // ---- Window-mode state (see sim/domain.hh) -----------------------

    /** An enqueue buffered during the serial core phase of a window. */
    struct PendingEnqueue
    {
        DecodedRequest dec;
        Tick now = 0;      ///< original enqueue tick (delay/aging base)
        Tick scan_at = 0;
    };

    bool window_mode_ = false;
    /** Buffered enqueues in arrival order (scan_at is nondecreasing). */
    std::vector<PendingEnqueue> pending_;
    /** Buffered-read / buffered-write counts for the depth probes. */
    size_t pending_reads_ = 0;
    size_t pending_writes_ = 0;
    std::vector<DeferredCompletion> deferred_completions_;
    std::vector<DeferredSample> deferred_samples_;

    /**
     * Scratch from the last tryIssue(), consumed by rearm(): whether an
     * owning queue existed, and (on a failed issue) the earliest bank
     * readyAt() across its window.
     */
    bool scan_had_owner_ = false;
    Tick scan_owner_ready_ = kTickNever;

    uint64_t row_hits_ = 0;
    uint64_t row_misses_ = 0;
    uint64_t activations_ = 0;
    uint64_t refreshes_ = 0;
    uint64_t bg_promotions_ = 0;
    double read_delay_sum_ = 0.0;
    uint64_t reads_served_ = 0;
    uint64_t writes_served_ = 0;
};

} // namespace dram
} // namespace silc

#endif // SILC_DRAM_CONTROLLER_HH
