#include "dram/dram_system.hh"

#include <algorithm>

#include "common/logging.hh"
#include "telemetry/sampler.hh"

namespace silc {
namespace dram {

DramSystem::DramSystem(DramTimingParams params, uint64_t capacity,
                       EventQueue &events)
    : params_(std::move(params)), capacity_(capacity), events_(events),
      // Queue delays at this scale live in the tens-to-hundreds of CPU
      // ticks; 8-tick buckets up to 1024 resolve p50-p99, with the
      // saturating overflow bucket catching drain-mode outliers.
      read_delay_hist_(0.0, 1024.0, 128)
{
    params_.validate();
    if (capacity_ == 0 || capacity_ % kLargeBlockSize != 0)
        fatal("%s: capacity must be a positive multiple of the large "
              "block size", params_.name.c_str());
    channels_.reserve(params_.channels);
    for (uint32_t c = 0; c < params_.channels; ++c)
        channels_.push_back(std::make_unique<ChannelController>(
            params_, events_, &read_delay_hist_));
    for (const auto &ch : channels_)
        next_scan_min_ = std::min(next_scan_min_, ch->nextScanAt());
}

AddressDecode
DramSystem::decode(Addr addr) const
{
    AddressDecode d;
    uint64_t block = addr >> kSubblockBits;
    d.channel = static_cast<uint32_t>(block % params_.channels);
    block /= params_.channels;

    const uint64_t cols = params_.row_buffer_bytes / kSubblockSize;
    d.column = static_cast<uint32_t>(block % cols);
    block /= cols;

    const uint64_t banks =
        params_.banks_per_rank * params_.ranks_per_channel;
    d.bank = static_cast<uint32_t>(block % banks);
    block /= banks;

    d.row = static_cast<int64_t>(block);
    return d;
}

void
DramSystem::issue(DramRequest req, Tick now)
{
    if (req.addr >= capacity_)
        panic("%s: address %llu out of range (capacity %llu)",
              params_.name.c_str(),
              static_cast<unsigned long long>(req.addr),
              static_cast<unsigned long long>(capacity_));

    AddressDecode d = decode(req.addr);
    if (req.force_channel >= 0) {
        if (static_cast<uint32_t>(req.force_channel) >= params_.channels)
            panic("%s: forced channel %d out of range",
                  params_.name.c_str(), req.force_channel);
        d.channel = static_cast<uint32_t>(req.force_channel);
    }

    const auto cls = static_cast<size_t>(req.traffic);
    if (req.is_write)
        traffic_.write[cls] += req.bytes;
    else
        traffic_.read[cls] += req.bytes;
    ++issued_requests_;

    DecodedRequest dec;
    dec.bank = d.bank;
    dec.row = d.row;
    dec.req = std::move(req);
    ChannelController &ch = *channels_[d.channel];

    // Compute when the channel must be scanned: exactly when the polled
    // design would have scanned it — the current cycle's DRAM phase if
    // that is still ahead of us (cores tick before memory in the main
    // loop), else the next memory-cycle boundary.
    const Tick step = params_.cpu_cycles_per_mem_cycle;
    const Tick rem = now % step;
    Tick scan_at;
    if (rem == 0)
        scan_at = tick_seen_ != now ? now : now + step;
    else
        scan_at = now + (step - rem);

    if (window_mode_) {
        // Windowed core phase: the scan belongs to the replay.  Buffer
        // the enqueue on its channel and pull the window horizon down so
        // the core phase stops before this scan's earliest completion.
        ch.bufferEnqueue(std::move(dec), now, scan_at);
        window_scan_low_ = std::min(window_scan_low_, scan_at);
        return;
    }

    ch.enqueue(std::move(dec), now);
    ch.requestScanAt(scan_at);
    next_scan_min_ = std::min(next_scan_min_, scan_at);
}

void
DramSystem::scanDue(Tick now)
{
    // Ascending channel order, matching the old polled loop, so
    // completion events keep their insertion-order tie-breaking.
    Tick m = kTickNever;
    for (auto &ch : channels_) {
        if (now >= ch->nextScanAt())
            ch->scan(now);
        m = std::min(m, ch->nextScanAt());
    }
    next_scan_min_ = m;
}

bool
DramSystem::idle() const
{
    for (const auto &ch : channels_) {
        if (ch->queuedRequests() != 0)
            return false;
    }
    return true;
}

uint64_t
DramSystem::rowHits() const
{
    uint64_t s = 0;
    for (const auto &ch : channels_)
        s += ch->rowHits();
    return s;
}

uint64_t
DramSystem::rowMisses() const
{
    uint64_t s = 0;
    for (const auto &ch : channels_)
        s += ch->rowMisses();
    return s;
}

uint64_t
DramSystem::activations() const
{
    uint64_t s = 0;
    for (const auto &ch : channels_)
        s += ch->activations();
    return s;
}

uint64_t
DramSystem::refreshes() const
{
    uint64_t s = 0;
    for (const auto &ch : channels_)
        s += ch->refreshes();
    return s;
}

uint64_t
DramSystem::bgPromotions() const
{
    uint64_t s = 0;
    for (const auto &ch : channels_)
        s += ch->bgPromotions();
    return s;
}

uint64_t
DramSystem::readsServed() const
{
    uint64_t s = 0;
    for (const auto &ch : channels_)
        s += ch->readsServed();
    return s;
}

uint64_t
DramSystem::writesServed() const
{
    uint64_t s = 0;
    for (const auto &ch : channels_)
        s += ch->writesServed();
    return s;
}

double
DramSystem::avgReadQueueDelay() const
{
    double sum = 0.0;
    uint64_t n = 0;
    for (const auto &ch : channels_) {
        sum += ch->readQueueDelaySum();
        n += ch->readsServed();
    }
    return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

double
DramSystem::busUtilization(Tick elapsed) const
{
    if (elapsed == 0)
        return 0.0;
    Tick busy = 0;
    for (const auto &ch : channels_)
        busy += ch->busBusyTicks();
    return static_cast<double>(busy) /
        (static_cast<double>(elapsed) * params_.channels);
}

double
DramSystem::energyJoules(Tick elapsed, double cpu_freq_hz) const
{
    const double seconds = static_cast<double>(elapsed) / cpu_freq_hz;
    const double bg_j = params_.energy.background_mw_per_channel * 1e-3 *
        static_cast<double>(params_.channels) * seconds;
    return dynamicEnergyJoules() + bg_j;
}

double
DramSystem::dynamicEnergyJoules() const
{
    EnergyMeter m;
    // The meter is counter-based; replay aggregates rather than events.
    m.recordActivations(activations());
    m.recordTransfer(traffic_.totalRead(), false);
    m.recordTransfer(traffic_.totalWrite(), true);
    return m.dynamicJoules(params_);
}

size_t
DramSystem::queuedRequests() const
{
    size_t s = 0;
    for (const auto &ch : channels_)
        s += ch->queuedRequests();
    return s;
}

void
DramSystem::registerTelemetry(telemetry::Sampler &sampler,
                              const std::string &prefix) const
{
    sampler.addCounter(prefix + ".bytes",
                       [this] { return double(traffic_.total()); });
    sampler.addCounter(prefix + ".demandBytes",
                       [this] { return double(demandBytes()); });
    sampler.addRatio(prefix + ".rowHitRate",
                     [this] { return double(rowHits()); },
                     [this] { return double(rowHits() + rowMisses()); });
    sampler.addDistribution(prefix + ".readDelay", read_delay_hist_);

    for (size_t c = 0; c < channels_.size(); ++c) {
        const ChannelController *ch = channels_[c].get();
        const std::string p =
            prefix + ".ch" + std::to_string(c);
        sampler.addGauge(p + ".readQ",
                         [ch] { return double(ch->readQueueDepth()); });
        sampler.addGauge(p + ".writeQ",
                         [ch] { return double(ch->writeQueueDepth()); });
        sampler.addRatio(p + ".rowHitRate",
                         [ch] { return double(ch->rowHits()); },
                         [ch] {
                             return double(ch->rowHits() +
                                           ch->rowMisses());
                         });
        // Per-channel data-bus duty cycle within the epoch.
        sampler.addRate(p + ".busUtil",
                        [ch] { return double(ch->busBusyTicks()); });
    }
}

void
DramSystem::setWindowMode(bool on)
{
    window_mode_ = on;
    for (auto &ch : channels_)
        ch->setWindowMode(on);
    window_scan_low_ = kTickNever;
    // Windows bypass the polled tick() path, leaving next_scan_min_
    // stale; recompute it so the legacy fast path is sound either way.
    next_scan_min_ = kTickNever;
    for (const auto &ch : channels_)
        next_scan_min_ = std::min(next_scan_min_, ch->nextScanAt());
}

void
DramSystem::beginWindow()
{
    // Seed the horizon from the channels' armed wakeups: no scan of this
    // device can happen before the earliest of them, and issue() only
    // ever pulls the bound down from here.
    Tick low = kTickNever;
    for (const auto &ch : channels_)
        low = std::min(low, ch->nextScanAt());
    window_scan_low_ = low;
}

void
DramSystem::mergeWindow(uint32_t loop_phase)
{
    // Deferred completions must enter the event queue with the sequence
    // numbers the sequential simulator would have assigned: at a given
    // scan tick the device phase scans channels in ascending index
    // order, so ordering by (scan tick, channel) and numbering within
    // each scan tick reproduces the sequential insertion order exactly.
    merge_order_.clear();
    for (size_t c = 0; c < channels_.size(); ++c) {
        const auto &dc = channels_[c]->deferredCompletions();
        for (size_t i = 0; i < dc.size(); ++i)
            merge_order_.push_back({dc[i].scan_tick,
                                    static_cast<uint64_t>(c),
                                    static_cast<uint64_t>(i)});
    }
    if (!merge_order_.empty()) {
        std::sort(merge_order_.begin(), merge_order_.end());
        Tick cur_tick = kTickNever;
        uint64_t counter = 0;
        for (const auto &e : merge_order_) {
            const Tick scan_tick = e[0];
            if (scan_tick != cur_tick) {
                cur_tick = scan_tick;
                counter = 0;
            }
            auto &dc = channels_[e[1]]->deferredCompletions()[e[2]];
            events_.scheduleKeyed(
                dc.when,
                EventQueue::orderKey(scan_tick, loop_phase, counter++),
                std::move(dc.cb));
        }
        for (auto &ch : channels_)
            ch->deferredCompletions().clear();
    }

    // Same ordering discipline for the device-shared read-delay
    // histogram: its floating-point running sum is order-dependent, so
    // samples replay in the sequential (scan tick, channel) order.
    merge_order_.clear();
    for (size_t c = 0; c < channels_.size(); ++c) {
        const auto &ds = channels_[c]->deferredSamples();
        for (size_t i = 0; i < ds.size(); ++i)
            merge_order_.push_back({ds[i].scan_tick,
                                    static_cast<uint64_t>(c),
                                    static_cast<uint64_t>(i)});
    }
    if (!merge_order_.empty()) {
        std::sort(merge_order_.begin(), merge_order_.end());
        for (const auto &e : merge_order_)
            read_delay_hist_.sample(
                channels_[e[1]]->deferredSamples()[e[2]].delay);
        for (auto &ch : channels_)
            ch->deferredSamples().clear();
    }
}

void
DramSystem::reset()
{
    for (auto &ch : channels_)
        ch->reset();
    read_delay_hist_.reset();
    traffic_ = TrafficBytes{};
    issued_requests_ = 0;
    next_scan_min_ = kTickNever;
    for (const auto &ch : channels_)
        next_scan_min_ = std::min(next_scan_min_, ch->nextScanAt());
    tick_seen_ = kTickNever;
    window_scan_low_ = kTickNever;
}

} // namespace dram
} // namespace silc
