/**
 * @file
 * A complete DRAM device: address decode across channels/ranks/banks/rows,
 * per-channel controllers, and traffic/energy accounting.  The simulator
 * instantiates two of these — NM (HBM2) and FM (DDR3) — and the
 * flat-memory policies issue DramRequests into them.
 */

#ifndef SILC_DRAM_DRAM_SYSTEM_HH
#define SILC_DRAM_DRAM_SYSTEM_HH

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/event_queue.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "dram/controller.hh"
#include "dram/energy.hh"
#include "dram/request.hh"
#include "dram/timing.hh"

namespace silc {

namespace telemetry {
class Sampler;
} // namespace telemetry

namespace dram {

/** Where a device-local address lands in the DRAM geometry. */
struct AddressDecode
{
    uint32_t channel = 0;
    uint32_t bank = 0;     ///< flat bank index within the channel
    int64_t row = 0;
    uint32_t column = 0;   ///< 64B column within the row
};

/** Aggregate byte counters indexed by TrafficClass. */
struct TrafficBytes
{
    std::array<uint64_t, 4> read{};
    std::array<uint64_t, 4> write{};

    uint64_t
    totalRead() const
    {
        uint64_t s = 0;
        for (auto v : read)
            s += v;
        return s;
    }

    uint64_t
    totalWrite() const
    {
        uint64_t s = 0;
        for (auto v : write)
            s += v;
        return s;
    }

    uint64_t total() const { return totalRead() + totalWrite(); }
};

/** One DRAM device (NM or FM). */
class DramSystem
{
  public:
    /**
     * @param params   device timing/geometry
     * @param capacity device capacity in bytes (requests must be in range)
     * @param events   shared event queue for completion callbacks
     */
    DramSystem(DramTimingParams params, uint64_t capacity,
               EventQueue &events);

    /**
     * Map a device-local address onto the geometry.  Consecutive 64B
     * subblocks interleave across channels; columns, banks, ranks and
     * rows follow (open-page friendly for 2KB block trains).
     */
    AddressDecode decode(Addr addr) const;

    /** Issue a request at tick @p now. */
    void issue(DramRequest req, Tick now);

    /**
     * Advance to CPU tick @p now.  Event-driven: channels arm a wakeup
     * register with their next actionable tick (see ChannelController),
     * so this is one comparison against the device-wide minimum unless
     * some channel's wakeup is due.  Due channels are scanned here, in
     * the same loop phase the polled design used, so issued-command
     * order is unchanged.
     *
     * Inline fast path: called every CPU cycle from the main loop.
     */
    void
    tick(Tick now)
    {
        tick_seen_ = now;
        if (now < next_scan_min_)
            return;
        scanDue(now);
    }

    /** True when all channel queues are empty. */
    bool idle() const;

    /**
     * Earliest tick at which any channel could act (kTickNever when no
     * work or deadline is pending).  Ticks strictly before this are
     * no-ops, so the main loop may fast-forward across them.
     */
    Tick nextWakeTick() const { return next_scan_min_; }

    const DramTimingParams &params() const { return params_; }
    uint64_t capacity() const { return capacity_; }
    const std::string &name() const { return params_.name; }

    /** Byte counters per traffic class. */
    const TrafficBytes &traffic() const { return traffic_; }

    /** Demand-only bytes (the paper's Figure 8 numerator). */
    uint64_t
    demandBytes() const
    {
        const auto d = static_cast<size_t>(TrafficClass::Demand);
        return traffic_.read[d] + traffic_.write[d];
    }

    uint64_t rowHits() const;
    uint64_t rowMisses() const;
    uint64_t activations() const;
    uint64_t refreshes() const;
    uint64_t readsServed() const;
    uint64_t writesServed() const;

    /** Background reads promoted past demand traffic by the aging bound. */
    uint64_t bgPromotions() const;

    /** Mean read queueing delay in CPU ticks. */
    double avgReadQueueDelay() const;

    /** Fraction of tick-time the data buses were transferring. */
    double busUtilization(Tick elapsed) const;

    /** Total energy (dynamic + background) in joules. */
    double energyJoules(Tick elapsed, double cpu_freq_hz) const;

    /** Dynamic-only energy in joules. */
    double dynamicEnergyJoules() const;

    /** Queue depth across channels (diagnostics / backpressure hints). */
    size_t queuedRequests() const;

    /** Histogram of read queueing delays (CPU ticks), device-wide. */
    const stats::Distribution &readDelayHistogram() const
    {
        return read_delay_hist_;
    }

    /**
     * Register per-epoch probes under @p prefix ("nm", "fm"): device
     * bytes/demand-bytes per epoch, read-delay percentiles, plus
     * per-channel read/write queue depth, row-hit rate and bus
     * utilization.  The device must outlive @p sampler.
     */
    void registerTelemetry(telemetry::Sampler &sampler,
                           const std::string &prefix) const;

    /** Clear all queues, bank state and statistics. */
    void reset();

    /** Per-channel access for tests (wakeup-oracle introspection). */
    const ChannelController &channel(size_t i) const
    {
        return *channels_[i];
    }

    size_t numChannels() const { return channels_.size(); }

    // ---- Windowed parallel execution (see sim/domain.hh) -------------
    //
    // In window mode the device is split across the main loop's two
    // roles: the serial core phase calls stampTick() (no scans) and
    // issue() buffers enqueues into the owning channel, while the scan
    // work of the window is replayed per channel — possibly on worker
    // threads — via replayChannel(), then folded back deterministically
    // by mergeWindow().

    /** Enter/leave window mode (propagates to every channel). */
    void setWindowMode(bool on);

    /**
     * Window-mode stand-in for tick(): record the main loop's device
     * phase for issue()'s same-cycle scan placement, without scanning.
     */
    void stampTick(Tick now) { tick_seen_ = now; }

    /**
     * Open a window: seed the conservative horizon from the channels'
     * armed wakeups.  Call after the previous window's replay (which
     * re-arms them) and before the window's core phase.
     */
    void beginWindow();

    /**
     * Lower bound, in CPU ticks, between a scan issuing a request and
     * its completion callback (CAS latency plus one bus burst cycle).
     * Scans at tick t schedule completions no earlier than t +
     * minServiceTicks(), which is what makes a window of that length
     * safe to replay after its core phase has already run.
     */
    Tick minServiceTicks() const
    {
        return params_.toTicks(params_.t_cas + 1);
    }

    /**
     * First tick at which the window currently being built could miss a
     * completion: no scan of this device before
     * min(armed wakeups, buffered enqueue scans) can complete earlier
     * than that scan tick plus minServiceTicks().  Monotonically
     * nonincreasing within a window (issue() pulls it down); the core
     * phase must stop at or before this tick.
     */
    Tick
    windowHorizon() const
    {
        return window_scan_low_ >= kTickNever - minServiceTicks()
            ? kTickNever
            : window_scan_low_ + minServiceTicks();
    }

    /** Replay one channel's window up to @p w1 (thread-safe across
     *  distinct channels; see ChannelController::replayWindow). */
    void replayChannel(size_t i, Tick w1)
    {
        channels_[i]->replayWindow(w1);
    }

    /**
     * Fold the window's deferred work back into the shared state, in
     * the sequential simulator's order: completion events are inserted
     * with keys composed from (scan tick, @p loop_phase, channel rank)
     * and histogram samples replay in (scan tick, channel) order.
     * @p loop_phase is the device's main-loop phase (1 NM, 2 FM).
     */
    void mergeWindow(uint32_t loop_phase);

  private:
    /** Slow path of tick(): scan every due channel in index order. */
    void scanDue(Tick now);

    DramTimingParams params_;
    uint64_t capacity_;
    EventQueue &events_;
    stats::Distribution read_delay_hist_;
    std::vector<std::unique_ptr<ChannelController>> channels_;
    TrafficBytes traffic_;
    uint64_t issued_requests_ = 0;
    /** Minimum of the channels' wakeup registers (may run stale-early:
     *  scanDue() recomputes it; a too-low value only costs a no-op pass). */
    Tick next_scan_min_ = kTickNever;
    /** Last tick() cycle, to place same-cycle enqueues (see issue()). */
    Tick tick_seen_ = kTickNever;

    /** Window mode: issue() buffers, scans run via replayChannel(). */
    bool window_mode_ = false;
    /** Earliest possible scan tick of the open window (see
     *  windowHorizon()). */
    Tick window_scan_low_ = kTickNever;
    /** Merge scratch: (scan_tick, channel, index into that channel's
     *  deferred vector), reused across windows. */
    std::vector<std::array<uint64_t, 3>> merge_order_;
};

} // namespace dram
} // namespace silc

#endif // SILC_DRAM_DRAM_SYSTEM_HH
