#include "dram/energy.hh"

namespace silc {
namespace dram {

double
EnergyMeter::dynamicJoules(const DramTimingParams &p) const
{
    const double act_j =
        static_cast<double>(activations_) * p.energy.act_pre_pj * 1e-12;
    const double bits =
        static_cast<double>(read_bytes_ + write_bytes_) * 8.0;
    const double xfer_j = bits * p.energy.pj_per_bit * 1e-12;
    return act_j + xfer_j;
}

double
EnergyMeter::totalJoules(const DramTimingParams &p, Tick elapsed_ticks,
                         double cpu_freq_hz) const
{
    const double seconds =
        static_cast<double>(elapsed_ticks) / cpu_freq_hz;
    const double background_j = p.energy.background_mw_per_channel * 1e-3 *
        static_cast<double>(p.channels) * seconds;
    return dynamicJoules(p) + background_j;
}

void
EnergyMeter::reset()
{
    activations_ = 0;
    read_bytes_ = 0;
    write_bytes_ = 0;
}

} // namespace dram
} // namespace silc
