/**
 * @file
 * DRAM energy accounting used for the paper's Energy-Delay Product claim
 * (SILC-FM reports 13% EDP savings over CAMEO thanks to die-stacked DRAM's
 * low per-bit energy).
 */

#ifndef SILC_DRAM_ENERGY_HH
#define SILC_DRAM_ENERGY_HH

#include <cstdint>

#include "common/types.hh"
#include "dram/timing.hh"

namespace silc {
namespace dram {

/** Accumulates activation and data-movement counts; converts to joules. */
class EnergyMeter
{
  public:
    void recordActivation() { ++activations_; }

    /** Bulk-add @p n activations (for aggregate replay). */
    void recordActivations(uint64_t n) { activations_ += n; }

    void
    recordTransfer(uint64_t bytes, bool is_write)
    {
        if (is_write)
            write_bytes_ += bytes;
        else
            read_bytes_ += bytes;
    }

    uint64_t activations() const { return activations_; }
    uint64_t readBytes() const { return read_bytes_; }
    uint64_t writeBytes() const { return write_bytes_; }

    /**
     * Total energy in joules after @p elapsed_ticks of simulation.
     *
     * @param p            device parameters (energy + channels)
     * @param elapsed_ticks simulated CPU ticks
     * @param cpu_freq_hz  CPU frequency to convert ticks into seconds
     */
    double totalJoules(const DramTimingParams &p, Tick elapsed_ticks,
                       double cpu_freq_hz) const;

    /** Dynamic-only energy in joules (no background power). */
    double dynamicJoules(const DramTimingParams &p) const;

    void reset();

  private:
    uint64_t activations_ = 0;
    uint64_t read_bytes_ = 0;
    uint64_t write_bytes_ = 0;
};

} // namespace dram
} // namespace silc

#endif // SILC_DRAM_ENERGY_HH
