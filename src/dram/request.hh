/**
 * @file
 * The request unit exchanged between flat-memory policies and a DRAM
 * system.  One request moves up to one burst of data (typically a 64B
 * subblock); large-block migrations are issued as trains of requests so
 * that they occupy queues, banks, and buses realistically.
 */

#ifndef SILC_DRAM_REQUEST_HH
#define SILC_DRAM_REQUEST_HH

#include <cstdint>
#include <functional>

#include "common/types.hh"

namespace silc {
namespace dram {

/** What class of traffic a request belongs to (for bandwidth accounting). */
enum class TrafficClass : uint8_t
{
    Demand,     ///< on the critical path of an LLC miss
    Migration,  ///< swap/migration/restore traffic
    Metadata,   ///< remap-table/bit-vector reads and writes
    Writeback,  ///< LLC dirty evictions
};

/** Printable name of a traffic class. */
const char *trafficClassName(TrafficClass c);

/** A single DRAM access. */
struct DramRequest
{
    /** Device-local physical address. */
    Addr addr = 0;
    /** True for a write (no completion latency consumer). */
    bool is_write = false;
    /** Payload size in bytes (bursts are rounded up). */
    uint32_t bytes = static_cast<uint32_t>(kSubblockSize);
    /** Accounting class. */
    TrafficClass traffic = TrafficClass::Demand;
    /** Originating core (stats only). */
    CoreId core = 0;
    /**
     * When >= 0, bypass the address decode and use this channel; used by
     * SILC-FM's dedicated metadata channel (Section III-D).
     */
    int32_t force_channel = -1;
    /** Invoked once the data transfer completes (may be empty). */
    std::function<void(Tick)> on_complete;
};

} // namespace dram
} // namespace silc

#endif // SILC_DRAM_REQUEST_HH
