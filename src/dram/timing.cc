#include "dram/timing.hh"

#include "common/logging.hh"

namespace silc {
namespace dram {

double
DramTimingParams::peakBytesPerTick() const
{
    // Two beats per memory cycle (DDR), bus_width_bits/8 bytes per beat,
    // divided across cpu_cycles_per_mem_cycle CPU ticks, times channels.
    const double bytes_per_mem_cycle = 2.0 * (bus_width_bits / 8.0);
    return bytes_per_mem_cycle * channels / cpu_cycles_per_mem_cycle;
}

void
DramTimingParams::validate() const
{
    if (channels == 0 || ranks_per_channel == 0 || banks_per_rank == 0)
        fatal("%s: zero geometry dimension", name.c_str());
    if (!isPowerOf2(channels) || !isPowerOf2(banks_per_rank) ||
        !isPowerOf2(ranks_per_channel)) {
        fatal("%s: geometry must be powers of two", name.c_str());
    }
    if (!isPowerOf2(row_buffer_bytes) || row_buffer_bytes < kSubblockSize)
        fatal("%s: bad row buffer size", name.c_str());
    if (bus_width_bits % 8 != 0 || bus_width_bits == 0)
        fatal("%s: bus width must be a positive byte multiple",
              name.c_str());
    if (cpu_cycles_per_mem_cycle == 0)
        fatal("%s: zero clock divider", name.c_str());
    if (t_cas == 0 || t_rcd == 0 || t_rp == 0 || t_ras == 0)
        fatal("%s: zero core timing parameter", name.c_str());
    if (queue_depth == 0)
        fatal("%s: zero queue depth", name.c_str());
}

DramTimingParams
hbm2Params()
{
    DramTimingParams p;
    p.name = "hbm2";
    p.bus_freq_mhz = 800;
    p.bus_width_bits = 128;
    p.channels = 8;
    p.ranks_per_channel = 1;
    p.banks_per_rank = 8;
    p.row_buffer_bytes = 8192;
    // JEDEC 235A-derived core timings at 800 MHz (1.25 ns cycles):
    // ~17.5ns CAS/RCD/RP, ~42.5ns RAS.
    p.t_cas = 14;
    p.t_rcd = 14;
    p.t_rp = 14;
    p.t_ras = 34;
    p.t_refi = 3120;   // 3.9 us
    p.t_rfc = 208;     // 260 ns
    p.queue_depth = 32;
    p.cpu_cycles_per_mem_cycle = 4;
    // Die-stacked DRAM moves bits over short TSVs: low per-bit energy.
    p.energy.act_pre_pj = 3000.0;
    p.energy.pj_per_bit = 4.0;
    p.energy.background_mw_per_channel = 55.0;
    return p;
}

DramTimingParams
ddr3Params()
{
    DramTimingParams p;
    p.name = "ddr3";
    p.bus_freq_mhz = 800;
    p.bus_width_bits = 64;
    p.channels = 4;
    p.ranks_per_channel = 1;
    p.banks_per_rank = 8;
    p.row_buffer_bytes = 8192;
    // DDR3-1600 11-11-11-28 (JEDEC + vendor datasheets).
    p.t_cas = 11;
    p.t_rcd = 11;
    p.t_rp = 11;
    p.t_ras = 28;
    p.t_refi = 6240;   // 7.8 us
    p.t_rfc = 208;     // 260 ns
    p.queue_depth = 32;
    p.cpu_cycles_per_mem_cycle = 4;
    // Off-chip DDR pays board-level I/O energy per bit.
    p.energy.act_pre_pj = 20000.0;
    p.energy.pj_per_bit = 24.0;
    p.energy.background_mw_per_channel = 110.0;
    return p;
}

} // namespace dram
} // namespace silc
