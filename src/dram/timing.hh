/**
 * @file
 * DRAM device timing/geometry parameter sets.
 *
 * Defaults follow Table II of the SILC-FM paper: NM is HBM2-like
 * (800 MHz command clock, DDR 1.6 GT/s, 128-bit bus, 8 channels) and FM is
 * DDR3-like (800 MHz, 1.6 GT/s, 64-bit bus, 4 channels); both use 8 banks
 * per rank, 8KB row buffers, and an open-page policy.
 */

#ifndef SILC_DRAM_TIMING_HH
#define SILC_DRAM_TIMING_HH

#include <cstdint>
#include <string>

#include "common/types.hh"

namespace silc {
namespace dram {

/** Per-operation energy model parameters (see dram/energy.hh). */
struct EnergyParams
{
    /** Energy per activate+precharge pair, picojoules. */
    double act_pre_pj = 0.0;
    /** Data transfer energy, picojoules per bit. */
    double pj_per_bit = 0.0;
    /** Static/background power per channel, milliwatts. */
    double background_mw_per_channel = 0.0;
};

/** Geometry and timing of one DRAM device type. */
struct DramTimingParams
{
    std::string name = "dram";

    /** Command clock in MHz (data rate is 2x, DDR). */
    uint32_t bus_freq_mhz = 800;
    /** Data bus width in bits. */
    uint32_t bus_width_bits = 64;
    /** Independent channels. */
    uint32_t channels = 4;
    /** Ranks per channel. */
    uint32_t ranks_per_channel = 1;
    /** Banks per rank. */
    uint32_t banks_per_rank = 8;
    /** Row buffer (page) size in bytes. */
    uint64_t row_buffer_bytes = 8192;

    /** Column access latency (CAS), in memory cycles. */
    uint32_t t_cas = 11;
    /** RAS-to-CAS delay, in memory cycles. */
    uint32_t t_rcd = 11;
    /** Row precharge, in memory cycles. */
    uint32_t t_rp = 11;
    /** Row active minimum, in memory cycles. */
    uint32_t t_ras = 28;
    /** Column-to-column delay (same bank), in memory cycles. */
    uint32_t t_ccd = 4;
    /** Refresh interval, memory cycles (0 disables refresh). */
    uint32_t t_refi = 6240;
    /** Refresh cycle time, memory cycles. */
    uint32_t t_rfc = 208;

    /** Read/write queue capacity per channel (Table II: 32). */
    uint32_t queue_depth = 32;

    /**
     * Aging bound for background (migration/swap) reads, in memory
     * cycles: one waiting longer than this is promoted ahead of demand
     * traffic so sustained demand+writeback load cannot starve
     * relocation.  0 disables promotion.  The default is generous — a
     * fairness backstop, not a scheduling knob — so steady-state
     * schedules are unchanged unless starvation actually occurs.
     */
    uint32_t bg_max_wait_mem_cycles = 4096;

    /** CPU cycles per memory (command) cycle; 3.2 GHz / 800 MHz = 4. */
    uint32_t cpu_cycles_per_mem_cycle = 4;

    EnergyParams energy;

    /** Data transfers (beats) needed to move @p bytes across the bus. */
    uint32_t
    beatsFor(uint64_t bytes) const
    {
        const uint64_t bytes_per_beat = bus_width_bits / 8;
        return static_cast<uint32_t>(
            (bytes + bytes_per_beat - 1) / bytes_per_beat);
    }

    /** Memory cycles of bus occupancy for @p bytes (DDR: 2 beats/cycle). */
    uint32_t
    burstMemCycles(uint64_t bytes) const
    {
        const uint32_t beats = beatsFor(bytes);
        return (beats + 1) / 2;
    }

    /** Convert memory cycles into CPU ticks. */
    Tick
    toTicks(uint32_t mem_cycles) const
    {
        return static_cast<Tick>(mem_cycles) * cpu_cycles_per_mem_cycle;
    }

    /** Peak bandwidth in bytes per CPU tick (all channels). */
    double peakBytesPerTick() const;

    /** Sanity checks; fatal() on inconsistencies. */
    void validate() const;
};

/** HBM generation 2 parameters per Table II / JEDEC 235A. */
DramTimingParams hbm2Params();

/** DDR3-1600 parameters per Table II. */
DramTimingParams ddr3Params();

} // namespace dram
} // namespace silc

#endif // SILC_DRAM_TIMING_HH
