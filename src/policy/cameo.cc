#include "policy/cameo.hh"

#include "common/logging.hh"
#include "common/serialize.hh"

namespace silc {
namespace policy {

CameoPolicy::CameoPolicy(PolicyEnv env, CameoParams params)
    : FlatMemoryPolicy(env), params_(params)
{
    silc_assert(env_.nm != nullptr);
    const uint64_t nm_cap = env_.nm->capacity();
    const uint64_t fm_cap = env_.fm->capacity();
    if (fm_cap % nm_cap != 0)
        fatal("cameo: FM capacity must be a multiple of NM capacity");

    nm_blocks_ = nm_cap / kSubblockSize;
    members_ = static_cast<uint32_t>(fm_cap / nm_cap) + 1;
    if (params_.llp_entries != 0) {
        if (!isPowerOf2(params_.llp_entries))
            fatal("cameo: LLP entries must be a power of two");
        llp_.assign(params_.llp_entries, 1);   // cold lines are in FM
    }
    perm_.resize(nm_blocks_ * members_);
    for (uint64_t g = 0; g < nm_blocks_; ++g) {
        for (uint32_t m = 0; m < members_; ++m)
            perm_[g * members_ + m] = static_cast<uint8_t>(m);
    }
}

uint64_t
CameoPolicy::flatSpaceBytes() const
{
    return env_.nm->capacity() + env_.fm->capacity();
}

uint8_t &
CameoPolicy::slotOf(uint64_t g, uint32_t m)
{
    return perm_[g * members_ + m];
}

uint8_t
CameoPolicy::slotOf(uint64_t g, uint32_t m) const
{
    return perm_[g * members_ + m];
}

Location
CameoPolicy::slotLocation(uint64_t g, uint8_t slot) const
{
    Location loc;
    if (slot == 0) {
        loc.in_nm = true;
        loc.device_addr = g * kSubblockSize;
    } else {
        loc.in_nm = false;
        loc.device_addr =
            (g + static_cast<uint64_t>(slot - 1) * nm_blocks_) *
            kSubblockSize;
    }
    return loc;
}

uint32_t
CameoPolicy::memberAtSlot(uint64_t g, uint8_t slot) const
{
    for (uint32_t m = 0; m < members_; ++m) {
        if (slotOf(g, m) == slot)
            return m;
    }
    panic("cameo: group %llu has no member at slot %u",
          static_cast<unsigned long long>(g), slot);
}

uint64_t
CameoPolicy::llpIndex(uint64_t block) const
{
    uint64_t x = block ^ (block >> 15);
    return x & (params_.llp_entries - 1);
}

Location
CameoPolicy::locate(Addr paddr) const
{
    silc_assert(paddr < flatSpaceBytes());
    const uint64_t block = paddr >> kSubblockBits;
    const uint64_t g = groupOf(block);
    const uint32_t m = memberOf(block);
    return slotLocation(g, slotOf(g, m));
}

void
CameoPolicy::swapIntoNm(uint64_t block, CoreId core, Tick now)
{
    const uint64_t g = groupOf(block);
    const uint32_t m = memberOf(block);
    const uint8_t slot = slotOf(g, m);
    silc_assert(slot != 0);

    const uint32_t evicted = memberAtSlot(g, 0);
    const Location nm_loc = slotLocation(g, 0);
    const Location fm_loc = slotLocation(g, slot);

    // The requested block's data is in flight to the LLC already; the
    // swap writes it into the NM slot (extended burst carries the
    // updated LLT) and moves the old NM occupant to the vacated FM slot.
    issueWrite(*env_.nm, nm_loc.device_addr,
               static_cast<uint32_t>(kSubblockSize) + params_.llt_bytes,
               dram::TrafficClass::Migration, core, now);
    issueWrite(*env_.fm, fm_loc.device_addr,
               static_cast<uint32_t>(kSubblockSize),
               dram::TrafficClass::Migration, core, now);

    slotOf(g, m) = 0;
    slotOf(g, evicted) = slot;
    ++swaps_;
}

void
CameoPolicy::demandAccess(Addr paddr, bool is_write, CoreId core, Addr pc,
                          DemandCallback done, Tick now)
{
    (void)is_write;
    (void)pc;
    const uint64_t block = paddr >> kSubblockBits;
    const uint64_t g = groupOf(block);
    const uint32_t m = memberOf(block);
    const uint8_t slot = slotOf(g, m);

    const uint32_t nm_burst =
        static_cast<uint32_t>(kSubblockSize) + params_.llt_bytes;

    // Line Location Predictor: a correct "in FM" speculation lets the
    // FM request bypass the LLT serialization.
    bool predicted_fm = false;
    if (params_.llp_entries != 0) {
        ++llp_lookups_;
        predicted_fm = llp_[llpIndex(block)] != 0;
        if (predicted_fm == (slot != 0))
            ++llp_correct_;
        llp_[llpIndex(block)] = 0;   // after this access it is in NM
    }

    if (slot == 0) {
        // NM hit: one extended-burst read returns LLT + data.
        recordService(true);
        issueRead(*env_.nm, slotLocation(g, 0).device_addr, nm_burst,
                  dram::TrafficClass::Demand, core, std::move(done), now);
    } else {
        // NM read fetches the LLT (and the current NM data, which will
        // be evicted); the FM read returns the demand data — in
        // parallel when the LLP predicted FM, serially otherwise.
        recordService(false);
        const Location fm_loc = slotLocation(g, slot);
        const uint32_t evicted = memberAtSlot(g, 0);
        // Functional swap happens immediately; timing follows.
        swapIntoNm(block, core, now);
        if (params_.llp_entries != 0)
            llp_[llpIndex(g + uint64_t(evicted) * nm_blocks_)] = 1;

        if (predicted_fm) {
            issueRead(*env_.nm, slotLocation(g, 0).device_addr, nm_burst,
                      dram::TrafficClass::Metadata, core, nullptr, now);
            issueRead(*env_.fm, fm_loc.device_addr,
                      static_cast<uint32_t>(kSubblockSize),
                      dram::TrafficClass::Demand, core, std::move(done),
                      now);
        } else {
            auto fm_fetch = [this, fm_loc, core,
                             done = std::move(done)](Tick t) mutable {
                issueRead(*env_.fm, fm_loc.device_addr,
                          static_cast<uint32_t>(kSubblockSize),
                          dram::TrafficClass::Demand, core,
                          std::move(done), t);
            };
            issueRead(*env_.nm, slotLocation(g, 0).device_addr, nm_burst,
                      dram::TrafficClass::Metadata, core,
                      std::move(fm_fetch), now);
        }
    }

    // Next-line prefetch (CAMEOP): on an FM miss, pull the following
    // lines into NM as well ("fetches extra 3 lines along with the
    // miss", Section IV-A).
    if (params_.prefetch_degree > 0 && slot != 0) {
        const uint64_t total_blocks = flatSpaceBytes() >> kSubblockBits;
        for (uint32_t i = 1; i <= params_.prefetch_degree; ++i) {
            const uint64_t pb = block + i;
            if (pb >= total_blocks)
                break;
            const uint64_t pg = groupOf(pb);
            const uint32_t pm = memberOf(pb);
            const uint8_t pslot = slotOf(pg, pm);
            if (pslot == 0)
                continue;
            // LLT read for the prefetched group, FM fetch, then swap.
            const Location pfm = slotLocation(pg, pslot);
            issueRead(*env_.nm, slotLocation(pg, 0).device_addr, nm_burst,
                      dram::TrafficClass::Metadata, core, nullptr, now);
            issueRead(*env_.fm, pfm.device_addr,
                      static_cast<uint32_t>(kSubblockSize),
                      dram::TrafficClass::Migration, core, nullptr, now);
            swapIntoNm(pb, core, now);
            ++prefetches_;
        }
    }
}

void
CameoPolicy::snapshotState(BlobWriter &w) const
{
    FlatMemoryPolicy::snapshotState(w);
    w.putU64(perm_.size());
    for (uint8_t v : perm_)
        w.putU8(v);
    w.putU64(llp_.size());
    for (uint8_t v : llp_)
        w.putU8(v);
    w.putU64(swaps_);
    w.putU64(prefetches_);
    w.putU64(llp_correct_);
    w.putU64(llp_lookups_);
}

void
CameoPolicy::restoreState(BlobReader &r)
{
    FlatMemoryPolicy::restoreState(r);
    if (r.getU64() != perm_.size())
        fatal("cameo restore: permutation size mismatch");
    for (uint8_t &v : perm_)
        v = r.getU8();
    if (r.getU64() != llp_.size())
        fatal("cameo restore: LLP size mismatch");
    for (uint8_t &v : llp_)
        v = r.getU8();
    swaps_ = r.getU64();
    prefetches_ = r.getU64();
    llp_correct_ = r.getU64();
    llp_lookups_ = r.getU64();
}

} // namespace policy
} // namespace silc
