/**
 * @file
 * CAMEO (Chou et al., MICRO 2014) as described and evaluated in the
 * SILC-FM paper: a hardware part-of-memory scheme that swaps 64B blocks
 * between NM and FM within direct-mapped congruence groups.  The Line
 * Location Table (LLT) entry lives next to the data in the NM row, so
 * every NM access uses an extended burst (64B data + LLT bytes) and a
 * single memory request.
 *
 * CAMEOP adds the paper's next-N-line prefetcher (Section IV: fetch the
 * next 3 lines on an FM access), trading extra migration bandwidth for
 * spatial-locality hits.
 */

#ifndef SILC_POLICY_CAMEO_HH
#define SILC_POLICY_CAMEO_HH

#include <cstdint>
#include <vector>

#include "policy/policy.hh"

namespace silc {
namespace policy {

/** CAMEO configuration. */
struct CameoParams
{
    /** Extra bytes fetched per NM access for the in-row LLT entry. */
    uint32_t llt_bytes = 8;
    /** Next-line prefetch degree (0 = plain CAMEO, 3 = CAMEOP). */
    uint32_t prefetch_degree = 0;
    /**
     * Line Location Predictor entries (the original CAMEO includes an
     * LLP so a predicted-FM access is forwarded to FM in parallel with
     * the LLT fetch instead of serialising behind it); 0 disables.
     */
    uint64_t llp_entries = 65536;
};

/** CAMEO / CAMEO+prefetch. */
class CameoPolicy : public FlatMemoryPolicy
{
  public:
    CameoPolicy(PolicyEnv env, CameoParams params);

    const char *name() const override
    {
        return params_.prefetch_degree > 0 ? "camp" : "cam";
    }

    uint64_t flatSpaceBytes() const override;
    void demandAccess(Addr paddr, bool is_write, CoreId core, Addr pc,
                      DemandCallback done, Tick now) override;
    Location locate(Addr paddr) const override;

    bool supportsSampling() const override { return true; }
    void snapshotState(BlobWriter &w) const override;
    void restoreState(BlobReader &r) override;

    uint64_t swaps() const { return swaps_; }
    uint64_t prefetches() const { return prefetches_; }
    uint64_t llpCorrect() const { return llp_correct_; }
    uint64_t llpLookups() const { return llp_lookups_; }

  private:
    /** Congruence group of flat 64B block @p block. */
    uint64_t groupOf(uint64_t block) const { return block % nm_blocks_; }

    /** Member index (0 = NM-native) of flat block @p block. */
    uint32_t
    memberOf(uint64_t block) const
    {
        return static_cast<uint32_t>(block / nm_blocks_);
    }

    /** Current slot (0 = NM) of member @p m in group @p g. */
    uint8_t &slotOf(uint64_t g, uint32_t m);
    uint8_t slotOf(uint64_t g, uint32_t m) const;

    /** Device location of slot @p slot in group @p g. */
    Location slotLocation(uint64_t g, uint8_t slot) const;

    /** Member currently occupying slot @p slot of group @p g. */
    uint32_t memberAtSlot(uint64_t g, uint8_t slot) const;

    /**
     * Swap flat block @p block (currently in FM) into its group's NM
     * slot, evicting the present occupant to the vacated FM slot.
     * Issues migration traffic at @p now; metadata is already read by
     * the caller.
     */
    void swapIntoNm(uint64_t block, CoreId core, Tick now);

    /** LLP index for a flat 64B block. */
    uint64_t llpIndex(uint64_t block) const;

    CameoParams params_;
    uint64_t nm_blocks_;
    uint32_t members_;   ///< K + 1
    std::vector<uint8_t> perm_;
    /** Line Location Predictor: 1 = predicted in FM. */
    std::vector<uint8_t> llp_;
    uint64_t swaps_ = 0;
    uint64_t prefetches_ = 0;
    uint64_t llp_correct_ = 0;
    uint64_t llp_lookups_ = 0;
};

} // namespace policy
} // namespace silc

#endif // SILC_POLICY_CAMEO_HH
