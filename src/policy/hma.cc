#include "policy/hma.hh"

#include <algorithm>

#include "common/logging.hh"

namespace silc {
namespace policy {

HmaPolicy::HmaPolicy(PolicyEnv env, HmaParams params)
    : FlatMemoryPolicy(env), params_(params)
{
    silc_assert(env_.nm != nullptr);
    total_pages_ = flatSpaceBytes() / kLargeBlockSize;
    nm_pages_ = env_.nm->capacity() / kLargeBlockSize;
    frame_of_.resize(total_pages_);
    page_at_.resize(total_pages_);
    for (uint64_t p = 0; p < total_pages_; ++p) {
        frame_of_[p] = static_cast<uint32_t>(p);
        page_at_[p] = static_cast<uint32_t>(p);
    }
    counts_.assign(total_pages_, 0);
    next_epoch_ = params_.epoch_ticks;
}

uint64_t
HmaPolicy::flatSpaceBytes() const
{
    return env_.nm->capacity() + env_.fm->capacity();
}

Location
HmaPolicy::locate(Addr paddr) const
{
    silc_assert(paddr < flatSpaceBytes());
    const Addr sub = subblockAddr(paddr);
    const uint64_t page = sub >> kLargeBlockBits;
    const Addr offset = sub & (kLargeBlockSize - 1);
    const Addr frame_addr =
        static_cast<Addr>(frame_of_[page]) * kLargeBlockSize + offset;
    return identityLocation(frame_addr);
}

void
HmaPolicy::demandAccess(Addr paddr, bool is_write, CoreId core, Addr pc,
                        DemandCallback done, Tick now)
{
    (void)is_write;
    (void)pc;
    const uint64_t page = paddr >> kLargeBlockBits;
    if (counts_[page] < ~uint32_t(0))
        ++counts_[page];

    const Location loc = locate(paddr);
    recordService(loc.in_nm);

    if (now < os_busy_until_) {
        // The OS is mid-migration: PTE updates and TLB shootdowns stall
        // demand translation until the epoch work finishes.
        dram::DramSystem *dev = &deviceFor(loc);
        env_.events->schedule(
            os_busy_until_,
            [this, dev, loc, core, done = std::move(done)](Tick t) mutable {
                issueRead(*dev, loc.device_addr,
                          static_cast<uint32_t>(kSubblockSize),
                          dram::TrafficClass::Demand, core,
                          std::move(done), t);
            });
        return;
    }

    issueRead(deviceFor(loc), loc.device_addr,
              static_cast<uint32_t>(kSubblockSize),
              dram::TrafficClass::Demand, core, std::move(done), now);
}

void
HmaPolicy::swapPages(uint64_t page_a, uint64_t page_b, Tick now)
{
    const uint32_t fa = frame_of_[page_a];
    const uint32_t fb = frame_of_[page_b];

    // 2KB in each direction.
    for (uint32_t s = 0; s < kSubblocksPerBlock; ++s) {
        const Addr off = static_cast<Addr>(s) * kSubblockSize;
        const Location la = identityLocation(
            static_cast<Addr>(fa) * kLargeBlockSize + off);
        const Location lb = identityLocation(
            static_cast<Addr>(fb) * kLargeBlockSize + off);
        moveSubblock(la, lb, 0, now);
        moveSubblock(lb, la, 0, now);
    }

    frame_of_[page_a] = fb;
    frame_of_[page_b] = fa;
    page_at_[fa] = static_cast<uint32_t>(page_b);
    page_at_[fb] = static_cast<uint32_t>(page_a);
}

void
HmaPolicy::runEpoch(Tick now)
{
    ++epochs_;

    // Hot FM-resident pages, hottest first.
    std::vector<uint32_t> hot;
    for (uint64_t p = 0; p < total_pages_; ++p) {
        if (counts_[p] >= params_.hot_threshold &&
            frame_of_[p] >= nm_pages_) {
            hot.push_back(static_cast<uint32_t>(p));
        }
    }
    std::sort(hot.begin(), hot.end(),
              [this](uint32_t a, uint32_t b) {
                  return counts_[a] > counts_[b];
              });

    // NM-resident pages, coldest first (eviction candidates).
    std::vector<uint32_t> nm_resident;
    nm_resident.reserve(nm_pages_);
    for (uint64_t f = 0; f < nm_pages_; ++f)
        nm_resident.push_back(page_at_[f]);
    std::sort(nm_resident.begin(), nm_resident.end(),
              [this](uint32_t a, uint32_t b) {
                  return counts_[a] < counts_[b];
              });

    uint32_t migrated = 0;
    size_t victim_idx = 0;
    for (uint32_t hot_page : hot) {
        if (migrated >= params_.max_migrations_per_epoch)
            break;
        if (victim_idx >= nm_resident.size())
            break;
        const uint32_t victim = nm_resident[victim_idx];
        // Only evict strictly colder pages.
        if (counts_[victim] >= counts_[hot_page])
            break;
        swapPages(hot_page, victim, now);
        ++victim_idx;
        ++migrated;
    }

    pages_migrated_ += migrated;
    if (migrated > 0) {
        os_busy_until_ = now + params_.os_base_overhead +
            static_cast<Tick>(migrated) * params_.os_per_page_overhead;
    }

    // Epoch counters restart.
    std::fill(counts_.begin(), counts_.end(), 0);
}

void
HmaPolicy::tick(Tick now)
{
    if (now >= next_epoch_) {
        runEpoch(now);
        next_epoch_ += params_.epoch_ticks;
    }
}

} // namespace policy
} // namespace silc
