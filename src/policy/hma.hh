/**
 * @file
 * HMA — the epoch-based software-managed scheme (Meswani et al., HPCA
 * 2015) the paper compares against: the OS counts page accesses, marks
 * pages above a threshold, and at each epoch boundary bulk-swaps hot FM
 * pages with cold NM pages (fully associative placement).  Migration
 * requires PTE updates and TLB shootdowns, modelled as a window during
 * which demand accesses are stalled, on top of the 2KB-per-page
 * migration traffic.
 *
 * The defining weakness: reaction latency.  A page that becomes hot
 * mid-epoch is serviced from FM until the next boundary.
 */

#ifndef SILC_POLICY_HMA_HH
#define SILC_POLICY_HMA_HH

#include <cstdint>
#include <vector>

#include "policy/policy.hh"

namespace silc {
namespace policy {

/** HMA configuration. */
struct HmaParams
{
    /** Ticks between epoch boundaries (scaled-down default). */
    Tick epoch_ticks = 2'000'000;
    /** Access count that marks a page hot. */
    uint32_t hot_threshold = 50;
    /** Maximum pages migrated per epoch boundary. */
    uint32_t max_migrations_per_epoch = 2048;
    /** Fixed OS overhead per epoch that performs migrations (ticks). */
    Tick os_base_overhead = 50'000;
    /**
     * Additional OS overhead per migrated page (PTE update + multi-core
     * TLB shootdown; ~0.6us at 3.2GHz — the "extremely high" software
     * costs the paper attributes to epoch schemes).
     */
    Tick os_per_page_overhead = 1'200;
};

/** Epoch-based OS page placement. */
class HmaPolicy : public FlatMemoryPolicy
{
  public:
    HmaPolicy(PolicyEnv env, HmaParams params);

    const char *name() const override { return "hma"; }
    uint64_t flatSpaceBytes() const override;
    void demandAccess(Addr paddr, bool is_write, CoreId core, Addr pc,
                      DemandCallback done, Tick now) override;
    Location locate(Addr paddr) const override;
    void tick(Tick now) override;
    Tick nextWakeTick() const override { return next_epoch_; }

    uint64_t epochs() const { return epochs_; }
    uint64_t pagesMigrated() const { return pages_migrated_; }

  private:
    void runEpoch(Tick now);

    /** Swap the residence of two flat pages (migration traffic). */
    void swapPages(uint64_t page_a, uint64_t page_b, Tick now);

    HmaParams params_;
    uint64_t total_pages_;
    uint64_t nm_pages_;

    /** page -> frame (flat slot) and its inverse. */
    std::vector<uint32_t> frame_of_;
    std::vector<uint32_t> page_at_;
    std::vector<uint32_t> counts_;

    Tick next_epoch_;
    Tick os_busy_until_ = 0;
    uint64_t epochs_ = 0;
    uint64_t pages_migrated_ = 0;
};

} // namespace policy
} // namespace silc

#endif // SILC_POLICY_HMA_HH
