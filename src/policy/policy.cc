#include "policy/policy.hh"

#include "common/logging.hh"
#include "common/serialize.hh"
#include "telemetry/sampler.hh"

namespace silc {
namespace policy {

FlatMemoryPolicy::FlatMemoryPolicy(PolicyEnv env)
    : env_(env)
{
    silc_assert(env_.fm != nullptr);
    silc_assert(env_.events != nullptr);
    // env_.nm may be null only for the no-NM baseline.
}

Location
FlatMemoryPolicy::identityLocation(Addr paddr) const
{
    const uint64_t nm_bytes = env_.nm ? env_.nm->capacity() : 0;
    Location loc;
    if (paddr < nm_bytes) {
        loc.in_nm = true;
        loc.device_addr = paddr;
    } else {
        loc.in_nm = false;
        loc.device_addr = paddr - nm_bytes;
    }
    return loc;
}

dram::DramSystem &
FlatMemoryPolicy::deviceFor(const Location &loc) const
{
    if (loc.in_nm) {
        silc_assert(env_.nm != nullptr);
        return *env_.nm;
    }
    return *env_.fm;
}

void
FlatMemoryPolicy::issueRead(dram::DramSystem &dev, Addr dev_addr,
                            uint32_t bytes, dram::TrafficClass cls,
                            CoreId core, DemandCallback cb, Tick now,
                            int force_channel)
{
    // Functional (warming) mode: the data is "available" immediately and
    // no timing state is touched.  Completing synchronously keeps
    // dependent chains (migration read->write, serialized metadata
    // fetches) running so the policy state machines behave identically.
    if (functional_mode_) {
        if (cb)
            cb(now);
        return;
    }
    dram::DramRequest req;
    req.addr = dev_addr;
    req.is_write = false;
    req.bytes = bytes;
    req.traffic = cls;
    req.core = core;
    req.force_channel = force_channel;
    req.on_complete = std::move(cb);
    dev.issue(std::move(req), now);
}

void
FlatMemoryPolicy::issueWrite(dram::DramSystem &dev, Addr dev_addr,
                             uint32_t bytes, dram::TrafficClass cls,
                             CoreId core, Tick now, int force_channel)
{
    if (functional_mode_)
        return;
    dram::DramRequest req;
    req.addr = dev_addr;
    req.is_write = true;
    req.bytes = bytes;
    req.traffic = cls;
    req.core = core;
    req.force_channel = force_channel;
    dev.issue(std::move(req), now);
}

void
FlatMemoryPolicy::moveSubblock(const Location &src, const Location &dst,
                               CoreId core, Tick now)
{
    ++migration_ops_;
    dram::DramSystem &src_dev = deviceFor(src);
    dram::DramSystem *dst_dev = &deviceFor(dst);
    const Addr dst_addr = dst.device_addr;
    issueRead(src_dev, src.device_addr,
              static_cast<uint32_t>(kSubblockSize),
              dram::TrafficClass::Migration, core,
              [this, dst_dev, dst_addr, core](Tick t) {
                  issueWrite(*dst_dev, dst_addr,
                             static_cast<uint32_t>(kSubblockSize),
                             dram::TrafficClass::Migration, core, t);
              },
              now);
}

void
FlatMemoryPolicy::registerTelemetry(telemetry::Sampler &sampler) const
{
    sampler.addCounter("policy.nmServiced",
                       [this] { return double(nmServiced()); });
    sampler.addCounter("policy.fmServiced",
                       [this] { return double(fmServiced()); });
    sampler.addCounter("policy.migrationOps",
                       [this] { return double(migrationOps()); });
    // Equation 1, per epoch rather than end-of-run: the NM-serviced
    // share of the demand misses that arrived within the epoch.
    sampler.addRatio("policy.hitRate",
                     [this] { return double(nmServiced()); },
                     [this] { return double(demandRequests()); });
}

void
FlatMemoryPolicy::writeback(Addr paddr, CoreId core, Tick now)
{
    const Location loc = locate(subblockAddr(paddr));
    issueWrite(deviceFor(loc), loc.device_addr,
               static_cast<uint32_t>(kSubblockSize),
               dram::TrafficClass::Writeback, core, now);
}

void
FlatMemoryPolicy::snapshotState(BlobWriter &w) const
{
    w.putU64(nm_serviced_);
    w.putU64(fm_serviced_);
    w.putU64(migration_ops_);
}

void
FlatMemoryPolicy::restoreState(BlobReader &r)
{
    nm_serviced_ = r.getU64();
    fm_serviced_ = r.getU64();
    migration_ops_ = r.getU64();
}

} // namespace policy
} // namespace silc
