/**
 * @file
 * FlatMemoryPolicy: the interface every NM/FM organization scheme
 * implements (Random static, HMA, CAMEO, CAMEO+P, PoM, SILC-FM, plus the
 * no-NM baseline).
 *
 * A policy owns the flat OS-visible physical address space (NM occupies
 * the low addresses, FM the high ones, per Section III of the paper) and
 * decides, for every LLC miss, where the data currently lives, what
 * migration traffic to generate, and when the demand completes.
 *
 * Policies are functional-first: remap state updates synchronously while
 * every byte moved — demand, migration, metadata — is issued into the
 * DRAM systems so queues, banks, and buses see realistic occupancy.
 */

#ifndef SILC_POLICY_POLICY_HH
#define SILC_POLICY_POLICY_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "common/event_queue.hh"
#include "common/types.hh"
#include "dram/dram_system.hh"

namespace silc {

class BlobWriter;
class BlobReader;

namespace telemetry {
class Sampler;
} // namespace telemetry

namespace policy {

/** Completion callback for a demand access. */
using DemandCallback = std::function<void(Tick)>;

/** Where a flat physical 64B block currently resides. */
struct Location
{
    bool in_nm = false;
    /** Device-local byte address. */
    Addr device_addr = 0;

    bool operator==(const Location &) const = default;
};

/** Devices and services a policy operates on. */
struct PolicyEnv
{
    dram::DramSystem *nm = nullptr;
    dram::DramSystem *fm = nullptr;
    EventQueue *events = nullptr;
};

/** Base class of all flat-memory organization schemes. */
class FlatMemoryPolicy
{
  public:
    explicit FlatMemoryPolicy(PolicyEnv env);
    virtual ~FlatMemoryPolicy() = default;

    FlatMemoryPolicy(const FlatMemoryPolicy &) = delete;
    FlatMemoryPolicy &operator=(const FlatMemoryPolicy &) = delete;

    /** Short scheme name ("silcfm", "cameo", ...). */
    virtual const char *name() const = 0;

    /** Bytes of OS-visible flat physical address space. */
    virtual uint64_t flatSpaceBytes() const = 0;

    /**
     * Service an LLC demand miss for the 64B block at @p paddr.
     *
     * @param paddr    flat physical address (64B aligned)
     * @param is_write the miss was triggered by a store (fetch-for-write)
     * @param core     requesting core
     * @param pc       program counter of the triggering instruction
     * @param done     fired when the critical data is available
     * @param now      current tick
     */
    virtual void demandAccess(Addr paddr, bool is_write, CoreId core,
                              Addr pc, DemandCallback done, Tick now) = 0;

    /**
     * Accept an LLC dirty eviction of the 64B block at @p paddr.
     * Default: write to the block's current location.
     */
    virtual void writeback(Addr paddr, CoreId core, Tick now);

    /** Periodic hook (epoch schemes, counter decay); called every tick. */
    virtual void tick(Tick now) { (void)now; }

    /**
     * Earliest tick at which tick() does anything (kTickNever when it
     * never does).  Lets the main loop fast-forward over idle stretches
     * without missing an epoch boundary.
     */
    virtual Tick nextWakeTick() const { return kTickNever; }

    /**
     * Current residence of the 64B block at @p paddr.  Used for
     * writebacks and, in tests, to assert the mapping stays bijective.
     */
    virtual Location locate(Addr paddr) const = 0;

    /**
     * Register per-epoch telemetry probes over this policy's counters.
     * The base registers the service counters and the Equation 1 hit
     * rate; schemes override (and chain up) to add their own series.
     * The policy must outlive @p sampler.
     */
    virtual void registerTelemetry(telemetry::Sampler &sampler) const;

    // ---- Access-rate statistics (paper Equation 1). ----

    /** Demand requests serviced from NM. */
    uint64_t nmServiced() const { return nm_serviced_; }
    /** Demand requests serviced from FM. */
    uint64_t fmServiced() const { return fm_serviced_; }
    /** Total demand requests (LLC misses seen). */
    uint64_t demandRequests() const
    {
        return nm_serviced_ + fm_serviced_;
    }

    /** AccessRate = NM-serviced / LLC misses (Equation 1). */
    double
    accessRate() const
    {
        const uint64_t total = demandRequests();
        return total == 0
            ? 0.0
            : static_cast<double>(nm_serviced_) / total;
    }

    uint64_t migrationOps() const { return migration_ops_; }

    // ---- Functional (warming) mode and checkpointing. ----

    /**
     * In functional mode the policy's remap/metadata state machines run
     * unchanged, but nothing is issued into the DRAM devices: reads
     * complete synchronously at `now` and writes vanish.  The sampling
     * subsystem uses this to fast-forward between measurement windows
     * while keeping NM contents, locks, and predictors warm.
     */
    void setFunctionalMode(bool on) { functional_mode_ = on; }
    bool functionalMode() const { return functional_mode_; }

    /**
     * Whether this policy's state round-trips through
     * snapshotState()/restoreState() (epoch schemes whose behavior is
     * coupled to detailed-mode tick counts return false and are run in
     * full when sampling is requested).
     */
    virtual bool supportsSampling() const { return false; }

    /**
     * Serialize policy state for checkpointing.  The base captures the
     * service counters; overrides chain up then append their own state.
     */
    virtual void snapshotState(BlobWriter &w) const;
    virtual void restoreState(BlobReader &r);

  protected:
    /** Record where the critical data of a demand access came from. */
    void
    recordService(bool from_nm)
    {
        if (from_nm)
            ++nm_serviced_;
        else
            ++fm_serviced_;
    }

    /** Issue a read into a device. @p cb may be empty. */
    void issueRead(dram::DramSystem &dev, Addr dev_addr, uint32_t bytes,
                   dram::TrafficClass cls, CoreId core,
                   DemandCallback cb, Tick now, int force_channel = -1);

    /** Issue a write into a device (fire-and-forget). */
    void issueWrite(dram::DramSystem &dev, Addr dev_addr, uint32_t bytes,
                    dram::TrafficClass cls, CoreId core, Tick now,
                    int force_channel = -1);

    /**
     * Move one 64B subblock: read from @p src, then (on completion)
     * write to @p dst.  Counts as one migration op.
     */
    void moveSubblock(const Location &src, const Location &dst,
                      CoreId core, Tick now);

    /** Device + address for a flat physical address (identity layout:
     *  NM = low addresses, FM = high). */
    Location identityLocation(Addr paddr) const;

    dram::DramSystem &deviceFor(const Location &loc) const;

    PolicyEnv env_;
    uint64_t nm_serviced_ = 0;
    uint64_t fm_serviced_ = 0;
    uint64_t migration_ops_ = 0;
    bool functional_mode_ = false;
};

/**
 * Counts down @p n completions, then fires.  Helper for transactions
 * whose progress depends on several DRAM responses.
 */
class JoinBarrier : public std::enable_shared_from_this<JoinBarrier>
{
  public:
    static std::shared_ptr<JoinBarrier>
    create(uint32_t n, DemandCallback done)
    {
        return std::shared_ptr<JoinBarrier>(
            new JoinBarrier(n, std::move(done)));
    }

    /** A completion callback that decrements the barrier. */
    DemandCallback
    arm()
    {
        auto self = shared_from_this();
        return [self](Tick t) { self->signal(t); };
    }

    void
    signal(Tick t)
    {
        latest_ = std::max(latest_, t);
        if (--remaining_ == 0 && done_)
            done_(latest_);
    }

  private:
    JoinBarrier(uint32_t n, DemandCallback done)
        : remaining_(n), done_(std::move(done))
    {
    }

    uint32_t remaining_;
    Tick latest_ = 0;
    DemandCallback done_;
};

} // namespace policy
} // namespace silc

#endif // SILC_POLICY_POLICY_HH
