#include "policy/pom.hh"

#include "common/logging.hh"
#include "common/serialize.hh"

namespace silc {
namespace policy {

PomPolicy::PomPolicy(PolicyEnv env, PomParams params)
    : FlatMemoryPolicy(env), params_(params)
{
    silc_assert(env_.nm != nullptr);
    const uint64_t nm_cap = env_.nm->capacity();
    const uint64_t fm_cap = env_.fm->capacity();
    if (fm_cap % nm_cap != 0)
        fatal("pom: FM capacity must be a multiple of NM capacity");

    nm_pages_ = nm_cap / kLargeBlockSize;
    members_ = static_cast<uint32_t>(fm_cap / nm_cap) + 1;
    resident_.assign(nm_pages_, 0);
    counters_.assign(nm_pages_ * members_, 0);
}

uint64_t
PomPolicy::flatSpaceBytes() const
{
    return env_.nm->capacity() + env_.fm->capacity();
}

Addr
PomPolicy::fmHome(uint64_t g, uint32_t m) const
{
    silc_assert(m >= 1);
    return (g + static_cast<uint64_t>(m - 1) * nm_pages_) *
        kLargeBlockSize;
}

uint8_t &
PomPolicy::counter(uint64_t g, uint32_t m)
{
    return counters_[g * members_ + m];
}

Location
PomPolicy::locate(Addr paddr) const
{
    silc_assert(paddr < flatSpaceBytes());
    const Addr sub = subblockAddr(paddr);
    const uint64_t page = sub >> kLargeBlockBits;
    const Addr offset = sub & (kLargeBlockSize - 1);
    const uint64_t g = groupOf(page);
    const uint32_t m = memberOf(page);
    const uint8_t r = resident_[g];

    Location loc;
    if (m == r) {
        // This member holds the NM frame of its group.
        loc.in_nm = true;
        loc.device_addr = g * kLargeBlockSize + offset;
    } else if (m == 0) {
        // The NM-native page was displaced to the resident's FM home.
        loc.in_nm = false;
        loc.device_addr = fmHome(g, r) + offset;
    } else {
        loc.in_nm = false;
        loc.device_addr = fmHome(g, m) + offset;
    }
    return loc;
}

void
PomPolicy::swapFrame(uint64_t g, uint32_t m, CoreId core, Tick now)
{
    // Exchange the 2KB NM frame of group g with member m's FM home:
    // 32 subblocks in each direction.
    const Addr nm_base = g * kLargeBlockSize;
    const Addr fm_base = fmHome(g, m);
    for (uint32_t s = 0; s < kSubblocksPerBlock; ++s) {
        const Addr off = static_cast<Addr>(s) * kSubblockSize;
        moveSubblock(Location{true, nm_base + off},
                     Location{false, fm_base + off}, core, now);
        moveSubblock(Location{false, fm_base + off},
                     Location{true, nm_base + off}, core, now);
    }
}

void
PomPolicy::migrate(uint64_t g, uint32_t m, CoreId core, Tick now)
{
    const uint8_t r = resident_[g];
    silc_assert(m != r);

    if (r != 0) {
        // Restore the current resident to its FM home first.
        swapFrame(g, r, core, now);
        ++restores_;
    }
    if (m != 0)
        swapFrame(g, m, core, now);
    resident_[g] = static_cast<uint8_t>(m);
    ++migrations_;

    // Reset the group's competing counters.
    for (uint32_t i = 0; i < members_; ++i)
        counter(g, i) = 0;
}

void
PomPolicy::decayCounters()
{
    for (auto &c : counters_)
        c >>= 1;
}

void
PomPolicy::demandAccess(Addr paddr, bool is_write, CoreId core, Addr pc,
                        DemandCallback done, Tick now)
{
    (void)is_write;
    (void)pc;
    const uint64_t page = paddr >> kLargeBlockBits;
    const uint64_t g = groupOf(page);
    const uint32_t m = memberOf(page);

    const Location loc = locate(paddr);
    recordService(loc.in_nm);
    issueRead(deviceFor(loc), loc.device_addr,
              static_cast<uint32_t>(kSubblockSize),
              dram::TrafficClass::Demand, core, std::move(done), now);

    if (m != resident_[g]) {
        uint8_t &ctr = counter(g, m);
        if (ctr < 255)
            ++ctr;
        if (ctr >= params_.migration_threshold)
            migrate(g, m, core, now);
    }

    if (++accesses_ % params_.decay_interval == 0)
        decayCounters();
}

void
PomPolicy::snapshotState(BlobWriter &w) const
{
    FlatMemoryPolicy::snapshotState(w);
    w.putU64(resident_.size());
    for (uint8_t v : resident_)
        w.putU8(v);
    w.putU64(counters_.size());
    for (uint8_t v : counters_)
        w.putU8(v);
    w.putU64(accesses_);
    w.putU64(migrations_);
    w.putU64(restores_);
}

void
PomPolicy::restoreState(BlobReader &r)
{
    FlatMemoryPolicy::restoreState(r);
    if (r.getU64() != resident_.size())
        fatal("pom restore: residency table size mismatch");
    for (uint8_t &v : resident_)
        v = r.getU8();
    if (r.getU64() != counters_.size())
        fatal("pom restore: counter table size mismatch");
    for (uint8_t &v : counters_)
        v = r.getU8();
    accesses_ = r.getU64();
    migrations_ = r.getU64();
    restores_ = r.getU64();
}

} // namespace policy
} // namespace silc
