/**
 * @file
 * PoM — "Part of Memory" (Sim et al., ISCA 2014) as evaluated by the
 * SILC-FM paper: 2KB large blocks migrate between NM and FM within
 * direct-mapped congruence groups once a per-block competing counter
 * crosses a threshold.  Only one member of a group can be NM-resident at
 * a time; migrating a new member first restores the old one.
 *
 * The defining cost: every migration moves the entire 2KB block (all 32
 * subblocks in both directions), which wastes bandwidth when spatial
 * locality is low — exactly what SILC-FM's subblocking avoids.
 */

#ifndef SILC_POLICY_POM_HH
#define SILC_POLICY_POM_HH

#include <cstdint>
#include <vector>

#include "policy/policy.hh"

namespace silc {
namespace policy {

/** PoM configuration. */
struct PomParams
{
    /** Accesses a non-resident block must accumulate before migrating. */
    uint32_t migration_threshold = 6;
    /** Demand accesses between counter halvings (competing counters). */
    uint64_t decay_interval = 200'000;
};

/** PoM policy. */
class PomPolicy : public FlatMemoryPolicy
{
  public:
    PomPolicy(PolicyEnv env, PomParams params);

    const char *name() const override { return "pom"; }
    uint64_t flatSpaceBytes() const override;
    void demandAccess(Addr paddr, bool is_write, CoreId core, Addr pc,
                      DemandCallback done, Tick now) override;
    Location locate(Addr paddr) const override;

    bool supportsSampling() const override { return true; }
    void snapshotState(BlobWriter &w) const override;
    void restoreState(BlobReader &r) override;

    uint64_t migrations() const { return migrations_; }
    uint64_t restores() const { return restores_; }

  private:
    uint64_t groupOf(uint64_t page) const { return page % nm_pages_; }

    uint32_t
    memberOf(uint64_t page) const
    {
        return static_cast<uint32_t>(page / nm_pages_);
    }

    /** FM device byte address of member @p m (>= 1) of group @p g. */
    Addr fmHome(uint64_t g, uint32_t m) const;

    uint8_t &counter(uint64_t g, uint32_t m);

    /** Swap the 2KB NM frame of group @p g with FM home of member @p m. */
    void swapFrame(uint64_t g, uint32_t m, CoreId core, Tick now);

    /** Migrate member @p m into NM (restoring the present one first). */
    void migrate(uint64_t g, uint32_t m, CoreId core, Tick now);

    void decayCounters();

    PomParams params_;
    uint64_t nm_pages_;
    uint32_t members_;   ///< K + 1
    /** Which member occupies the NM frame of each group (0 = native). */
    std::vector<uint8_t> resident_;
    std::vector<uint8_t> counters_;
    uint64_t accesses_ = 0;
    uint64_t migrations_ = 0;
    uint64_t restores_ = 0;
};

} // namespace policy
} // namespace silc

#endif // SILC_POLICY_POM_HH
