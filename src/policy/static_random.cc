#include "policy/static_random.hh"

#include "common/logging.hh"

namespace silc {
namespace policy {

// ---- FmOnlyPolicy ------------------------------------------------------

FmOnlyPolicy::FmOnlyPolicy(PolicyEnv env)
    : FlatMemoryPolicy(env)
{
}

uint64_t
FmOnlyPolicy::flatSpaceBytes() const
{
    return env_.fm->capacity();
}

Location
FmOnlyPolicy::locate(Addr paddr) const
{
    silc_assert(paddr < env_.fm->capacity());
    return Location{false, subblockAddr(paddr)};
}

void
FmOnlyPolicy::demandAccess(Addr paddr, bool is_write, CoreId core,
                           Addr pc, DemandCallback done, Tick now)
{
    (void)is_write;
    (void)pc;
    recordService(false);
    issueRead(*env_.fm, subblockAddr(paddr),
              static_cast<uint32_t>(kSubblockSize),
              dram::TrafficClass::Demand, core, std::move(done), now);
}

// ---- StaticRandomPolicy ------------------------------------------------

StaticRandomPolicy::StaticRandomPolicy(PolicyEnv env)
    : FlatMemoryPolicy(env)
{
    silc_assert(env_.nm != nullptr);
}

uint64_t
StaticRandomPolicy::flatSpaceBytes() const
{
    return env_.nm->capacity() + env_.fm->capacity();
}

Location
StaticRandomPolicy::locate(Addr paddr) const
{
    silc_assert(paddr < flatSpaceBytes());
    return identityLocation(subblockAddr(paddr));
}

void
StaticRandomPolicy::demandAccess(Addr paddr, bool is_write, CoreId core,
                                 Addr pc, DemandCallback done, Tick now)
{
    (void)is_write;
    (void)pc;
    const Location loc = locate(paddr);
    recordService(loc.in_nm);
    issueRead(deviceFor(loc), loc.device_addr,
              static_cast<uint32_t>(kSubblockSize),
              dram::TrafficClass::Demand, core, std::move(done), now);
}

} // namespace policy
} // namespace silc
