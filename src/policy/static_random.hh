/**
 * @file
 * The two static (no-migration) schemes:
 *
 *  - FmOnlyPolicy: the paper's speedup baseline — a system without any
 *    die-stacked NM; the flat space is FM alone.
 *  - StaticRandomPolicy: the paper's "rand" comparison — NM + FM exposed
 *    as one flat space, pages placed randomly at allocation time (by the
 *    translation layer), never migrated.
 */

#ifndef SILC_POLICY_STATIC_RANDOM_HH
#define SILC_POLICY_STATIC_RANDOM_HH

#include "policy/policy.hh"

namespace silc {
namespace policy {

/** No-NM baseline: every access is serviced by FM. */
class FmOnlyPolicy : public FlatMemoryPolicy
{
  public:
    explicit FmOnlyPolicy(PolicyEnv env);

    const char *name() const override { return "fmonly"; }
    uint64_t flatSpaceBytes() const override;
    void demandAccess(Addr paddr, bool is_write, CoreId core, Addr pc,
                      DemandCallback done, Tick now) override;
    Location locate(Addr paddr) const override;

    /** Stateless beyond the base counters. */
    bool supportsSampling() const override { return true; }
};

/**
 * Random static placement over NM + FM.  The address space is the
 * identity layout (NM low, FM high); randomness comes from the
 * first-touch allocator picking frames uniformly over the whole space,
 * so an NM-capacity fraction of pages land in NM and stay there.
 */
class StaticRandomPolicy : public FlatMemoryPolicy
{
  public:
    explicit StaticRandomPolicy(PolicyEnv env);

    const char *name() const override { return "rand"; }
    uint64_t flatSpaceBytes() const override;
    void demandAccess(Addr paddr, bool is_write, CoreId core, Addr pc,
                      DemandCallback done, Tick now) override;
    Location locate(Addr paddr) const override;

    /** Stateless beyond the base counters. */
    bool supportsSampling() const override { return true; }
};

} // namespace policy
} // namespace silc

#endif // SILC_POLICY_STATIC_RANDOM_HH
