#include "sample/checkpoint.hh"

#include "common/serialize.hh"
#include "sim/system.hh"

namespace silc {
namespace sample {

Checkpoint
capture(const sim::System &system, uint64_t warm_instructions)
{
    Checkpoint c;
    c.warm_instructions = warm_instructions;
    BlobWriter w;
    system.snapshotState(w);
    c.blob = w.data();
    return c;
}

void
restore(sim::System &system, const Checkpoint &ckpt)
{
    BlobReader r(ckpt.blob);
    system.restoreState(r);
}

} // namespace sample
} // namespace silc
