/**
 * @file
 * Checkpoint capture/restore for the statistical sampling subsystem
 * (src/sample/sampling.hh).
 *
 * A checkpoint is the architectural state of a sim::System serialized to
 * an in-memory blob: translation mappings, cache contents, policy
 * metadata (SILC-FM remap/bit-vector/lock state, predictor and balancer
 * state, counters) and per-core trace positions.  Timing state — MSHRs,
 * DRAM queues, in-flight events — is deliberately excluded: checkpoints
 * are only taken at quiesced functional-warming pause points where all
 * of it is empty (System::snapshotState() asserts this), and each replay
 * re-warms the timing structures during its detailed-warmup prefix.
 *
 * Because replays construct their System from the identical
 * SystemConfig, constructor-derived state (frame shuffle order, workload
 * profile tables, RNG-free masks) is reproduced exactly and never
 * serialized; only mutable runtime state goes into the blob.
 */

#ifndef SILC_SAMPLE_CHECKPOINT_HH
#define SILC_SAMPLE_CHECKPOINT_HH

#include <cstdint>
#include <vector>

namespace silc {

namespace sim {
class System;
} // namespace sim

namespace sample {

/** One captured execution point of a warming run. */
struct Checkpoint
{
    /** Per-core retired-instruction count at capture time. */
    uint64_t warm_instructions = 0;
    /** Serialized architectural state (common/serialize.hh format). */
    std::vector<uint8_t> blob;
};

/**
 * Serialize @p system into a checkpoint.  The system must be paused at a
 * functional-warming instruction boundary (System::runToBudget()
 * returned true in functional mode): empty MSHRs, idle DRAM devices.
 */
Checkpoint capture(const sim::System &system, uint64_t warm_instructions);

/**
 * Restore @p ckpt into @p system, which must be freshly constructed from
 * the same SystemConfig as the warming run (fatal on policy/core-count
 * mismatch, truncation, or trailing bytes).
 */
void restore(sim::System &system, const Checkpoint &ckpt);

} // namespace sample
} // namespace silc

#endif // SILC_SAMPLE_CHECKPOINT_HH
