#include "sample/sampling.hh"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <future>
#include <memory>

#include "common/env.hh"
#include "common/logging.hh"
#include "common/stats.hh"
#include "core/silc_fm.hh"
#include "dram/dram_system.hh"
#include "sim/parallel.hh"

namespace silc {
namespace sample {

namespace {

/** Strict non-negative double knob (CI targets are fractions). */
double
envNonNegativeDouble(const char *name, double fallback)
{
    const char *raw = std::getenv(name);
    if (raw == nullptr)
        return fallback;
    char *end = nullptr;
    errno = 0;
    const double v = std::strtod(raw, &end);
    if (end == raw || *end != '\0' || errno == ERANGE || !(v >= 0.0)) {
        fatal("%s: expected a non-negative number, got \"%s\"", name,
              raw);
    }
    return v;
}

/** The metrics a window sample exposes to aggregation, ipc first. */
struct MetricDef
{
    const char *name;
    double WindowSample::*field;
};

constexpr MetricDef kMetricDefs[] = {
    {"ipc", &WindowSample::ipc},
    {"mpki", &WindowSample::mpki},
    {"avg_miss_latency", &WindowSample::avg_miss_latency},
    {"access_rate", &WindowSample::access_rate},
    {"swaps_per_kilo", &WindowSample::swaps_per_kilo},
    {"bypass_per_kilo", &WindowSample::bypass_per_kilo},
    {"fm_read_p50", &WindowSample::fm_read_p50},
    {"fm_read_p95", &WindowSample::fm_read_p95},
    {"nm_read_p95", &WindowSample::nm_read_p95},
    {"nm_demand_fraction", &WindowSample::nm_demand_fraction},
};

MetricEstimate
estimateOf(const std::vector<WindowSample> &samples, const MetricDef &def)
{
    MetricEstimate e;
    e.name = def.name;
    e.n = static_cast<uint32_t>(samples.size());
    if (samples.empty())
        return e;

    double sum = 0.0;
    for (const auto &s : samples)
        sum += s.*def.field;
    e.mean = sum / static_cast<double>(samples.size());

    if (samples.size() < 2)
        return e;
    double ss = 0.0;
    for (const auto &s : samples) {
        const double d = s.*def.field - e.mean;
        ss += d * d;
    }
    const double n = static_cast<double>(samples.size());
    const double var = ss / (n - 1.0);
    e.ci_half = StatsAggregator::tCritical95(
                    static_cast<uint32_t>(samples.size() - 1)) *
        std::sqrt(var / n);
    return e;
}

} // namespace

// ---- SamplingConfig ----------------------------------------------------

SamplingConfig
SamplingConfig::fromEnv()
{
    SamplingConfig c;
    c.period = envPositiveCount("SILC_SAMPLE_PERIOD", c.period);
    c.window = envPositiveCount("SILC_SAMPLE_WINDOW", c.window);
    c.warmup = envPositiveCount("SILC_SAMPLE_WARMUP", c.warmup);
    c.min_windows = static_cast<uint32_t>(envPositiveCount(
        "SILC_SAMPLE_MIN_WINDOWS", c.min_windows, 1'000'000));
    c.ci_target =
        envNonNegativeDouble("SILC_SAMPLE_CI_TARGET", c.ci_target);
    return c;
}

void
SamplingConfig::validate() const
{
    if (period == 0 || window == 0 || warmup == 0)
        fatal("sampling: period, window and warmup must be positive");
    if (warmup + window > period) {
        fatal("sampling: warmup (%s) + window (%s) must fit within the "
              "period (%s) so measurement windows cannot overlap",
              sim::u64str(warmup).c_str(), sim::u64str(window).c_str(),
              sim::u64str(period).c_str());
    }
    if (min_windows == 0)
        fatal("sampling: min_windows must be positive");
    if (ci_target < 0.0)
        fatal("sampling: ci_target must be non-negative");
}

// ---- SamplingReport ----------------------------------------------------

const MetricEstimate *
SamplingReport::find(const std::string &name) const
{
    for (const auto &m : metrics) {
        if (m.name == name)
            return &m;
    }
    return nullptr;
}

// ---- StatsAggregator ---------------------------------------------------

double
StatsAggregator::tCritical95(uint32_t df)
{
    // Two-sided 95% Student's t critical values; beyond df=30 the
    // normal approximation is within 0.3%.
    static const double kTable[] = {
        0.0,    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365,
        2.306,  2.262,  2.228, 2.201, 2.179, 2.160, 2.145, 2.131,
        2.120,  2.110,  2.101, 2.093, 2.086, 2.080, 2.074, 2.069,
        2.064,  2.060,  2.056, 2.052, 2.048, 2.045, 2.042,
    };
    if (df == 0)
        return 0.0;
    if (df <= 30)
        return kTable[df];
    return 1.96;
}

std::vector<MetricEstimate>
StatsAggregator::estimates() const
{
    std::vector<MetricEstimate> out;
    out.reserve(std::size(kMetricDefs));
    for (const auto &def : kMetricDefs)
        out.push_back(estimateOf(samples_, def));
    return out;
}

MetricEstimate
StatsAggregator::estimate(const std::string &name) const
{
    for (const auto &def : kMetricDefs) {
        if (name == def.name)
            return estimateOf(samples_, def);
    }
    fatal("StatsAggregator: unknown metric '%s'", name.c_str());
}

// ---- SamplingController ------------------------------------------------

SamplingController::SamplingController(sim::SystemConfig cfg,
                                       SamplingConfig scfg)
    : cfg_(std::move(cfg)), scfg_(scfg)
{
}

WindowSample
SamplingController::replayWindow(const Checkpoint &ckpt, uint64_t index)
{
    sim::SystemConfig rcfg = cfg_;
    rcfg.sim_threads = 1;          // replays are the parallel unit
    rcfg.telemetry.enabled = false;
    rcfg.check = false;            // the oracle already ran in warming
    // Core retire counters restart at zero after a restore (they are
    // not checkpointed — at a pause point the ROB is empty), so budgets
    // count instructions since the checkpoint.
    rcfg.instructions_per_core = scfg_.warmup;

    sim::System sys(rcfg);
    restore(sys, ckpt);

    // Detailed warmup: re-populates MSHR/DRAM/row-buffer timing state
    // from the checkpoint's architectural state; measurements discard it.
    if (!sys.runToBudget())
        fatal("sampling: detailed warmup hit the tick limit");

    const Tick t0 = sys.currentCycle();
    const sim::MemoryHierarchy &h = sys.hierarchy();
    const uint64_t miss0 = h.llcMisses();
    const double lat0 = h.missLatencySum();
    const uint64_t done0 = h.missesCompleted();
    policy::FlatMemoryPolicy &pol = sys.policyRef();
    const uint64_t nm0 = pol.nmServiced();
    const uint64_t fm0 = pol.fmServiced();
    const auto *silc = dynamic_cast<const core::SilcFmPolicy *>(&pol);
    const uint64_t swaps0 = silc ? silc->subblockSwaps() : 0;
    const uint64_t bypass0 = silc ? silc->bypassedAccesses() : 0;
    const stats::Distribution fm_hist0 = sys.fm().readDelayHistogram();
    const uint64_t fmdb0 = sys.fm().demandBytes();
    const dram::DramSystem *nm = sys.nm();
    std::unique_ptr<stats::Distribution> nm_hist0;
    const uint64_t nmdb0 = nm != nullptr ? nm->demandBytes() : 0;
    if (nm != nullptr) {
        nm_hist0 =
            std::make_unique<stats::Distribution>(nm->readDelayHistogram());
    }

    sys.setPerCoreBudget(scfg_.warmup + scfg_.window);
    if (!sys.runToBudget())
        fatal("sampling: measurement window hit the tick limit");
    const Tick t1 = sys.currentCycle();

    WindowSample s;
    s.index = index;
    s.instructions = scfg_.window * cfg_.cores;
    s.ticks = t1 > t0 ? t1 - t0 : 1;
    s.ipc = static_cast<double>(scfg_.window) /
        static_cast<double>(s.ticks);
    const uint64_t dmiss = h.llcMisses() - miss0;
    s.mpki = 1000.0 * static_cast<double>(dmiss) /
        static_cast<double>(s.instructions);
    const uint64_t ddone = h.missesCompleted() - done0;
    s.avg_miss_latency = ddone == 0
        ? 0.0
        : (h.missLatencySum() - lat0) / static_cast<double>(ddone);
    const uint64_t dnm = pol.nmServiced() - nm0;
    const uint64_t dfm = pol.fmServiced() - fm0;
    s.access_rate = dnm + dfm == 0
        ? 0.0
        : static_cast<double>(dnm) / static_cast<double>(dnm + dfm);
    if (silc != nullptr) {
        s.swaps_per_kilo =
            1000.0 * static_cast<double>(silc->subblockSwaps() - swaps0) /
            static_cast<double>(s.instructions);
        s.bypass_per_kilo = 1000.0 *
            static_cast<double>(silc->bypassedAccesses() - bypass0) /
            static_cast<double>(s.instructions);
    }
    const stats::Distribution fm_delta =
        sys.fm().readDelayHistogram().minus(fm_hist0);
    s.fm_read_p50 = fm_delta.percentile(0.50);
    s.fm_read_p95 = fm_delta.percentile(0.95);
    if (nm != nullptr) {
        const stats::Distribution nm_delta =
            nm->readDelayHistogram().minus(*nm_hist0);
        s.nm_read_p95 = nm_delta.percentile(0.95);
        s.nm_demand_bytes = nm->demandBytes() - nmdb0;
    }
    s.fm_demand_bytes = sys.fm().demandBytes() - fmdb0;
    const uint64_t db = s.nm_demand_bytes + s.fm_demand_bytes;
    s.nm_demand_fraction = db == 0
        ? 0.0
        : static_cast<double>(s.nm_demand_bytes) /
            static_cast<double>(db);
    return s;
}

sim::SimResult
SamplingController::run()
{
    scfg_.validate();

    // ---- Phase 1: sequential functional warming + checkpointing. ----
    sim::SystemConfig wcfg = cfg_;
    wcfg.sim_threads = 1;
    wcfg.telemetry.enabled = false;

    sim::System warm(wcfg);
    if (!warm.policyRef().supportsSampling()) {
        fatal("policy '%s' does not support checkpointed sampling",
              warm.policyRef().name());
    }
    warm.setFunctionalMode(true);

    const uint64_t total = cfg_.instructions_per_core;
    const uint64_t n_ckpt = std::max<uint64_t>(1, total / scfg_.period);

    std::vector<Checkpoint> ckpts;
    ckpts.reserve(n_ckpt);
    for (uint64_t k = 0; k < n_ckpt; ++k) {
        warm.setPerCoreBudget(k * scfg_.period);
        if (!warm.runToBudget())
            fatal("sampling: functional warming hit the tick limit");
        ckpts.push_back(capture(warm, k * scfg_.period));
    }
    // The stream past the last checkpoint feeds no replay window, so
    // executing it buys nothing measurable — skip it unless the
    // differential oracle is on (SILC_CHECK verifies the whole stream).
    // The budget is still raised to the nominal total so the base
    // result reports the workload size the estimates stand for;
    // footprint/occupancy diagnostics then cover the warmed prefix.
    uint64_t warmed = (n_ckpt - 1) * scfg_.period;
    warm.setPerCoreBudget(total);
    if (cfg_.check) {
        if (!warm.runToBudget())
            fatal("sampling: functional warming hit the tick limit");
        warmed = total;
    }
    sim::SimResult base = warm.collectResult(true);

    // ---- Phase 2: parallel detailed replay. ----
    StatsAggregator agg;
    bool early = false;
    {
        sim::ThreadPool pool(scfg_.threads);
        // Fixed-size batches keep early stopping deterministic across
        // pool widths: windows are collected in checkpoint order and
        // the CI test runs only at batch boundaries.
        constexpr size_t kBatch = 4;
        size_t next = 0;
        while (next < ckpts.size() && !early) {
            const size_t end = std::min(next + kBatch, ckpts.size());
            std::vector<std::future<WindowSample>> futs;
            futs.reserve(end - next);
            for (size_t i = next; i < end; ++i) {
                auto task =
                    std::make_shared<std::packaged_task<WindowSample()>>(
                        [this, &ckpts, i] {
                            return replayWindow(ckpts[i], i);
                        });
                futs.push_back(task->get_future());
                pool.submit([task] { (*task)(); });
            }
            for (auto &f : futs)
                agg.add(f.get());
            next = end;
            if (scfg_.ci_target > 0.0 &&
                agg.windows() >= scfg_.min_windows &&
                next < ckpts.size()) {
                const MetricEstimate e = agg.estimate("ipc");
                if (e.mean > 0.0 && e.ci_half / e.mean <= scfg_.ci_target)
                    early = true;
            }
        }
    }

    // ---- Phase 3: aggregate into a SimResult + report. ----
    auto report = std::make_shared<SamplingReport>();
    report->period = scfg_.period;
    report->window = scfg_.window;
    report->warmup = scfg_.warmup;
    report->checkpoints = static_cast<uint32_t>(ckpts.size());
    report->windows = static_cast<uint32_t>(agg.windows());
    report->early_stopped = early;
    report->warm_instructions = warmed;
    report->metrics = agg.estimates();

    sim::SimResult r = base;
    r.hit_tick_limit = false;
    const MetricEstimate *ipc = report->find("ipc");
    if (ipc != nullptr && ipc->mean > 0.0) {
        r.ipc = ipc->mean;
        r.ticks = static_cast<Tick>(
            static_cast<double>(r.instructions) /
            (static_cast<double>(r.cores) * r.ipc));
        if (r.ticks == 0)
            r.ticks = 1;
    }
    const MetricEstimate *mpki = report->find("mpki");
    if (mpki != nullptr) {
        r.mpki = mpki->mean;
        r.llc_misses = static_cast<uint64_t>(
            r.mpki * static_cast<double>(r.instructions) / 1000.0);
    }
    r.avg_miss_latency = report->find("avg_miss_latency")->mean;
    r.access_rate = report->find("access_rate")->mean;

    // Extrapolate demand-byte totals from the measured windows so
    // nmDemandFraction() (Figure 8) works on sampled results; other
    // traffic classes are not estimated and stay zero.
    uint64_t win_nm = 0;
    uint64_t win_fm = 0;
    uint64_t win_instr = 0;
    for (const auto &s : agg.samples()) {
        win_nm += s.nm_demand_bytes;
        win_fm += s.fm_demand_bytes;
        win_instr += s.instructions;
    }
    if (win_instr > 0) {
        const double scale = static_cast<double>(r.instructions) /
            static_cast<double>(win_instr);
        r.nm_demand_bytes =
            static_cast<uint64_t>(static_cast<double>(win_nm) * scale);
        r.fm_demand_bytes =
            static_cast<uint64_t>(static_cast<double>(win_fm) * scale);
    }
    r.sampling = report;
    return r;
}

sim::SimResult
runMaybeSampled(const sim::SystemConfig &cfg, const SamplingConfig &scfg)
{
    sim::System probe(cfg);
    if (!probe.policyRef().supportsSampling()) {
        warn("policy '%s' carries tick-coupled state; running %s in "
             "full detail instead of sampling",
             probe.policyRef().name(), cfg.workload.c_str());
        return probe.run();
    }
    // The probe exists only for the capability check; the controller
    // builds its own warming system.
    SamplingController ctl(cfg, scfg);
    return ctl.run();
}

} // namespace sample
} // namespace silc
