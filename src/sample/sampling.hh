/**
 * @file
 * Statistical sampling subsystem: SMARTS-style systematic sampling with
 * functional warming and checkpointed parallel replay.
 *
 * A sampled run replaces one long detailed simulation with:
 *
 *  1. One sequential **functional-warming** pass over the whole
 *     instruction stream.  Cores, caches, translation and the policy's
 *     metadata state machine (remap tables, bit vectors, locks,
 *     predictor, balancer, activity counters) all update exactly as in
 *     detailed mode, but LLC misses complete synchronously: no MSHRs,
 *     no DRAM timing, no queueing (System::setFunctionalMode()).  At
 *     every systematic interval of SILC_SAMPLE_PERIOD per-core
 *     instructions the warming system is checkpointed to an in-memory
 *     blob (sample/checkpoint.hh).
 *
 *  2. N independent **detailed replays**, one per checkpoint, executed
 *     in parallel on the shared ThreadPool (sim/parallel.hh).  Each
 *     replay restores its blob into a fresh System, runs
 *     SILC_SAMPLE_WARMUP detailed instructions per core to re-warm the
 *     timing state (MSHRs, DRAM queues, row buffers) — discarded — and
 *     then measures a SILC_SAMPLE_WINDOW-instruction detailed window by
 *     differencing counters across the window edges.
 *
 *  3. Aggregation: per-metric mean and 95% confidence interval over the
 *     window population (Student's t), reported in a `sampling` section
 *     of the silc.results.v1 JSON document.  When SILC_SAMPLE_CI_TARGET
 *     is set, replay stops early (at deterministic batch boundaries)
 *     once the relative CI half-width of IPC drops below the target.
 *
 * Determinism: warming is sequential; every replay runs sim_threads=1
 * from a byte-exact blob; windows are collected in checkpoint order and
 * early stopping is evaluated only at fixed batch boundaries — so
 * results are byte-identical across SILC_THREADS values.
 *
 * Environment knobs (see also sim/experiment.hh):
 *   SILC_SAMPLE_PERIOD      per-core instructions between checkpoints
 *   SILC_SAMPLE_WINDOW      measured detailed instructions per core
 *   SILC_SAMPLE_WARMUP      discarded detailed warmup per core
 *   SILC_SAMPLE_MIN_WINDOWS minimum windows before early stopping
 *   SILC_SAMPLE_CI_TARGET   relative IPC CI half-width target (0 = off)
 */

#ifndef SILC_SAMPLE_SAMPLING_HH
#define SILC_SAMPLE_SAMPLING_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hh"
#include "sample/checkpoint.hh"
#include "sim/experiment.hh"
#include "sim/metrics.hh"
#include "sim/system.hh"

namespace silc {
namespace sample {

/** Knobs of one sampled run. */
struct SamplingConfig
{
    /** Per-core instructions between checkpoints (SILC_SAMPLE_PERIOD). */
    uint64_t period = 200'000;
    /** Measured detailed instructions per core (SILC_SAMPLE_WINDOW). */
    uint64_t window = 5'000;
    /** Discarded detailed warmup per core (SILC_SAMPLE_WARMUP). */
    uint64_t warmup = 5'000;
    /** Windows required before early stopping may trigger. */
    uint32_t min_windows = 5;
    /**
     * Early-stop target: relative 95% CI half-width on IPC
     * (SILC_SAMPLE_CI_TARGET, e.g. 0.02 for +/-2%).  0 disables early
     * stopping and replays every checkpoint.
     */
    double ci_target = 0.0;
    /** Replay pool width; 0 means SILC_THREADS (sim/parallel.hh). */
    unsigned threads = 0;

    /** Read SILC_SAMPLE_* overrides from the environment. */
    static SamplingConfig fromEnv();

    /** fatal() on inconsistent settings (e.g. warmup+window > period). */
    void validate() const;
};

/** Metrics of one detailed measurement window (counter deltas). */
struct WindowSample
{
    uint64_t index = 0;        ///< checkpoint index (systematic order)
    uint64_t instructions = 0; ///< total retired across cores
    Tick ticks = 0;            ///< window length in ticks
    double ipc = 0.0;
    double mpki = 0.0;
    double avg_miss_latency = 0.0;
    double access_rate = 0.0;      ///< NM-serviced demand fraction
    double swaps_per_kilo = 0.0;   ///< SILC-FM subblock swaps / 1k instr
    double bypass_per_kilo = 0.0;  ///< SILC-FM bypasses / 1k instr
    double fm_read_p50 = 0.0;      ///< FM read queue delay percentiles
    double fm_read_p95 = 0.0;
    double nm_read_p95 = 0.0;
    /** NM share of demand bytes in the window (Figure 8's metric). */
    double nm_demand_fraction = 0.0;
    /** Raw demand-byte deltas, for extrapolating run totals. */
    uint64_t nm_demand_bytes = 0;
    uint64_t fm_demand_bytes = 0;
};

/** Mean and 95% confidence half-width of one metric. */
struct MetricEstimate
{
    std::string name;
    double mean = 0.0;
    double ci_half = 0.0; ///< 95% CI half-width (0 when n < 2)
    uint32_t n = 0;
};

/** What a sampled run reports alongside the synthesized SimResult. */
struct SamplingReport
{
    uint64_t period = 0;
    uint64_t window = 0;
    uint64_t warmup = 0;
    uint32_t checkpoints = 0;       ///< captured during warming
    uint32_t windows = 0;           ///< actually replayed
    bool early_stopped = false;
    /**
     * Per-core instructions actually executed functionally.  Equals the
     * last checkpoint position (warming stops there — the tail past it
     * feeds no window), or the full per-core budget under SILC_CHECK,
     * where the oracle verifies the whole stream.
     */
    uint64_t warm_instructions = 0;
    std::vector<MetricEstimate> metrics;

    /** Lookup by metric name; nullptr when absent. */
    const MetricEstimate *find(const std::string &name) const;
};

/**
 * Accumulates WindowSamples and produces per-metric mean + 95% CI
 * (Student's t over the window population).
 */
class StatsAggregator
{
  public:
    void add(const WindowSample &s) { samples_.push_back(s); }
    size_t windows() const { return samples_.size(); }
    const std::vector<WindowSample> &samples() const { return samples_; }

    /** Estimates for every metric, in a fixed order (ipc first). */
    std::vector<MetricEstimate> estimates() const;

    /** Estimate of a single named metric (fatal on unknown name). */
    MetricEstimate estimate(const std::string &name) const;

    /** Two-sided 95% Student's t critical value for @p df (>= 1). */
    static double tCritical95(uint32_t df);

  private:
    std::vector<WindowSample> samples_;
};

/**
 * Drives one sampled run: functional warming + checkpointing, parallel
 * detailed replay, aggregation.  The returned SimResult carries the
 * window-mean IPC/MPKI/latency/access-rate (with ticks back-derived
 * from the mean IPC), the warming run's footprint, and the full
 * SamplingReport in SimResult::sampling.  DRAM traffic/energy fields
 * are not estimated by sampling and read zero.
 */
class SamplingController
{
  public:
    SamplingController(sim::SystemConfig cfg, SamplingConfig scfg);

    /** Run warming + replay; fatal if the policy cannot sample. */
    sim::SimResult run();

  private:
    WindowSample replayWindow(const Checkpoint &ckpt, uint64_t index);

    sim::SystemConfig cfg_;
    SamplingConfig scfg_;
};

/**
 * Sampled run when the policy supports it (FlatMemoryPolicy::
 * supportsSampling()), full detailed run otherwise (with a warning) —
 * the benches' --sample entry point, so HMA rows keep working.
 */
sim::SimResult runMaybeSampled(const sim::SystemConfig &cfg,
                               const SamplingConfig &scfg);

} // namespace sample
} // namespace silc

#endif // SILC_SAMPLE_SAMPLING_HH
