#include "sim/domain.hh"

#include <chrono>
#include <thread>

#include "dram/dram_system.hh"

namespace silc {
namespace sim {

namespace {

/** Barrier spin budget before falling back to the condition variable. */
constexpr int kSpinIterations = 4096;

} // namespace

DomainScheduler::DomainScheduler(dram::DramSystem *nm,
                                 dram::DramSystem &fm, unsigned threads)
    : nm_(nm), fm_(fm)
{
    if (nm_) {
        for (size_t i = 0; i < nm_->numChannels(); ++i)
            channels_.push_back({nm_, i});
    }
    for (size_t i = 0; i < fm_.numChannels(); ++i)
        channels_.push_back({&fm_, i});
    const unsigned total = static_cast<unsigned>(channels_.size());
    lanes_ = threads < 1 ? 1 : threads;
    if (lanes_ > total && total > 0)
        lanes_ = total;
}

DomainScheduler::~DomainScheduler()
{
    if (workers_spawned_) {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            stop_.store(true, std::memory_order_release);
        }
        cv_.notify_all();
        // ThreadPool destruction joins the workers once their persistent
        // barrier loops return.
        pool_.reset();
    }
}

void
DomainScheduler::replayLane(unsigned lane, Tick w1)
{
    for (size_t k = lane; k < channels_.size(); k += lanes_)
        channels_[k].dev->replayChannel(channels_[k].index, w1);
}

void
DomainScheduler::workerBody(unsigned lane)
{
    uint64_t seen = 0;
    while (true) {
        // Spin briefly for the next window — windows are typically a
        // few microseconds apart — then park on the condition variable.
        bool ready = false;
        for (int i = 0; i < kSpinIterations; ++i) {
            if (epoch_.load(std::memory_order_acquire) != seen ||
                stop_.load(std::memory_order_acquire)) {
                ready = true;
                break;
            }
        }
        if (!ready) {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock, [&] {
                return epoch_.load(std::memory_order_acquire) != seen ||
                    stop_.load(std::memory_order_acquire);
            });
        }
        if (stop_.load(std::memory_order_acquire))
            return;
        seen = epoch_.load(std::memory_order_acquire);
        replayLane(lane, w1_);
        done_.fetch_add(1, std::memory_order_release);
    }
}

void
DomainScheduler::spawnWorkers()
{
    workers_spawned_ = true;
    pool_ = std::make_unique<ThreadPool>(lanes_ - 1);
    // Persistent barrier loops: each worker runs exactly one, parked
    // between windows, until the destructor raises stop_.
    for (unsigned lane = 1; lane < lanes_; ++lane)
        pool_->submit([this, lane] { workerBody(lane); });
}

void
DomainScheduler::replay(Tick w1)
{
    // Count lanes that actually have work this window; replaying an
    // idle channel is a no-op, but dispatching a barrier round-trip for
    // fewer than two busy lanes costs more than it saves.
    unsigned busy_lanes = 0;
    if (lanes_ > 1) {
        std::vector<bool> lane_busy(lanes_, false);
        for (size_t k = 0; k < channels_.size(); ++k) {
            const ChannelRef &c = channels_[k];
            const dram::ChannelController &ch = c.dev->channel(c.index);
            if (ch.pendingEnqueues() != 0 || ch.nextScanAt() < w1)
                lane_busy[k % lanes_] = true;
        }
        for (unsigned l = 0; l < lanes_; ++l)
            busy_lanes += lane_busy[l] ? 1 : 0;
    }

    // The replay outcome is identical either way (channels are
    // independent and the merge orders everything), so the executor
    // choice is free to consult the host: on a single hardware thread
    // the parallel path only adds barrier overhead.
    static const unsigned hw = std::thread::hardware_concurrency();
    const bool go_parallel = lanes_ > 1 && busy_lanes >= 2 && hw >= 2;

    if (go_parallel) {
        if (!workers_spawned_)
            spawnWorkers();
        done_.store(0, std::memory_order_relaxed);
        w1_ = w1;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            epoch_.fetch_add(1, std::memory_order_release);
        }
        cv_.notify_all();
        replayLane(0, w1);
        const unsigned workers = lanes_ - 1;
        if (done_.load(std::memory_order_acquire) != workers) {
            const auto t0 = std::chrono::steady_clock::now();
            while (done_.load(std::memory_order_acquire) != workers)
                std::this_thread::yield();
            stats_.sync_wait_ns += static_cast<uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now() - t0).count());
        }
        ++stats_.parallel_replays;
    } else {
        replayLane(0, w1);
        for (unsigned lane = 1; lane < lanes_; ++lane)
            replayLane(lane, w1);
        ++stats_.serial_replays;
    }

    // Merge in device order (NM = loop phase 1, FM = phase 2), matching
    // the sequential main loop's phase order.
    if (nm_)
        nm_->mergeWindow(1);
    fm_.mergeWindow(2);
}

} // namespace sim
} // namespace silc
