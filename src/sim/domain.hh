/**
 * @file
 * Conservative-lookahead window execution domains for intra-simulation
 * parallelism.
 *
 * The sequential simulator interleaves three kinds of per-tick work:
 * the serial "core" work (event queue, CPU cores, the policy) and the
 * two DRAM devices' channel scans.  Channel scans are channel-local —
 * they touch only their own banks/queues — and everything they feed
 * back to the rest of the simulator (completion callbacks, histogram
 * samples) lands at least minServiceTicks() in the future.  That
 * latency floor is the conservative lookahead: the main loop may run a
 * whole window [w0, w1) of core work first, with w1 bounded by the
 * earliest possible scan completion, and only then replay the window's
 * channel scans — possibly on worker threads — without the core work
 * ever observing a completion out of order.
 *
 * The DomainScheduler owns the partition of DRAM channels across
 * replay lanes (main thread plus ThreadPool workers) and the window
 * barrier that synchronizes them.  Determinism is absolute: the replay
 * outcome is executor-invariant (channels are independent; the merge
 * back into shared state is ordered by (scan tick, channel)), so the
 * scheduler is free to fall back to a serial replay on small windows
 * or single-CPU hosts without changing a single output byte.  The
 * byte-identical bar — `silc.results.v1` documents identical across
 * SILC_SIM_THREADS values — is enforced by tests/test_sim_parallel_window.
 */

#ifndef SILC_SIM_DOMAIN_HH
#define SILC_SIM_DOMAIN_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/types.hh"
#include "sim/parallel.hh"

namespace silc {

namespace dram {
class DramSystem;
} // namespace dram

namespace sim {

/**
 * Counters for the windowed run loop (dumped via System::dumpStats and
 * the [simpar] stderr footer; deliberately kept out of SimResult so the
 * results document stays byte-identical across thread counts).
 */
struct WindowStats
{
    uint64_t windows = 0;           ///< windows executed
    uint64_t parallel_replays = 0;  ///< replays dispatched to workers
    uint64_t serial_replays = 0;    ///< replays run inline on the main thread
    uint64_t horizon_capped = 0;    ///< windows ended by the dynamic horizon
    uint64_t window_ticks = 0;      ///< total ticks covered by windows
    uint64_t sync_wait_ns = 0;      ///< main-thread barrier wait time
};

/**
 * Partitions the two DRAM devices' channels across replay lanes and
 * replays each window, serially or on the owning ThreadPool.
 *
 * Lanes: lane 0 is the calling (main) thread; lanes 1..N-1 are
 * persistent tasks parked on a ThreadPool, woken per window through an
 * epoch barrier (bounded spin, then condition variable).  Channels are
 * assigned to lanes round-robin over the concatenated NM+FM channel
 * list, fixed at construction.
 *
 * Worker threads spawn lazily on the first parallel dispatch, so a
 * windowed run that never dispatches in parallel (single-CPU host,
 * too few busy channels) costs no threads at all.
 */
class DomainScheduler
{
  public:
    /**
     * @param nm      near-memory device, or nullptr for no-NM baselines
     *                (replayed with loop phase 1)
     * @param fm      far-memory device (replayed with loop phase 2)
     * @param threads requested lane count (SILC_SIM_THREADS); clamped
     *                to the total channel count
     */
    DomainScheduler(dram::DramSystem *nm, dram::DramSystem &fm,
                    unsigned threads);
    ~DomainScheduler();

    DomainScheduler(const DomainScheduler &) = delete;
    DomainScheduler &operator=(const DomainScheduler &) = delete;

    /**
     * Replay every channel's window up to @p w1 and fold the deferred
     * work back into shared state (DramSystem::mergeWindow).  Chooses
     * serial or parallel execution per window; the choice never
     * affects results.  Call from the main thread only, after the
     * window's core phase.
     */
    void replay(Tick w1);

    /** Replay lanes (including the main thread's lane 0). */
    unsigned lanes() const { return lanes_; }

    const WindowStats &stats() const { return stats_; }
    WindowStats &stats() { return stats_; }

  private:
    /** One channel of one device, as seen by the replay lanes. */
    struct ChannelRef
    {
        dram::DramSystem *dev;
        size_t index;
    };

    void replayLane(unsigned lane, Tick w1);
    void spawnWorkers();
    void workerBody(unsigned lane);

    dram::DramSystem *nm_;
    dram::DramSystem &fm_;
    /** Concatenated NM+FM channels; channel k belongs to lane k % lanes_. */
    std::vector<ChannelRef> channels_;
    unsigned lanes_ = 1;

    // ---- window barrier ----------------------------------------------
    //
    // Main publishes w1_ then bumps epoch_ (release, under the mutex so
    // a worker cannot check the predicate and sleep between the store
    // and the notify); workers spin briefly, then wait on the condition
    // variable.  Completion travels back through done_, which the main
    // thread spin-gathers — windows are short, so the gather almost
    // always succeeds within a few iterations.

    std::unique_ptr<ThreadPool> pool_;  ///< lazily created, lanes_-1 threads
    bool workers_spawned_ = false;
    std::atomic<uint64_t> epoch_{0};
    std::atomic<unsigned> done_{0};
    std::atomic<bool> stop_{false};
    Tick w1_ = 0;  ///< published before epoch_, read after (acquire)
    std::mutex mutex_;
    std::condition_variable cv_;

    WindowStats stats_;
};

} // namespace sim
} // namespace silc

#endif // SILC_SIM_DOMAIN_HH
