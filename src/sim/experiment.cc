#include "sim/experiment.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "common/config.hh"
#include "common/env.hh"
#include "common/logging.hh"

namespace silc {
namespace sim {

namespace {

uint64_t
envU64(const char *name, uint64_t def)
{
    const char *v = std::getenv(name);
    return v == nullptr ? def : parseSize(v);
}

} // namespace

ExperimentOptions
ExperimentOptions::fromEnv()
{
    ExperimentOptions o;
    o.cores = static_cast<uint32_t>(envU64("SILC_CORES", o.cores));
    o.instructions_per_core =
        envU64("SILC_INSTR", o.instructions_per_core);
    o.nm_bytes = envU64("SILC_NM_MIB", o.nm_bytes >> 20) << 20;
    o.fm_bytes = envU64("SILC_FM_MIB", o.fm_bytes >> 20) << 20;
    o.seed = envU64("SILC_SEED", o.seed);
    o.telemetry = envU64("SILC_TELEMETRY", o.telemetry ? 1 : 0) != 0;
    o.epoch_ticks = envU64("SILC_EPOCH_TICKS", o.epoch_ticks);
    o.check = envU64("SILC_CHECK", o.check ? 1 : 0) != 0;
    o.sim_threads = envThreadCount("SILC_SIM_THREADS", o.sim_threads);
    return o;
}

SystemConfig
makeConfig(const std::string &workload, PolicyKind kind,
           const ExperimentOptions &opts)
{
    SystemConfig cfg = SystemConfig::defaults();
    cfg.workload = workload;
    cfg.policy = kind;
    cfg.cores = opts.cores;
    cfg.instructions_per_core = opts.instructions_per_core;
    cfg.nm_bytes = opts.nm_bytes;
    cfg.fm_bytes = opts.fm_bytes;
    cfg.seed = opts.seed;
    // Scaled runs see far fewer than the paper's 1M accesses between
    // agings; keep the aging cadence proportional to run length.
    cfg.silc.aging_interval =
        std::max<uint64_t>(20'000, opts.instructions_per_core / 8);
    // The paper's threshold of 50 assumes 1B-instruction slices; scaled
    // runs see proportionally fewer per-page accesses per aging window.
    cfg.silc.hot_threshold = 12;
    // HMA's epoch must fit several times into a scaled run the same way
    // hundreds-of-ms epochs fit into the paper's full executions.
    cfg.hma.epoch_ticks =
        std::max<Tick>(100'000, opts.instructions_per_core);
    cfg.hma.hot_threshold = 16;
    cfg.hma.max_migrations_per_epoch = 256;
    // PoM's competing-counter threshold, scaled like the others.
    cfg.pom.migration_threshold = 48;
    cfg.telemetry.enabled = opts.telemetry;
    cfg.telemetry.epoch_ticks = opts.epoch_ticks;
    cfg.sim_threads = opts.sim_threads;
    // The oracle only models SILC-FM; System fatal()s otherwise, so
    // gate here to keep SILC_CHECK=1 usable on multi-scheme benches.
    cfg.check = opts.check && kind == PolicyKind::SilcFm;
    return cfg;
}

ExperimentRunner::ExperimentRunner(ExperimentOptions opts)
    : opts_(opts)
{
}

SimResult
ExperimentRunner::run(const std::string &workload, PolicyKind kind)
{
    System system(makeConfig(workload, kind, opts_));
    return system.run();
}

SimResult
ExperimentRunner::runConfig(const SystemConfig &cfg)
{
    System system(cfg);
    return system.run();
}

Tick
ExperimentRunner::baselineTicks(const std::string &workload)
{
    auto it = baseline_cache_.find(workload);
    if (it != baseline_cache_.end())
        return it->second;
    SimResult base = run(workload, PolicyKind::FmOnly);
    baseline_cache_.emplace(workload, base.ticks);
    return base.ticks;
}

double
ExperimentRunner::speedup(const SimResult &result)
{
    const Tick base = baselineTicks(result.workload);
    return static_cast<double>(base) / static_cast<double>(result.ticks);
}

std::string
u64str(uint64_t v)
{
    return std::to_string(v);
}

void
printTableHeader(const std::string &label,
                 const std::vector<std::string> &columns)
{
    std::printf("%-10s", label.c_str());
    for (const auto &c : columns)
        std::printf(" %9s", c.c_str());
    std::printf("\n");
    printTableRule(columns.size());
}

void
printTableRow(const std::string &label, const std::vector<double> &values,
              int precision)
{
    std::printf("%-10s", label.c_str());
    for (double v : values)
        std::printf(" %9.*f", precision, v);
    std::printf("\n");
}

void
printTableRule(size_t columns)
{
    std::printf("----------");
    for (size_t i = 0; i < columns; ++i)
        std::printf("-%.9s", "---------");
    std::printf("\n");
}

} // namespace sim
} // namespace silc
