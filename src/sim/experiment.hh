/**
 * @file
 * The experiment runner used by the bench binaries: builds configs for
 * (workload, scheme) pairs, caches no-NM baseline runs so speedups share
 * a denominator, applies environment-variable scale overrides, and
 * provides table formatting helpers.
 *
 * Scale knobs (environment variables, all optional).  Defaults quote
 * the ExperimentOptions initializers below — keep them in sync:
 *   SILC_CORES   - cores per run          (default 8)
 *   SILC_INSTR   - instructions per core  (default 2400000)
 *   SILC_NM_MIB  - NM capacity in MiB     (default 4)
 *   SILC_FM_MIB  - FM capacity in MiB     (default 16)
 *   SILC_SEED    - RNG seed               (default 1)
 *   SILC_THREADS - simulation worker threads used by the benches'
 *                  ParallelRunner (sim/parallel.hh); default is
 *                  hardware_concurrency, 1 runs everything
 *                  sequentially.  Tables are byte-identical across
 *                  thread counts.
 *   SILC_SIM_THREADS - worker lanes *inside* each simulation (default
 *                  1): >= 2 selects the conservative-lookahead windowed
 *                  run loop (sim/domain.hh), which partitions DRAM
 *                  channel scans across this many lanes.  Results are
 *                  byte-identical for every value; it only changes
 *                  wall-clock time.  Both thread knobs reject 0 and
 *                  non-numeric values with a fatal error.
 *
 * Telemetry / export knobs (see src/telemetry/ and sim/result_writer.hh):
 *   SILC_JSON        - write every run's SimResult (plus its epoch time
 *                      series) to this path as one JSON document; the
 *                      benches also accept --json <path>, which wins.
 *                      Implies per-run telemetry.
 *   SILC_EPOCH_TICKS - ticks per telemetry epoch (default 100000)
 *   SILC_TELEMETRY   - set to 1 to record per-run time series even
 *                      without SILC_JSON
 *
 * Correctness knobs (see src/check/ and TESTING.md):
 *   SILC_CHECK       - set to 1 to run the untimed differential oracle
 *                      in lockstep with every SILC-FM run; the process
 *                      panics on the first divergence.  Ignored (with
 *                      no oracle attached) for non-SILC-FM schemes.
 *
 * Sampling knobs (see src/sample/sampling.hh; active in
 * bench/sampling_sweep and the benches' --sample modes):
 *   SILC_SAMPLE_PERIOD      - instructions/core between checkpoints
 *                             during functional warming (default 200000)
 *   SILC_SAMPLE_WINDOW      - detailed measurement window per
 *                             checkpoint, instructions/core (default
 *                             5000)
 *   SILC_SAMPLE_WARMUP      - detailed timing re-warm prefix before
 *                             each window, discarded (default 5000)
 *   SILC_SAMPLE_MIN_WINDOWS - windows required before CI-driven early
 *                             stopping may trigger (default 5)
 *   SILC_SAMPLE_CI_TARGET   - stop adding windows once the IPC 95% CI
 *                             half-width / mean falls to this value;
 *                             0 (default) replays every checkpoint.
 */

#ifndef SILC_SIM_EXPERIMENT_HH
#define SILC_SIM_EXPERIMENT_HH

#include <map>
#include <string>
#include <vector>

#include "sim/metrics.hh"
#include "sim/system.hh"

namespace silc {
namespace sim {

/** Scale parameters shared by all bench binaries. */
struct ExperimentOptions
{
    uint32_t cores = 8;
    uint64_t instructions_per_core = 2'400'000;
    uint64_t nm_bytes = 4 * 1024 * 1024;
    uint64_t fm_bytes = 16 * 1024 * 1024;
    uint64_t seed = 1;

    /** Record per-run epoch time series (SILC_TELEMETRY / SILC_JSON). */
    bool telemetry = false;
    /** Lockstep differential oracle on SILC-FM runs (SILC_CHECK). */
    bool check = false;
    /** Telemetry epoch length in ticks (SILC_EPOCH_TICKS). */
    uint64_t epoch_ticks = 100'000;
    /** Intra-simulation lanes (SILC_SIM_THREADS); 1 = sequential loop. */
    uint32_t sim_threads = 1;

    /** Read overrides from the environment. */
    static ExperimentOptions fromEnv();
};

/** Build a full SystemConfig for one run. */
SystemConfig makeConfig(const std::string &workload, PolicyKind kind,
                        const ExperimentOptions &opts);

/**
 * Runs simulations and caches the per-workload no-NM baseline so every
 * speedup in a bench shares the same denominator (the paper's figure of
 * merit: baseline time / scheme time).
 */
class ExperimentRunner
{
  public:
    explicit ExperimentRunner(ExperimentOptions opts);

    const ExperimentOptions &options() const { return opts_; }

    /** Run one (workload, scheme) pair. */
    SimResult run(const std::string &workload, PolicyKind kind);

    /** Run with a caller-tweaked config (capacity sweeps, ablations). */
    SimResult runConfig(const SystemConfig &cfg);

    /** Execution ticks of the cached no-NM baseline for @p workload. */
    Tick baselineTicks(const std::string &workload);

    /** Speedup of @p result against the no-NM baseline. */
    double speedup(const SimResult &result);

  private:
    ExperimentOptions opts_;
    std::map<std::string, Tick> baseline_cache_;
};

// ---- Small table-printing helpers shared by the benches. ----

/**
 * Decimal rendering of a 64-bit counter for printf("%s") use.  Replaces
 * the non-portable "%llu" + static_cast<unsigned long long> pattern the
 * benches used to repeat (uint64_t is not unsigned long long on every
 * LP64 platform).
 */
std::string u64str(uint64_t v);

/** Print a header row: left label column plus one column per entry. */
void printTableHeader(const std::string &label,
                      const std::vector<std::string> &columns);

/** Print one row of doubles under a matching header. */
void printTableRow(const std::string &label,
                   const std::vector<double> &values, int precision = 3);

/** A horizontal rule sized for @p columns entries. */
void printTableRule(size_t columns);

} // namespace sim
} // namespace silc

#endif // SILC_SIM_EXPERIMENT_HH
