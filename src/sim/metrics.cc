#include "sim/metrics.hh"

#include <cmath>

namespace silc {
namespace sim {

double
SimResult::nmDemandFraction() const
{
    const double total = static_cast<double>(nm_demand_bytes) +
        static_cast<double>(fm_demand_bytes);
    return total == 0.0
        ? 0.0
        : static_cast<double>(nm_demand_bytes) / total;
}

double
SimResult::seconds(double cpu_freq_hz) const
{
    return static_cast<double>(ticks) / cpu_freq_hz;
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double v : values)
        log_sum += std::log(v);
    return std::exp(log_sum / static_cast<double>(values.size()));
}

} // namespace sim
} // namespace silc
