/**
 * @file
 * Result record of one simulation run plus the aggregate math the bench
 * harness uses (geometric means, speedups, EDP).
 */

#ifndef SILC_SIM_METRICS_HH
#define SILC_SIM_METRICS_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hh"

namespace silc {

namespace telemetry {
struct TimeSeries;
} // namespace telemetry

namespace sample {
struct SamplingReport;
} // namespace sample

namespace sim {

/** Everything a bench needs from one run. */
struct SimResult
{
    std::string scheme;
    std::string workload;
    uint32_t cores = 0;
    uint64_t instructions = 0;

    /** Execution time: tick when the last core finished. */
    Tick ticks = 0;
    /** Run was cut off by the safety tick limit. */
    bool hit_tick_limit = false;

    double ipc = 0.0;
    uint64_t llc_misses = 0;
    double mpki = 0.0;
    /** Unique 2KB pages touched (the measured footprint). */
    uint64_t footprint_pages = 0;

    /** NM-serviced fraction of demand requests (Equation 1). */
    double access_rate = 0.0;
    /** Mean LLC miss latency in ticks. */
    double avg_miss_latency = 0.0;

    uint64_t nm_demand_bytes = 0;
    uint64_t fm_demand_bytes = 0;
    uint64_t nm_total_bytes = 0;
    uint64_t fm_total_bytes = 0;
    uint64_t migration_bytes = 0;
    uint64_t metadata_bytes = 0;

    double nm_row_hit_rate = 0.0;
    double fm_row_hit_rate = 0.0;
    double nm_bus_utilization = 0.0;
    double fm_bus_utilization = 0.0;
    double nm_avg_read_queue_ticks = 0.0;
    double fm_avg_read_queue_ticks = 0.0;

    double energy_nm_j = 0.0;
    double energy_fm_j = 0.0;
    double energy_total_j = 0.0;
    /** Energy-delay product in joule-seconds. */
    double edp = 0.0;

    /**
     * Epoch time series recorded during the run; null unless
     * SystemConfig::telemetry was enabled.  Shared and immutable, so
     * SimResult stays cheap to copy through the parallel harness.
     */
    std::shared_ptr<const telemetry::TimeSeries> telemetry;

    /**
     * Per-metric means and 95% confidence intervals of a sampled run
     * (src/sample/); null for full detailed runs.  Shared and immutable
     * for the same reason as the telemetry series.
     */
    std::shared_ptr<const sample::SamplingReport> sampling;

    /** Demand-bandwidth share serviced by NM (Figure 8). */
    double nmDemandFraction() const;

    /** Seconds of simulated time at @p cpu_freq_hz. */
    double seconds(double cpu_freq_hz = 3.2e9) const;
};

/** Geometric mean; empty input yields 0. */
double geomean(const std::vector<double> &values);

} // namespace sim
} // namespace silc

#endif // SILC_SIM_METRICS_HH
