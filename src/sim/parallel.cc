#include "sim/parallel.hh"

#include <cinttypes>
#include <utility>

#include "common/env.hh"
#include "common/logging.hh"
#include "sim/result_writer.hh"

namespace silc {
namespace sim {

unsigned
parallelThreadsFromEnv()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return envThreadCount("SILC_THREADS", hw == 0 ? 1 : hw);
}

ThreadPool::ThreadPool(unsigned threads)
{
    const unsigned n = threads == 0 ? parallelThreadsFromEnv() : threads;
    queues_.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        queues_.push_back(std::make_unique<WorkerQueue>());
    workers_.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        workers_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(wake_mutex_);
        stop_ = true;
    }
    wake_cv_.notify_all();
    for (auto &worker : workers_)
        worker.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    const size_t idx =
        next_queue_.fetch_add(1, std::memory_order_relaxed) %
        queues_.size();
    {
        std::lock_guard<std::mutex> lock(queues_[idx]->mutex);
        queues_[idx]->tasks.push_back(std::move(task));
    }
    {
        // Bump pending_ under the wake mutex: otherwise the increment
        // could slip between a worker's predicate check and its sleep,
        // losing the wakeup for good.
        std::lock_guard<std::mutex> lock(wake_mutex_);
        pending_.fetch_add(1, std::memory_order_release);
    }
    wake_cv_.notify_one();
}

bool
ThreadPool::tryPop(size_t self, std::function<void()> &out)
{
    // Own queue first (front: FIFO for the local stream of work) ...
    {
        std::lock_guard<std::mutex> lock(queues_[self]->mutex);
        if (!queues_[self]->tasks.empty()) {
            out = std::move(queues_[self]->tasks.front());
            queues_[self]->tasks.pop_front();
            return true;
        }
    }
    // ... then steal from siblings (back: avoids contending with the
    // owner's front end).
    for (size_t k = 1; k < queues_.size(); ++k) {
        WorkerQueue &victim = *queues_[(self + k) % queues_.size()];
        std::lock_guard<std::mutex> lock(victim.mutex);
        if (!victim.tasks.empty()) {
            out = std::move(victim.tasks.back());
            victim.tasks.pop_back();
            return true;
        }
    }
    return false;
}

void
ThreadPool::workerLoop(size_t self)
{
    while (true) {
        std::function<void()> task;
        if (tryPop(self, task)) {
            pending_.fetch_sub(1, std::memory_order_acq_rel);
            task();
            continue;
        }
        std::unique_lock<std::mutex> lock(wake_mutex_);
        if (stop_ && pending_.load(std::memory_order_acquire) == 0)
            return;
        wake_cv_.wait(lock, [this] {
            return stop_ || pending_.load(std::memory_order_acquire) > 0;
        });
        if (stop_ && pending_.load(std::memory_order_acquire) == 0)
            return;
    }
}

ParallelRunner::ParallelRunner(ExperimentOptions opts, unsigned threads)
    : opts_(opts), start_(std::chrono::steady_clock::now()),
      pool_(threads)
{
}

ParallelRunner::~ParallelRunner()
{
    writeJson();
}

void
ParallelRunner::setJsonPath(std::string path)
{
    if (path.empty())
        return;
    if (!recorded_.empty() || jobsCompleted() > 0)
        warn("setJsonPath after submissions: earlier runs are not "
             "recorded in %s", path.c_str());
    json_path_ = std::move(path);
    // Every recorded run should carry its time series.
    opts_.telemetry = true;
}

void
ParallelRunner::writeJson()
{
    if (json_path_.empty() || json_written_)
        return;
    json_written_ = true;
    ResultWriter writer(json_path_, opts_);
    for (const Job &job : recorded_)
        writer.add(job.get());
    writer.write();
    std::fprintf(stderr, "[parallel] wrote %zu runs to %s\n",
                 writer.runs(), json_path_.c_str());
}

ParallelRunner::Job
ParallelRunner::submitJob(SystemConfig cfg, bool is_baseline)
{
    if (!json_path_.empty() && !cfg.telemetry.enabled) {
        // submitConfig callers may have built the config before
        // setJsonPath; keep the recorded document uniform.
        cfg.telemetry.enabled = true;
        cfg.telemetry.epoch_ticks = opts_.epoch_ticks;
    }
    auto task = std::make_shared<std::packaged_task<SimResult()>>(
        [this, cfg = std::move(cfg), is_baseline] {
            logSetThreadTag(cfg.workload + "/" +
                            policyKindName(cfg.policy));
            System system(cfg);
            SimResult result = system.run();
            logSetThreadTag("");
            if (is_baseline)
                baseline_runs_.fetch_add(1, std::memory_order_relaxed);
            jobs_completed_.fetch_add(1, std::memory_order_relaxed);
            return result;
        });
    Job job = task->get_future().share();
    if (!json_path_.empty())
        recorded_.push_back(job);
    pool_.submit([task] { (*task)(); });
    return job;
}

ParallelRunner::Job
ParallelRunner::submit(const std::string &workload, PolicyKind kind)
{
    if (kind == PolicyKind::FmOnly)
        return baseline(workload);
    return submitJob(makeConfig(workload, kind, opts_), false);
}

ParallelRunner::Job
ParallelRunner::submitConfig(SystemConfig cfg)
{
    return submitJob(std::move(cfg), false);
}

ParallelRunner::Job
ParallelRunner::baseline(const std::string &workload)
{
    std::lock_guard<std::mutex> lock(baseline_mutex_);
    auto it = baselines_.find(workload);
    if (it != baselines_.end())
        return it->second;
    Job job = submitJob(makeConfig(workload, PolicyKind::FmOnly, opts_),
                        true);
    baselines_.emplace(workload, job);
    return job;
}

Tick
ParallelRunner::baselineTicks(const std::string &workload)
{
    return baseline(workload).get().ticks;
}

double
ParallelRunner::speedup(const SimResult &result)
{
    const Tick base = baselineTicks(result.workload);
    return static_cast<double>(base) / static_cast<double>(result.ticks);
}

double
ParallelRunner::elapsedSeconds() const
{
    const auto now = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(now - start_).count();
}

std::string
fixedDecimal(double v, int places)
{
    // CI perf gates parse this output with a fixed regex, so the
    // rendering must not follow the process locale the way printf("%f")
    // does (a decimal comma would break the parser).  Integer
    // formatting via to_string is locale-independent.
    if (!(v >= 0.0))
        v = 0.0;
    uint64_t scale = 1;
    for (int i = 0; i < places; ++i)
        scale *= 10;
    const double scaled = v * static_cast<double>(scale) + 0.5;
    const double limit = 9.0e18;
    const uint64_t n = scaled >= limit
        ? static_cast<uint64_t>(limit)
        : static_cast<uint64_t>(scaled);
    std::string s = std::to_string(n / scale);
    if (places > 0) {
        std::string frac = std::to_string(n % scale);
        s += '.';
        s.append(static_cast<size_t>(places) - frac.size(), '0');
        s += frac;
    }
    return s;
}

void
ParallelRunner::printFooter(std::FILE *out) const
{
    // Rate from the monotonic clock (start_ is steady_clock): wall
    // clock adjustments must never produce a negative or inflated
    // jobs/sec in the CI perf-smoke logs.
    const double secs = elapsedSeconds();
    const uint64_t jobs = jobsCompleted();
    const double rate =
        secs > 0.0 ? static_cast<double>(jobs) / secs : 0.0;
    std::fprintf(out,
                 "[parallel] %" PRIu64 " jobs in %ss (%s jobs/sec, "
                 "%u threads)\n",
                 jobs, fixedDecimal(secs, 2).c_str(),
                 fixedDecimal(rate, 1).c_str(), threads());
}

} // namespace sim
} // namespace silc
