/**
 * @file
 * Parallel experiment execution: a work-stealing thread pool plus a
 * ParallelRunner façade over the ExperimentRunner workflow.
 *
 * Every paper figure is a grid of independent (workload, scheme)
 * simulations; each sim::System is self-contained, so the grid is
 * embarrassingly parallel.  Benches submit all jobs up front and then
 * collect results in submission order, which keeps the printed tables
 * byte-identical to a sequential run regardless of thread count.
 *
 * Thread count comes from the SILC_THREADS environment variable
 * (default: hardware_concurrency; 1 preserves the sequential behavior).
 */

#ifndef SILC_SIM_PARALLEL_HH
#define SILC_SIM_PARALLEL_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <deque>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "sim/experiment.hh"

namespace silc {
namespace sim {

/** SILC_THREADS, or hardware_concurrency when unset (never 0). */
unsigned parallelThreadsFromEnv();

/**
 * Locale-stable fixed-point rendering of @p v with @p places decimals
 * (always a '.' separator).  For the stderr perf footers, which CI
 * parses with a fixed regex regardless of the runner's locale.
 * Negative and NaN inputs render as 0.
 */
std::string fixedDecimal(double v, int places);

/**
 * A work-stealing thread pool.
 *
 * Each worker owns a deque; submissions are distributed round-robin,
 * workers pop their own queue from the front and steal from the back of
 * their siblings' queues when idle.  Destruction drains every pending
 * task before joining.
 */
class ThreadPool
{
  public:
    /** @param threads worker count; 0 means parallelThreadsFromEnv(). */
    explicit ThreadPool(unsigned threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue @p task for execution on some worker. */
    void submit(std::function<void()> task);

    unsigned threads() const
    {
        return static_cast<unsigned>(workers_.size());
    }

  private:
    struct WorkerQueue
    {
        std::mutex mutex;
        std::deque<std::function<void()>> tasks;
    };

    void workerLoop(size_t self);
    bool tryPop(size_t self, std::function<void()> &out);

    std::vector<std::unique_ptr<WorkerQueue>> queues_;
    std::vector<std::thread> workers_;
    std::mutex wake_mutex_;
    std::condition_variable wake_cv_;
    std::atomic<size_t> pending_{0};
    std::atomic<size_t> next_queue_{0};
    bool stop_ = false;
};

/**
 * Parallel drop-in for ExperimentRunner: the same config construction
 * and baseline-denominator caching, but jobs run on a ThreadPool and
 * results come back through futures.
 *
 * The no-NM baseline of each workload is resolved exactly once behind a
 * mutex-guarded future cache: the first requester submits the baseline
 * job, later requesters share the same future, so every speedup keeps a
 * shared denominator no matter which thread finishes first.
 *
 * Benches call speedup()/baselineTicks() only from the collecting
 * (main) thread; worker threads never block on futures, so the pool
 * cannot deadlock even with a single worker.
 */
class ParallelRunner
{
  public:
    /** A pending simulation result. */
    using Job = std::shared_future<SimResult>;

    /** @param threads worker count; 0 means parallelThreadsFromEnv(). */
    explicit ParallelRunner(ExperimentOptions opts, unsigned threads = 0);

    /** Flushes the JSON result file (if configured) after draining. */
    ~ParallelRunner();

    const ExperimentOptions &options() const { return opts_; }
    unsigned threads() const { return pool_.threads(); }

    /**
     * Record every subsequently submitted run and write one JSON
     * document (sim/result_writer.hh schema) to @p path when the runner
     * is destroyed or writeJson() is called.  Turns on per-run telemetry
     * so each run embeds its epoch time series.  Empty path disables
     * (so benches can pass jsonOutputPath() unconditionally).  Call
     * before the first submit.
     */
    void setJsonPath(std::string path);

    /** The configured JSON output path ("" when disabled). */
    const std::string &jsonPath() const { return json_path_; }

    /**
     * Wait for all recorded jobs and write the JSON document now.
     * Idempotent; the destructor calls it.  Only call from the main
     * (submitting) thread.
     */
    void writeJson();

    /**
     * Submit one (workload, scheme) pair.  FmOnly requests are routed
     * through the baseline cache so they are never run twice.
     */
    Job submit(const std::string &workload, PolicyKind kind);

    /** Submit a caller-tweaked config (capacity sweeps, ablations). */
    Job submitConfig(SystemConfig cfg);

    /**
     * The cached no-NM baseline run of @p workload; submitted on first
     * request.  Benches call this up front so the denominator runs
     * overlap with the scheme runs.
     */
    Job baseline(const std::string &workload);

    /** Execution ticks of the no-NM baseline (blocks until ready). */
    Tick baselineTicks(const std::string &workload);

    /** Speedup of @p result against its workload's no-NM baseline. */
    double speedup(const SimResult &result);

    /** Simulations finished so far (including baselines). */
    uint64_t jobsCompleted() const
    {
        return jobs_completed_.load(std::memory_order_relaxed);
    }

    /** Baseline simulations actually executed (for tests). */
    uint64_t baselineRuns() const
    {
        return baseline_runs_.load(std::memory_order_relaxed);
    }

    /** Wall-clock seconds since construction. */
    double elapsedSeconds() const;

    /**
     * Print "N jobs in S s (J jobs/sec, T threads)" to @p out.  Goes to
     * stderr by default so stdout tables stay byte-identical across
     * thread counts (the bench_smoke test diffs stdout).
     */
    void printFooter(std::FILE *out = stderr) const;

  private:
    Job submitJob(SystemConfig cfg, bool is_baseline);

    ExperimentOptions opts_;
    std::chrono::steady_clock::time_point start_;

    /** Jobs in submission order for the JSON document (main thread). */
    std::string json_path_;
    std::vector<Job> recorded_;
    bool json_written_ = false;

    std::mutex baseline_mutex_;
    std::map<std::string, Job> baselines_;

    std::atomic<uint64_t> jobs_completed_{0};
    std::atomic<uint64_t> baseline_runs_{0};

    // Last member: destroyed first, so the pool drains and joins every
    // in-flight job before the counters and cache above go away.
    ThreadPool pool_;
};

} // namespace sim
} // namespace silc

#endif // SILC_SIM_PARALLEL_HH
