#include "sim/result_writer.hh"

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <utility>

#include "common/logging.hh"
#include "sample/sampling.hh"
#include "telemetry/json.hh"
#include "telemetry/series.hh"

namespace silc {
namespace sim {

using telemetry::jsonDouble;
using telemetry::jsonString;

std::string
jsonOutputPath(int argc, char *const argv[])
{
    for (int i = 1; i < argc; ++i) {
        const char *a = argv[i];
        if (std::strcmp(a, "--json") == 0) {
            if (i + 1 >= argc)
                fatal("--json requires a path argument");
            return argv[i + 1];
        }
        if (std::strncmp(a, "--json=", 7) == 0)
            return a + 7;
    }
    const char *env = std::getenv("SILC_JSON");
    return env == nullptr ? std::string() : std::string(env);
}

namespace {

void
field(std::ostream &os, const char *name, uint64_t v, bool &first)
{
    os << (first ? "" : ",") << '"' << name << "\":" << v;
    first = false;
}

void
field(std::ostream &os, const char *name, double v, bool &first)
{
    os << (first ? "" : ",") << '"' << name << "\":" << jsonDouble(v);
    first = false;
}

void
field(std::ostream &os, const char *name, const std::string &v,
      bool &first)
{
    os << (first ? "" : ",") << '"' << name << "\":" << jsonString(v);
    first = false;
}

void
writeSeriesJson(std::ostream &os, const telemetry::TimeSeries &ts)
{
    os << "{\"run\":" << jsonString(ts.header.run_id)
       << ",\"epoch_ticks\":" << ts.header.epoch_ticks << ",\"probes\":[";
    for (size_t i = 0; i < ts.header.probes.size(); ++i) {
        if (i)
            os << ',';
        os << jsonString(ts.header.probes[i]);
    }
    os << "],\"epochs\":[";
    for (size_t i = 0; i < ts.epochs.size(); ++i) {
        const auto &e = ts.epochs[i];
        if (i)
            os << ',';
        os << "{\"epoch\":" << e.index << ",\"tick\":" << e.tick
           << ",\"elapsed\":" << e.elapsed << ",\"values\":[";
        for (size_t j = 0; j < e.values.size(); ++j) {
            if (j)
                os << ',';
            os << jsonDouble(e.values[j]);
        }
        os << "]}";
    }
    os << "]}";
}

} // namespace

void
writeResultJson(std::ostream &os, const SimResult &r)
{
    bool first = true;
    os << '{';
    field(os, "scheme", r.scheme, first);
    field(os, "workload", r.workload, first);
    field(os, "cores", static_cast<uint64_t>(r.cores), first);
    field(os, "instructions", r.instructions, first);
    field(os, "ticks", r.ticks, first);
    field(os, "hit_tick_limit", static_cast<uint64_t>(r.hit_tick_limit),
          first);
    field(os, "ipc", r.ipc, first);
    field(os, "llc_misses", r.llc_misses, first);
    field(os, "mpki", r.mpki, first);
    field(os, "footprint_pages", r.footprint_pages, first);
    field(os, "access_rate", r.access_rate, first);
    field(os, "avg_miss_latency", r.avg_miss_latency, first);
    field(os, "nm_demand_bytes", r.nm_demand_bytes, first);
    field(os, "fm_demand_bytes", r.fm_demand_bytes, first);
    field(os, "nm_total_bytes", r.nm_total_bytes, first);
    field(os, "fm_total_bytes", r.fm_total_bytes, first);
    field(os, "migration_bytes", r.migration_bytes, first);
    field(os, "metadata_bytes", r.metadata_bytes, first);
    field(os, "nm_row_hit_rate", r.nm_row_hit_rate, first);
    field(os, "fm_row_hit_rate", r.fm_row_hit_rate, first);
    field(os, "nm_bus_utilization", r.nm_bus_utilization, first);
    field(os, "fm_bus_utilization", r.fm_bus_utilization, first);
    field(os, "nm_avg_read_queue_ticks", r.nm_avg_read_queue_ticks,
          first);
    field(os, "fm_avg_read_queue_ticks", r.fm_avg_read_queue_ticks,
          first);
    field(os, "energy_nm_j", r.energy_nm_j, first);
    field(os, "energy_fm_j", r.energy_fm_j, first);
    field(os, "energy_total_j", r.energy_total_j, first);
    field(os, "edp", r.edp, first);
    field(os, "seconds", r.seconds(), first);
    field(os, "nm_demand_fraction", r.nmDemandFraction(), first);
    if (r.sampling) {
        const auto &sr = *r.sampling;
        os << ",\"sampling\":{\"period\":" << sr.period
           << ",\"window\":" << sr.window << ",\"warmup\":" << sr.warmup
           << ",\"checkpoints\":" << sr.checkpoints
           << ",\"windows\":" << sr.windows << ",\"early_stopped\":"
           << (sr.early_stopped ? 1 : 0)
           << ",\"warm_instructions\":" << sr.warm_instructions
           << ",\"metrics\":[";
        for (size_t i = 0; i < sr.metrics.size(); ++i) {
            const auto &m = sr.metrics[i];
            if (i)
                os << ',';
            os << "{\"name\":" << jsonString(m.name)
               << ",\"mean\":" << jsonDouble(m.mean)
               << ",\"ci_half\":" << jsonDouble(m.ci_half)
               << ",\"n\":" << m.n << '}';
        }
        os << "]}";
    }
    if (r.telemetry) {
        os << ",\"telemetry\":";
        writeSeriesJson(os, *r.telemetry);
    }
    os << '}';
}

ResultWriter::ResultWriter(std::string path, ExperimentOptions opts)
    : path_(std::move(path)), opts_(opts)
{
}

void
ResultWriter::add(const SimResult &r)
{
    results_.push_back(r);
}

void
ResultWriter::serialize(std::ostream &os) const
{
    os << "{\"schema\":" << jsonString(kResultSchemaVersion)
       << ",\"options\":{\"cores\":" << opts_.cores
       << ",\"instructions_per_core\":" << opts_.instructions_per_core
       << ",\"nm_bytes\":" << opts_.nm_bytes
       << ",\"fm_bytes\":" << opts_.fm_bytes << ",\"seed\":" << opts_.seed
       << ",\"epoch_ticks\":" << opts_.epoch_ticks << "},\"runs\":[";
    for (size_t i = 0; i < results_.size(); ++i) {
        if (i)
            os << ',';
        os << "\n";
        writeResultJson(os, results_[i]);
    }
    os << "\n]}\n";
}

void
ResultWriter::write() const
{
    std::ofstream os(path_, std::ios::trunc);
    if (!os.is_open())
        fatal("ResultWriter: cannot open %s for writing", path_.c_str());
    serialize(os);
}

} // namespace sim
} // namespace silc
