/**
 * @file
 * Structured result export: serializes a sequence of SimResults (plus
 * their embedded telemetry time series) into one machine-readable JSON
 * document with a stable, versioned schema, so the figure benches can
 * finally be diffed and trended across commits instead of scraping
 * printf tables.
 *
 * Schema (version "silc.results.v1"):
 *
 *   {
 *     "schema": "silc.results.v1",
 *     "options": { cores, instructions_per_core, nm_bytes, fm_bytes,
 *                  seed, epoch_ticks },
 *     "runs": [
 *       {
 *         <every scalar SimResult field, same names as the struct>,
 *         "seconds": ..., "nm_demand_fraction": ...,
 *         "telemetry": {            // only when recorded
 *           "run": "mcf/silcfm",
 *           "epoch_ticks": 100000,
 *           "probes": ["policy.hitRate", ...],
 *           "epochs": [ {"epoch":0,"tick":...,"elapsed":...,
 *                        "values":[...]}, ... ]
 *         }
 *       }, ...
 *     ]
 *   }
 *
 * Runs appear in add() order; the ParallelRunner adds them in
 * submission order, which makes the file byte-identical across
 * SILC_THREADS values (doubles render via shortest-round-trip
 * formatting, see telemetry/json.hh).
 */

#ifndef SILC_SIM_RESULT_WRITER_HH
#define SILC_SIM_RESULT_WRITER_HH

#include <ostream>
#include <string>
#include <vector>

#include "sim/experiment.hh"
#include "sim/metrics.hh"

namespace silc {
namespace sim {

/** Schema identifier written into every document. */
inline constexpr const char *kResultSchemaVersion = "silc.results.v1";

/**
 * Resolve the shared JSON-output knob of the bench binaries: a
 * "--json <path>" / "--json=<path>" argument wins over the SILC_JSON
 * environment variable; empty means disabled.
 */
std::string jsonOutputPath(int argc, char *const argv[]);

/** One run as a JSON object (no trailing newline). */
void writeResultJson(std::ostream &os, const SimResult &r);

class ResultWriter
{
  public:
    /** @param path output file; @p opts recorded in the header. */
    ResultWriter(std::string path, ExperimentOptions opts);

    /** Append one run; call in the order runs should appear. */
    void add(const SimResult &r);

    size_t runs() const { return results_.size(); }
    const std::string &path() const { return path_; }

    /** Serialize the document to @p os. */
    void serialize(std::ostream &os) const;

    /** Write the document to path(); fatal() when the open fails. */
    void write() const;

  private:
    std::string path_;
    ExperimentOptions opts_;
    std::vector<SimResult> results_;
};

} // namespace sim
} // namespace silc

#endif // SILC_SIM_RESULT_WRITER_HH
