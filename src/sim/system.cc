#include "sim/system.hh"

#include <cinttypes>

#include "check/differential.hh"
#include "common/logging.hh"
#include "common/serialize.hh"
#include "common/stats.hh"
#include "policy/static_random.hh"
#include "sim/domain.hh"
#include "trace/file_trace.hh"
#include "trace/profiles.hh"

namespace silc {
namespace sim {

const char *
policyKindName(PolicyKind kind)
{
    switch (kind) {
      case PolicyKind::FmOnly: return "fmonly";
      case PolicyKind::Random: return "rand";
      case PolicyKind::Hma: return "hma";
      case PolicyKind::Cameo: return "cam";
      case PolicyKind::CameoP: return "camp";
      case PolicyKind::Pom: return "pom";
      case PolicyKind::SilcFm: return "silcfm";
    }
    return "?";
}

PolicyKind
policyKindFromName(const std::string &name)
{
    if (name == "fmonly") return PolicyKind::FmOnly;
    if (name == "rand") return PolicyKind::Random;
    if (name == "hma") return PolicyKind::Hma;
    if (name == "cam" || name == "cameo") return PolicyKind::Cameo;
    if (name == "camp") return PolicyKind::CameoP;
    if (name == "pom") return PolicyKind::Pom;
    if (name == "silcfm" || name == "silc") return PolicyKind::SilcFm;
    fatal("unknown policy '%s'", name.c_str());
}

SystemConfig
SystemConfig::defaults()
{
    SystemConfig cfg;

    cfg.l1i.name = "l1i";
    cfg.l1i.size_bytes = 64 * 1024;
    cfg.l1i.associativity = 2;
    cfg.l1i.latency_cycles = 4;

    cfg.l1d.name = "l1d";
    cfg.l1d.size_bytes = 16 * 1024;
    cfg.l1d.associativity = 4;
    cfg.l1d.latency_cycles = 4;

    // Table II uses an 8MB shared L2 against multi-GB footprints
    // (ratio >= 100x); this scaled system keeps the footprint:LLC ratio
    // by using 512KB against 16-64MB footprints (see DESIGN.md).
    cfg.l2.name = "l2";
    cfg.l2.size_bytes = 256 * 1024;
    cfg.l2.associativity = 16;
    cfg.l2.latency_cycles = 11;

    cfg.nm_timing = dram::hbm2Params();
    cfg.fm_timing = dram::ddr3Params();
    // Bandwidth scaling: the paper runs 16 cores against 128-bit x 8
    // HBM channels and 64-bit x 4 DDR3 channels (4:1 NM:FM bandwidth)
    // and is explicitly bandwidth-bound.  This scaled system (8 cores,
    // 1/4 capacities) keeps the 4:1 ratio and the saturation regime by
    // using 64-bit HBM pseudo-channels and 2 DDR3 channels.
    cfg.nm_timing.bus_width_bits = 64;
    cfg.fm_timing.channels = 2;
    return cfg;
}

void
SystemConfig::validate() const
{
    if (cores == 0)
        fatal("system: at least one core required");
    if (policy != PolicyKind::FmOnly) {
        if (nm_bytes == 0 || fm_bytes % nm_bytes != 0)
            fatal("system: FM capacity must be a multiple of NM "
                  "capacity");
    }
    if (instructions_per_core == 0)
        fatal("system: zero instruction budget");
    if (sim_threads == 0)
        fatal("system: sim_threads must be >= 1 (1 = sequential loop)");
}

namespace {

std::unique_ptr<policy::FlatMemoryPolicy>
makePolicy(const SystemConfig &cfg, policy::PolicyEnv env)
{
    switch (cfg.policy) {
      case PolicyKind::FmOnly:
        return std::make_unique<policy::FmOnlyPolicy>(env);
      case PolicyKind::Random:
        return std::make_unique<policy::StaticRandomPolicy>(env);
      case PolicyKind::Hma:
        return std::make_unique<policy::HmaPolicy>(env, cfg.hma);
      case PolicyKind::Cameo: {
        policy::CameoParams p = cfg.cameo;
        p.prefetch_degree = 0;
        return std::make_unique<policy::CameoPolicy>(env, p);
      }
      case PolicyKind::CameoP: {
        policy::CameoParams p = cfg.cameo;
        if (p.prefetch_degree == 0)
            p.prefetch_degree = 3;
        return std::make_unique<policy::CameoPolicy>(env, p);
      }
      case PolicyKind::Pom:
        return std::make_unique<policy::PomPolicy>(env, cfg.pom);
      case PolicyKind::SilcFm:
        return std::make_unique<core::SilcFmPolicy>(env, cfg.silc);
    }
    panic("unreachable policy kind");
}

} // namespace

// ---- MemoryHierarchy ---------------------------------------------------

MemoryHierarchy::MemoryHierarchy(const SystemConfig &cfg,
                                 Translation &translation,
                                 policy::FlatMemoryPolicy &policy,
                                 EventQueue &events)
    : cfg_(cfg),
      translation_(translation),
      policy_(policy),
      events_(events),
      l2_(cfg.l2),
      mshr_(cfg.mshr_entries, cfg.mshr_per_core)
{
    l1i_.reserve(cfg.cores);
    l1d_.reserve(cfg.cores);
    for (uint32_t c = 0; c < cfg.cores; ++c) {
        cache::CacheParams pi = cfg.l1i;
        cache::CacheParams pd = cfg.l1d;
        pi.name = "l1i" + std::to_string(c);
        pd.name = "l1d" + std::to_string(c);
        l1i_.emplace_back(pi);
        l1d_.emplace_back(pd);
    }
    last_iline_.assign(cfg.cores, kAddrInvalid);
    llc_misses_.assign(cfg.cores, 0);
}

uint64_t
MemoryHierarchy::l1dAccesses() const
{
    uint64_t n = 0;
    for (const auto &c : l1d_)
        n += c.hits() + c.misses();
    return n;
}

bool
MemoryHierarchy::access(CoreId core, Addr vaddr, Addr pc, bool is_write,
                        std::function<void(Tick)> done, Tick now)
{
    // Instruction side: functional, virtually addressed, per 64B line.
    const Addr iline = subblockAddr(pc);
    if (iline != last_iline_[core]) {
        last_iline_[core] = iline;
        l1i_[core].access(iline, false);
    }

    const Addr paddr = translation_.translate(core, vaddr);
    cache::Cache &l1 = l1d_[core];

    // L1 hit path.
    if (l1.accessIfHit(paddr, is_write)) {
        if (done)
            done(now + cfg_.l1_latency);
        return true;
    }

    // L2 hit path: a hit updates L2 state immediately; a miss leaves the
    // caches untouched so MSHR rejection below has nothing to undo.
    const bool l2_hit = l2_.accessIfHit(paddr, false);
    const Addr block = subblockAddr(paddr);

    if (!l2_hit) {
        if (warming_) {
            // Functional warming: the policy's metadata state machine
            // runs in full (it is in functional mode, so nothing
            // reaches the DRAM devices and the demand completes
            // synchronously), the caches fill immediately, and the MSHR
            // file is bypassed entirely.  Skipping MSHR coalescing is
            // the standard functional-warming approximation: with no
            // outstanding misses every access resolves against
            // up-to-date cache and metadata state.
            ++llc_misses_[core];
            ++llc_misses_total_;
            policy_.demandAccess(block, is_write, core, pc, nullptr,
                                 now);
            auto o2 = l2_.fill(paddr, false);
            if (o2.writeback)
                policy_.writeback(o2.writeback_addr, core, now);
            auto o1 = l1.fill(paddr, is_write);
            if (o1.writeback) {
                auto ol2 = l2_.fill(o1.writeback_addr, true);
                if (ol2.writeback)
                    policy_.writeback(ol2.writeback_addr, core, now);
            }
            l1.noteMiss();
            l2_.noteMiss();
            if (done)
                done(now + 1);
            return true;
        }

        // Demand miss at the LLC: needs an MSHR.
        auto fill_cb = [this, core, paddr, is_write,
                        done = std::move(done)](Tick t) mutable {
            // Install into both levels; victims cascade downwards.
            auto o2 = l2_.fill(paddr, false);
            if (o2.writeback)
                policy_.writeback(o2.writeback_addr, core, t);
            auto o1 = l1d_[core].fill(paddr, is_write);
            if (o1.writeback) {
                auto ol2 = l2_.fill(o1.writeback_addr, true);
                if (ol2.writeback)
                    policy_.writeback(ol2.writeback_addr, core, t);
            }
            if (done)
                done(t + cfg_.fill_latency);
        };

        const auto alloc = mshr_.allocate(block, core, std::move(fill_cb));
        if (alloc == cache::MshrAllocation::NoCapacity)
            return false;

        ++llc_misses_[core];
        ++llc_misses_total_;

        if (alloc == cache::MshrAllocation::Primary) {
            policy_.demandAccess(
                block, is_write, core, pc,
                [this, block, now](Tick t) {
                    miss_latency_sum_ += static_cast<double>(t - now);
                    ++misses_completed_;
                    mshr_.complete(block, t);
                },
                now);
        }
        // Record the misses in statistics; the functional install is
        // deferred to the fill callback.
        l1.noteMiss();
        l2_.noteMiss();
        return true;
    }

    // L2 hit (already counted above): fill L1, cascade any dirty L1
    // victim into L2.
    auto o1 = l1.access(paddr, is_write);
    if (o1.writeback) {
        auto ol2 = l2_.fill(o1.writeback_addr, true);
        if (ol2.writeback)
            policy_.writeback(ol2.writeback_addr, core, now);
    }
    if (done)
        done(now + cfg_.l2_latency);
    return true;
}

void
MemoryHierarchy::snapshot(BlobWriter &w) const
{
    w.putU32(static_cast<uint32_t>(l1d_.size()));
    for (size_t c = 0; c < l1d_.size(); ++c) {
        l1i_[c].snapshot(w);
        l1d_[c].snapshot(w);
    }
    l2_.snapshot(w);
    for (Addr a : last_iline_)
        w.putU64(a);
    for (uint64_t m : llc_misses_)
        w.putU64(m);
    w.putU64(llc_misses_total_);
    w.putF64(miss_latency_sum_);
    w.putU64(misses_completed_);
}

void
MemoryHierarchy::restore(BlobReader &r)
{
    const uint32_t cores = r.getU32();
    if (cores != l1d_.size())
        fatal("hierarchy checkpoint core count %u != configured %zu",
              cores, l1d_.size());
    for (size_t c = 0; c < l1d_.size(); ++c) {
        l1i_[c].restore(r);
        l1d_[c].restore(r);
    }
    l2_.restore(r);
    for (Addr &a : last_iline_)
        a = r.getU64();
    for (uint64_t &m : llc_misses_)
        m = r.getU64();
    llc_misses_total_ = r.getU64();
    miss_latency_sum_ = r.getF64();
    misses_completed_ = r.getU64();
}

// ---- System ------------------------------------------------------------

System::System(SystemConfig cfg)
    : cfg_(std::move(cfg))
{
    cfg_.validate();

    if (cfg_.policy != PolicyKind::FmOnly) {
        nm_ = std::make_unique<dram::DramSystem>(cfg_.nm_timing,
                                                 cfg_.nm_bytes, events_);
    }
    fm_ = std::make_unique<dram::DramSystem>(cfg_.fm_timing,
                                             cfg_.fm_bytes, events_);

    policy::PolicyEnv env;
    env.nm = nm_.get();
    env.fm = fm_.get();
    env.events = &events_;
    policy_ = makePolicy(cfg_, env);

    translation_ = std::make_unique<Translation>(
        policy_->flatSpaceBytes(), cfg_.seed);

    hierarchy_ = std::make_unique<MemoryHierarchy>(cfg_, *translation_,
                                                   *policy_, events_);

    cpu::CoreParams core_params = cfg_.core_params;
    core_params.instruction_budget = cfg_.instructions_per_core;

    for (uint32_t c = 0; c < cfg_.cores; ++c) {
        if (!cfg_.trace_file.empty()) {
            traces_.push_back(std::make_unique<trace::FileTraceReader>(
                cfg_.trace_file));
        } else {
            const trace::WorkloadProfile &profile =
                trace::findProfile(cfg_.workload);
            traces_.push_back(
                std::make_unique<trace::SyntheticGenerator>(
                    profile, cfg_.seed * 7919 + c * 104729 + 13));
        }
        cores_.push_back(std::make_unique<cpu::Core>(
            c, core_params, *traces_.back(), *hierarchy_));
    }

    if (cfg_.telemetry.enabled)
        attachTelemetry();

    if (cfg_.check) {
        if (cfg_.policy != PolicyKind::SilcFm) {
            fatal("system: check=1 requires the silcfm policy (the "
                  "differential oracle only models SILC-FM)");
        }
        auto &silc_policy = static_cast<core::SilcFmPolicy &>(*policy_);
        check::DifferentialChecker::Options opts;
        opts.panic_on_divergence = true;
        checker_ = std::make_unique<check::DifferentialChecker>(
            silc_policy, opts);
        silc_policy.setObserver(checker_.get());
    }
}

void
System::attachTelemetry()
{
    recorder_ = std::make_unique<telemetry::Recorder>(
        cfg_.telemetry,
        cfg_.workload + "/" + policyKindName(cfg_.policy));
    telemetry::Sampler &s = recorder_->sampler();

    policy_->registerTelemetry(s);
    if (nm_)
        nm_->registerTelemetry(s, "nm");
    fm_->registerTelemetry(s, "fm");

    // Cores aggregate: the figures of interest (warm-up, phase shifts)
    // show up identically on every core of a rate-mode run, so one
    // averaged series keeps the probe list readable.
    const double inv_cores = 1.0 / static_cast<double>(cfg_.cores);
    s.addRate("cpu.ipc", [this, inv_cores] {
        double retired = 0.0;
        for (const auto &core : cores_)
            retired += static_cast<double>(core->retired());
        return retired * inv_cores;
    });
    s.addGauge("cpu.robOccupancy", [this, inv_cores] {
        double occ = 0.0;
        for (const auto &core : cores_)
            occ += static_cast<double>(core->robOccupancy());
        return occ * inv_cores;
    });
    s.addRate("cpu.stallFraction", [this, inv_cores] {
        double stalls = 0.0;
        for (const auto &core : cores_)
            stalls += static_cast<double>(core->stallCycles());
        return stalls * inv_cores;
    });

    recorder_->start(events_);
}

System::~System() = default;

SimResult
System::run()
{
    if (cfg_.sim_threads >= 2)
        return runWindowed();

    return collectResult(runToBudget());
}

bool
System::runToBudget()
{
    silc_assert(cfg_.sim_threads == 1);

    // Resumable: cycle_ is a member, so after extending the per-core
    // budgets a second call re-enters at the pause cycle.  Re-running
    // that cycle is idempotent — its events already fired (runDue pops
    // nothing), the ROB is empty so the retire loop is a no-op, and the
    // device ticks see unchanged queues — so dispatch resumes exactly
    // where the previous budget ended.
    bool all_done = false;
    while (cycle_ < cfg_.max_ticks) {
        const Tick cycle = cycle_;
        events_.runDue(cycle);
        all_done = true;
        if (functional_) {
            // Functional warming: same access stream as tick() (width
            // instructions per core per cycle, cores in order), minus
            // the ROB machinery — see Core::functionalTick.
            for (auto &core : cores_) {
                core->functionalTick(cycle);
                all_done &= core->done();
            }
        } else {
            for (auto &core : cores_) {
                core->tick(cycle);
                all_done &= core->done();
            }
        }
        if (nm_)
            nm_->tick(cycle);
        fm_->tick(cycle);
        policy_->tick(cycle);
        if (all_done)
            break;
        cycle_ = cycle + 1;

        // Fast-forward: when every live core is in the counters-only
        // stall state, nothing can happen before the earliest wakeup
        // among the cores' stall horizons, pending events (completions,
        // telemetry epochs), the DRAM scan registers and the policy's
        // epoch hook — each skipped cycle would have been a strict
        // no-op apart from the stall counters, which are bulk-added.
        Tick wake = kTickNever;
        bool skippable = true;
        for (const auto &core : cores_) {
            if (core->done())
                continue;
            const Tick su = core->stallUntil();
            if (su <= cycle_) {
                skippable = false;
                break;
            }
            wake = std::min(wake, su);
        }
        if (!skippable)
            continue;
        wake = std::min(wake, events_.nextEventTick());
        if (nm_)
            wake = std::min(wake, nm_->nextWakeTick());
        wake = std::min(wake, fm_->nextWakeTick());
        wake = std::min(wake, policy_->nextWakeTick());
        wake = std::min(wake, cfg_.max_ticks);
        if (wake <= cycle_)
            continue;
        const uint64_t skipped = wake - cycle_;
        for (auto &core : cores_) {
            if (!core->done())
                core->addStalledCycles(skipped);
        }
        cycle_ = wake;
    }

    return all_done;
}

void
System::setFunctionalMode(bool on)
{
    policy_->setFunctionalMode(on);
    hierarchy_->setWarming(on);
    functional_ = on;
}

void
System::setPerCoreBudget(uint64_t instructions)
{
    cfg_.instructions_per_core = instructions;
    for (auto &core : cores_)
        core->setInstructionBudget(instructions);
}

void
System::snapshotState(BlobWriter &w) const
{
    // Only legal at a quiesced functional-mode pause point: nothing in
    // flight, so timing state need not (and must not) be captured.
    silc_assert(hierarchy_->mshrs().size() == 0);
    silc_assert(fm_->idle());
    silc_assert(!nm_ || nm_->idle());

    w.section("SILC");
    w.putU32(1); // checkpoint format version
    w.putStr(policy_->name());
    w.putU32(cfg_.cores);

    w.section("TRNS");
    translation_->snapshot(w);

    w.section("HIER");
    hierarchy_->snapshot(w);

    w.section("POLI");
    policy_->snapshotState(w);

    for (const auto &t : traces_) {
        w.section("TRCE");
        t->snapshot(w);
    }
}

void
System::restoreState(BlobReader &r)
{
    r.expect("SILC");
    const uint32_t version = r.getU32();
    if (version != 1)
        fatal("checkpoint format version %u unsupported (expected 1)",
              version);
    const std::string pname = r.getStr();
    if (pname != policy_->name())
        fatal("checkpoint policy '%s' does not match system policy '%s'",
              pname.c_str(), policy_->name());
    const uint32_t cores = r.getU32();
    if (cores != cfg_.cores)
        fatal("checkpoint core count %u does not match config (%u)",
              cores, cfg_.cores);

    r.expect("TRNS");
    translation_->restore(r);

    r.expect("HIER");
    hierarchy_->restore(r);

    r.expect("POLI");
    policy_->restoreState(r);

    for (auto &t : traces_) {
        r.expect("TRCE");
        t->restore(r);
    }
    r.done();
}

/**
 * The conservative-lookahead windowed loop.  Execution alternates
 * between a serial "core phase" — events, cores and the policy run
 * tick-by-tick exactly as in the sequential loop, with DRAM enqueues
 * buffered per channel instead of scanned — and a per-channel "replay"
 * of the window's DRAM scans, dispatched across the DomainScheduler's
 * lanes.  The window may not extend past the earliest tick any
 * buffered or armed scan could complete (DramSystem::windowHorizon():
 * scan tick + tCAS + one burst), so the core phase can never miss a
 * completion; the replay's deferred completions then merge into the
 * event queue with explicitly composed (tick, phase, channel) keys,
 * reproducing the sequential scheduler's tie-breaking bit-for-bit.
 * Windows also end at telemetry epoch boundaries so epoch probes
 * observe post-replay device state, exactly like the sequential loop's
 * phase order at the epoch tick.
 */
SimResult
System::runWindowed()
{
    if (nm_)
        nm_->setWindowMode(true);
    fm_->setWindowMode(true);
    DomainScheduler sched(nm_.get(), *fm_, cfg_.sim_threads);
    window_stats_ = std::make_unique<WindowStats>();

    const auto horizon = [this]() -> Tick {
        Tick h = fm_->windowHorizon();
        if (nm_)
            h = std::min(h, nm_->windowHorizon());
        return h;
    };

    Tick cycle = 0;
    bool all_done = false;
    while (cycle < cfg_.max_ticks && !all_done) {
        const Tick w0 = cycle;
        if (nm_)
            nm_->beginWindow();
        fm_->beginWindow();

        // Hard window end: the tick limit, or the next telemetry epoch
        // (whose probes must see the scans of every prior tick).  At a
        // window starting exactly on the epoch tick the event fires
        // inside this window, so the cap is the epoch after it.
        Tick w1_cap = cfg_.max_ticks;
        if (recorder_) {
            Tick e = recorder_->nextEpochTick();
            if (e != kTickNever) {
                if (e <= w0)
                    e += cfg_.telemetry.epoch_ticks;
                w1_cap = std::min(w1_cap, e);
            }
        }

        // ---- serial core phase -----------------------------------
        while (cycle < w1_cap && cycle < horizon()) {
            events_.setOrderPoint(cycle, 0);
            events_.runDue(cycle);
            all_done = true;
            for (auto &core : cores_) {
                core->tick(cycle);
                all_done &= core->done();
            }
            // The sequential loop's device phase only stamps the tick
            // here; the scans themselves replay at the window edge.
            if (nm_)
                nm_->stampTick(cycle);
            fm_->stampTick(cycle);
            events_.setOrderPoint(cycle, 3);
            policy_->tick(cycle);
            ++cycle;
            if (all_done)
                break;

            // Fast-forward across counters-only stall cycles, clamped
            // to the window bounds.  DRAM wakeups are deliberately
            // absent: the scans they guard replay at the window edge,
            // and everything they could feed back lands at or past the
            // horizon.  (The sequential loop executes those
            // scan-wakeup ticks as stall ticks; the bulk-added
            // counters are identical either way.)
            Tick wake = kTickNever;
            bool skippable = true;
            for (const auto &core : cores_) {
                if (core->done())
                    continue;
                const Tick su = core->stallUntil();
                if (su <= cycle) {
                    skippable = false;
                    break;
                }
                wake = std::min(wake, su);
            }
            if (!skippable)
                continue;
            wake = std::min(wake, events_.nextEventTick());
            wake = std::min(wake, policy_->nextWakeTick());
            wake = std::min(wake, horizon());
            wake = std::min(wake, w1_cap);
            if (wake <= cycle)
                continue;
            const uint64_t skipped = wake - cycle;
            for (auto &core : cores_) {
                if (!core->done())
                    core->addStalledCycles(skipped);
            }
            cycle = wake;
        }

        // ---- window edge: replay the channels' scans, merge ------
        const Tick replay_end = cycle;
        WindowStats &ws = sched.stats();
        ++ws.windows;
        ws.window_ticks += replay_end - w0;
        if (replay_end < w1_cap)
            ++ws.horizon_capped;
        sched.replay(replay_end);
    }

    *window_stats_ = sched.stats();
    if (nm_)
        nm_->setWindowMode(false);
    fm_->setWindowMode(false);
    return collectResult(all_done);
}

SimResult
System::collectResult(bool all_done)
{
    SimResult r;
    r.scheme = policyKindName(cfg_.policy);
    r.workload = cfg_.workload;
    r.cores = cfg_.cores;
    r.instructions =
        cfg_.instructions_per_core * static_cast<uint64_t>(cfg_.cores);
    r.hit_tick_limit = !all_done;

    Tick finish = 0;
    for (auto &core : cores_)
        finish = std::max(finish, core->finishTick());
    r.ticks = all_done ? finish : cfg_.max_ticks;
    if (r.ticks == 0)
        r.ticks = 1;

    if (!all_done) {
        warn("run %s/%s hit the tick limit (%" PRIu64 ")",
             r.scheme.c_str(), r.workload.c_str(), cfg_.max_ticks);
    }

    r.ipc = static_cast<double>(r.instructions) /
        static_cast<double>(r.ticks) / cfg_.cores;
    r.llc_misses = hierarchy_->llcMisses();
    r.mpki = 1000.0 * static_cast<double>(r.llc_misses) /
        static_cast<double>(r.instructions);
    r.footprint_pages = translation_->pagesAllocated();
    r.avg_miss_latency = hierarchy_->avgMissLatency();
    r.access_rate = policy_->accessRate();

    const auto demand = static_cast<size_t>(dram::TrafficClass::Demand);
    const auto migr = static_cast<size_t>(dram::TrafficClass::Migration);
    const auto meta = static_cast<size_t>(dram::TrafficClass::Metadata);
    const auto &ft = fm_->traffic();
    r.fm_demand_bytes = ft.read[demand] + ft.write[demand];
    r.fm_total_bytes = ft.total();
    r.migration_bytes = ft.read[migr] + ft.write[migr];
    r.metadata_bytes = ft.read[meta] + ft.write[meta];
    if (nm_) {
        const auto &nt = nm_->traffic();
        r.nm_demand_bytes = nt.read[demand] + nt.write[demand];
        r.nm_total_bytes = nt.total();
        r.migration_bytes += nt.read[migr] + nt.write[migr];
        r.metadata_bytes += nt.read[meta] + nt.write[meta];
    }

    const uint64_t fm_rb = fm_->rowHits() + fm_->rowMisses();
    r.fm_row_hit_rate = fm_rb == 0
        ? 0.0
        : static_cast<double>(fm_->rowHits()) / fm_rb;
    r.fm_bus_utilization = fm_->busUtilization(r.ticks);
    r.fm_avg_read_queue_ticks = fm_->avgReadQueueDelay();
    if (nm_) {
        const uint64_t nm_rb = nm_->rowHits() + nm_->rowMisses();
        r.nm_row_hit_rate = nm_rb == 0
            ? 0.0
            : static_cast<double>(nm_->rowHits()) / nm_rb;
        r.nm_bus_utilization = nm_->busUtilization(r.ticks);
        r.nm_avg_read_queue_ticks = nm_->avgReadQueueDelay();
    }

    const double cpu_freq_hz = 3.2e9;
    r.energy_fm_j = fm_->energyJoules(r.ticks, cpu_freq_hz);
    r.energy_nm_j =
        nm_ ? nm_->energyJoules(r.ticks, cpu_freq_hz) : 0.0;
    r.energy_total_j = r.energy_fm_j + r.energy_nm_j;
    r.edp = r.energy_total_j * r.seconds(cpu_freq_hz);

    if (recorder_) {
        recorder_->finish(r.ticks);
        r.telemetry = recorder_->series();
    }

    // One last deep sweep of the complete metadata state; any
    // divergence panics (checker_ runs in panic_on_divergence mode).
    if (checker_)
        checker_->verifyFullState();
    return r;
}


void
System::dumpStats(std::ostream &os) const
{
    stats::StatSet set;
    // The set holds pointers; keep the stat objects alive for the dump.
    std::vector<std::unique_ptr<stats::Scalar>> scalars;
    std::vector<std::unique_ptr<stats::Average>> averages;

    auto add_scalar = [&](const std::string &name, uint64_t value,
                          const char *desc) {
        auto stat = std::make_unique<stats::Scalar>();
        *stat += value;
        set.add(name, stat->describe(desc));
        scalars.push_back(std::move(stat));
    };
    auto add_avg = [&](const std::string &name, double value,
                       const char *desc) {
        auto stat = std::make_unique<stats::Average>();
        stat->sample(value);
        set.add(name, stat->describe(desc));
        averages.push_back(std::move(stat));
    };

    for (uint32_t c = 0; c < cfg_.cores; ++c) {
        const std::string pfx = "core" + std::to_string(c) + ".";
        const cpu::Core &core = *cores_[c];
        add_scalar(pfx + "retired", core.retired(),
                   "instructions retired");
        add_scalar(pfx + "loads", core.loads(), "loads issued");
        add_scalar(pfx + "stores", core.stores(), "stores issued");
        add_scalar(pfx + "robFullCycles", core.robFullCycles(),
                   "dispatch cycles blocked on a full ROB");
        add_scalar(pfx + "memStallCycles", core.memStallCycles(),
                   "dispatch cycles blocked on memory backpressure");
        add_scalar(pfx + "finishTick", core.finishTick(),
                   "tick the budget retired");
        const cache::Cache &l1 = hierarchy_->l1d(c);
        add_scalar(pfx + "l1d.hits", l1.hits(), "L1D hits");
        add_scalar(pfx + "l1d.misses", l1.misses(), "L1D misses");
    }

    add_scalar("l2.hits", hierarchy_->l2().hits(), "shared L2 hits");
    add_scalar("l2.misses", hierarchy_->l2().misses(),
               "shared L2 misses");
    add_scalar("l2.writebacks", hierarchy_->l2().writebacks(),
               "dirty L2 evictions");
    add_scalar("mshr.coalesced", hierarchy_->mshrs().coalesced(),
               "misses merged into outstanding entries");
    add_scalar("mshr.rejections", hierarchy_->mshrs().rejections(),
               "allocations rejected (backpressure)");
    add_scalar("llc.misses", hierarchy_->llcMisses(),
               "demand misses past the LLC");
    add_avg("llc.avgMissLatency", hierarchy_->avgMissLatency(),
            "mean ticks from miss to fill");

    auto add_dram = [&](const char *pfx, const dram::DramSystem &dev) {
        const std::string p(pfx);
        add_scalar(p + ".reads", dev.readsServed(), "reads serviced");
        add_scalar(p + ".writes", dev.writesServed(),
                   "writes serviced");
        add_scalar(p + ".rowHits", dev.rowHits(), "row buffer hits");
        add_scalar(p + ".rowMisses", dev.rowMisses(),
                   "row buffer misses");
        add_scalar(p + ".activations", dev.activations(),
                   "row activations");
        add_scalar(p + ".bytes", dev.traffic().total(),
                   "total bytes transferred");
        add_scalar(p + ".demandBytes", dev.demandBytes(),
                   "demand-class bytes");
        add_avg(p + ".avgReadQueueDelay", dev.avgReadQueueDelay(),
                "mean read queueing delay (ticks)");
    };
    if (nm_)
        add_dram("nm", *nm_);
    add_dram("fm", *fm_);

    if (window_stats_) {
        // Windowed-loop counters live here (and in the bench footers),
        // never in SimResult: the results document must stay
        // byte-identical across SILC_SIM_THREADS values.
        add_scalar("simpar.windows", window_stats_->windows,
                   "lookahead windows executed");
        add_scalar("simpar.parallelReplays",
                   window_stats_->parallel_replays,
                   "window replays dispatched to worker lanes");
        add_scalar("simpar.serialReplays",
                   window_stats_->serial_replays,
                   "window replays run inline");
        add_scalar("simpar.horizonCapped",
                   window_stats_->horizon_capped,
                   "windows ended by the dynamic horizon");
        add_scalar("simpar.windowTicks", window_stats_->window_ticks,
                   "ticks covered by windows");
        add_scalar("simpar.syncWaitNs", window_stats_->sync_wait_ns,
                   "main-thread barrier wait (ns)");
    }

    add_scalar("policy.nmServiced", policy_->nmServiced(),
               "demand requests serviced by NM");
    add_scalar("policy.fmServiced", policy_->fmServiced(),
               "demand requests serviced by FM");
    add_scalar("policy.migrationOps", policy_->migrationOps(),
               "subblock migration operations");
    add_avg("policy.accessRate", policy_->accessRate(),
            "Equation 1 access rate");

    set.dump(os, std::string(policy_->name()) + ".");
}

} // namespace sim
} // namespace silc
