/**
 * @file
 * Full-system assembly: cores + caches + MSHRs + translation + a
 * flat-memory policy + two DRAM systems, with the cycle loop and metric
 * extraction.  This is the top-level public API most users touch:
 *
 *     sim::SystemConfig cfg = sim::SystemConfig::defaults();
 *     cfg.workload = "mcf";
 *     cfg.policy = sim::PolicyKind::SilcFm;
 *     sim::System system(cfg);
 *     sim::SimResult r = system.run();
 */

#ifndef SILC_SIM_SYSTEM_HH
#define SILC_SIM_SYSTEM_HH

#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "cache/cache.hh"
#include "cache/mshr.hh"
#include "common/event_queue.hh"
#include "core/silc_fm.hh"
#include "cpu/core.hh"
#include "dram/dram_system.hh"
#include "policy/cameo.hh"
#include "policy/hma.hh"
#include "policy/pom.hh"
#include "sim/metrics.hh"
#include "sim/translation.hh"
#include "telemetry/recorder.hh"
#include "trace/generator.hh"

namespace silc {

namespace check {
class DifferentialChecker;
} // namespace check

namespace sim {

/** Which flat-memory organization scheme to simulate. */
enum class PolicyKind
{
    FmOnly,   ///< no-NM baseline (speedup denominator)
    Random,   ///< random static placement, no migration
    Hma,      ///< epoch-based OS management
    Cameo,    ///< 64B hardware swapping
    CameoP,   ///< CAMEO + next-3-line prefetch
    Pom,      ///< 2KB hardware migration
    SilcFm,   ///< this paper
};

const char *policyKindName(PolicyKind kind);
PolicyKind policyKindFromName(const std::string &name);

/** All knobs of one simulation. */
struct SystemConfig
{
    uint32_t cores = 8;
    uint64_t instructions_per_core = 500'000;
    std::string workload = "mcf";
    /**
     * When non-empty, cores replay this recorded trace file (see
     * trace/file_trace.hh) instead of synthesising the workload; every
     * core replays the same trace, as in SPEC rate mode.
     */
    std::string trace_file;
    PolicyKind policy = PolicyKind::SilcFm;
    uint64_t seed = 1;

    uint64_t nm_bytes = 4 * 1024 * 1024;
    uint64_t fm_bytes = 16 * 1024 * 1024;

    cpu::CoreParams core_params;
    uint32_t l1_latency = 4;
    uint32_t l2_latency = 15;
    /** Extra ticks between LLC fill and dependent wakeup. */
    uint32_t fill_latency = 2;

    cache::CacheParams l1i;
    cache::CacheParams l1d;
    cache::CacheParams l2;

    uint32_t mshr_entries = 128;
    uint32_t mshr_per_core = 16;

    dram::DramTimingParams nm_timing;
    dram::DramTimingParams fm_timing;

    core::SilcFmParams silc;
    policy::HmaParams hma;
    policy::PomParams pom;
    policy::CameoParams cameo;

    /**
     * Epoch time-series instrumentation (src/telemetry/).  Disabled by
     * default: no epoch events are scheduled and run() leaves
     * SimResult::telemetry null, so simulation timing is unaffected.
     */
    telemetry::TelemetryConfig telemetry;

    /**
     * Run the untimed differential oracle (src/check/) in lockstep
     * with the SILC-FM policy and panic() on the first divergence.
     * Only meaningful with policy == PolicyKind::SilcFm; roughly
     * doubles the per-access policy cost.  Env: SILC_CHECK=1.
     */
    bool check = false;

    /** Safety cutoff. */
    Tick max_ticks = 500'000'000;

    /**
     * Intra-simulation worker threads (SILC_SIM_THREADS).  1 runs the
     * classic sequential loop; >= 2 runs the conservative-lookahead
     * windowed loop (sim/domain.hh), which partitions DRAM channel
     * scans across this many lanes.  Results are byte-identical across
     * every value of this knob — it is purely a wall-clock control.
     */
    uint32_t sim_threads = 1;

    /** Table II defaults (with capacity/L2 scaled as per DESIGN.md). */
    static SystemConfig defaults();

    /** fatal() on inconsistent settings. */
    void validate() const;
};

class MemoryHierarchy;
struct WindowStats;

/** One complete simulated machine. */
class System
{
  public:
    explicit System(SystemConfig cfg);
    ~System();

    System(const System &) = delete;
    System &operator=(const System &) = delete;

    /** Run to completion (or the tick limit) and collect metrics. */
    SimResult run();

    // ---- Sampling hooks (src/sample/). ----

    /**
     * Advance the sequential cycle loop until every core has retired
     * its current instruction budget (or the tick limit hits).  Unlike
     * run(), the loop is resumable: the cycle counter is a member, so
     * extending the per-core budgets and calling runToBudget() again
     * continues the same simulation.  Requires sim_threads == 1.
     *
     * @retval true  all cores retired their budgets
     * @retval false the max_ticks cutoff fired first
     */
    bool runToBudget();

    /** Metric extraction over the current state (shared by run()). */
    SimResult collectResult(bool all_done);

    /**
     * Switch the policy and hierarchy into functional-warming mode:
     * caches, translation, and policy metadata update as usual, but LLC
     * misses complete synchronously (no MSHR, no DRAM traffic) — the
     * fast-forward phase between detailed sampling windows.
     */
    void setFunctionalMode(bool on);

    /** Replace every core's instruction budget (see runToBudget()). */
    void setPerCoreBudget(uint64_t instructions);

    /**
     * Serialize the architectural state (translation, caches, policy
     * metadata, trace positions) into a checkpoint blob.  Only legal at
     * a functional-mode pause point: the MSHR file must be empty and
     * both DRAM systems idle.  Timing state is deliberately excluded —
     * replays start from quiesced devices and re-warm them during the
     * detailed-warmup prefix of each window.
     */
    void snapshotState(BlobWriter &w) const;

    /** Restore state captured by snapshotState() on an identically
     *  configured System. */
    void restoreState(BlobReader &r);

    /** Current cycle of the resumable sequential loop. */
    Tick currentCycle() const { return cycle_; }

    Translation &translation() { return *translation_; }

    /**
     * Dump a gem5-style "name value # description" statistics listing
     * for every component (cores, caches, MSHRs, DRAM devices, policy)
     * — call after run().
     */
    void dumpStats(std::ostream &os) const;

    const SystemConfig &config() const { return cfg_; }
    policy::FlatMemoryPolicy &policyRef() { return *policy_; }
    dram::DramSystem *nm() { return nm_.get(); }
    dram::DramSystem &fm() { return *fm_; }
    MemoryHierarchy &hierarchy() { return *hierarchy_; }
    cpu::Core &core(uint32_t i) { return *cores_[i]; }
    EventQueue &events() { return events_; }

  private:
    /** Build the recorder and register every component's probes. */
    void attachTelemetry();

    /**
     * The conservative-lookahead windowed run loop (sim_threads >= 2).
     * Byte-identical results to the sequential loop; see sim/domain.hh.
     */
    SimResult runWindowed();

    SystemConfig cfg_;
    EventQueue events_;
    /** Cycle counter of the sequential loop (member: see runToBudget). */
    Tick cycle_ = 0;
    bool functional_ = false;
    std::unique_ptr<dram::DramSystem> nm_;
    std::unique_ptr<dram::DramSystem> fm_;
    std::unique_ptr<policy::FlatMemoryPolicy> policy_;
    std::unique_ptr<Translation> translation_;
    std::unique_ptr<MemoryHierarchy> hierarchy_;
    std::vector<std::unique_ptr<trace::TraceSource>> traces_;
    std::vector<std::unique_ptr<cpu::Core>> cores_;
    std::unique_ptr<telemetry::Recorder> recorder_;
    std::unique_ptr<check::DifferentialChecker> checker_;
    /** Windowed-loop counters, populated by runWindowed() for
     *  dumpStats(); held by pointer to keep domain.hh out of this
     *  header (it includes parallel.hh -> experiment.hh -> here). */
    std::unique_ptr<WindowStats> window_stats_;
};

/**
 * The cache/MSHR stack between cores and the policy; implements the
 * cpu::MemoryPort the cores issue into.
 */
class MemoryHierarchy : public cpu::MemoryPort
{
  public:
    MemoryHierarchy(const SystemConfig &cfg, Translation &translation,
                    policy::FlatMemoryPolicy &policy, EventQueue &events);

    bool access(CoreId core, Addr vaddr, Addr pc, bool is_write,
                std::function<void(Tick)> done, Tick now) override;

    uint64_t llcMisses() const { return llc_misses_total_; }

    /** Mean ticks from LLC miss issue to fill. */
    double
    avgMissLatency() const
    {
        return misses_completed_ == 0
            ? 0.0
            : miss_latency_sum_ / static_cast<double>(misses_completed_);
    }
    uint64_t llcMissesFor(CoreId core) const
    {
        return llc_misses_[core];
    }
    uint64_t l1dAccesses() const;

    /** Cumulative LLC miss latency (ticks) and completed-miss count —
     *  the sampling layer differences these across window edges. */
    double missLatencySum() const { return miss_latency_sum_; }
    uint64_t missesCompleted() const { return misses_completed_; }

    /**
     * Functional-warming mode: LLC misses bypass the MSHR file and the
     * policy's timing skeleton; fills happen synchronously and the
     * completion fires at now + 1.  Keeps cache contents, miss counts,
     * and policy metadata warm at a fraction of the detailed-mode cost.
     */
    void setWarming(bool on) { warming_ = on; }

    /** Serialize cache contents + miss counters for checkpointing. */
    void snapshot(BlobWriter &w) const;
    void restore(BlobReader &r);

    const cache::Cache &l1d(CoreId core) const { return l1d_[core]; }
    const cache::Cache &l1i(CoreId core) const { return l1i_[core]; }
    const cache::Cache &l2() const { return l2_; }
    const cache::MshrFile &mshrs() const { return mshr_; }

  private:
    const SystemConfig &cfg_;
    Translation &translation_;
    policy::FlatMemoryPolicy &policy_;
    EventQueue &events_;

    std::vector<cache::Cache> l1i_;
    std::vector<cache::Cache> l1d_;
    cache::Cache l2_;
    cache::MshrFile mshr_;

    std::vector<Addr> last_iline_;
    std::vector<uint64_t> llc_misses_;
    uint64_t llc_misses_total_ = 0;
    double miss_latency_sum_ = 0.0;
    uint64_t misses_completed_ = 0;
    bool warming_ = false;
};

} // namespace sim
} // namespace silc

#endif // SILC_SIM_SYSTEM_HH
