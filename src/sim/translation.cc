#include "sim/translation.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/serialize.hh"

namespace silc {
namespace sim {

Translation::Translation(uint64_t phys_bytes, uint64_t seed)
{
    if (phys_bytes == 0 || phys_bytes % kLargeBlockSize != 0)
        fatal("translation: physical space must be a positive multiple "
              "of the page size");
    const uint64_t n = phys_bytes / kLargeBlockSize;
    frames_.resize(n);
    for (uint64_t i = 0; i < n; ++i)
        frames_[i] = i;
    // Pre-shuffled free list => uniformly random first-touch placement.
    Rng rng(seed ^ 0xA110CA7E);
    for (uint64_t i = n; i > 1; --i) {
        const uint64_t j = rng.below(i);
        std::swap(frames_[i - 1], frames_[j]);
    }
}

Addr
Translation::translate(CoreId core, Addr vaddr)
{
    const uint64_t vpage = vaddr >> kLargeBlockBits;
    const size_t idx = static_cast<size_t>(core) * kTlbEntries +
        (vpage & (kTlbEntries - 1));
    if (idx < tlb_.size() && tlb_[idx].vpage == vpage) {
        return tlb_[idx].frame * kLargeBlockSize +
            (vaddr & (kLargeBlockSize - 1));
    }
    const uint64_t k = key(core, vpage);
    auto it = page_table_.find(k);
    uint64_t frame;
    if (it != page_table_.end()) {
        frame = it->second;
    } else {
        if (next_free_ >= frames_.size())
            fatal("translation: out of physical memory after %llu pages",
                  static_cast<unsigned long long>(next_free_));
        frame = frames_[next_free_++];
        page_table_.emplace(k, frame);
        ++per_core_pages_[core];
    }
    if (idx >= tlb_.size())
        tlb_.resize((static_cast<size_t>(core) + 1) * kTlbEntries);
    tlb_[idx].vpage = vpage;
    tlb_[idx].frame = frame;
    return frame * kLargeBlockSize + (vaddr & (kLargeBlockSize - 1));
}

uint64_t
Translation::pagesAllocatedFor(CoreId core) const
{
    auto it = per_core_pages_.find(core);
    return it == per_core_pages_.end() ? 0 : it->second;
}

void
Translation::snapshot(BlobWriter &w) const
{
    w.putU64(next_free_);

    std::vector<std::pair<uint64_t, uint64_t>> entries(
        page_table_.begin(), page_table_.end());
    std::sort(entries.begin(), entries.end());
    w.putU64(entries.size());
    for (const auto &[k, frame] : entries) {
        w.putU64(k);
        w.putU64(frame);
    }

    std::vector<std::pair<CoreId, uint64_t>> per_core(
        per_core_pages_.begin(), per_core_pages_.end());
    std::sort(per_core.begin(), per_core.end());
    w.putU64(per_core.size());
    for (const auto &[core, pages] : per_core) {
        w.putU32(core);
        w.putU64(pages);
    }
}

void
Translation::restore(BlobReader &r)
{
    next_free_ = r.getU64();
    if (next_free_ > frames_.size())
        fatal("translation restore: %llu pages allocated but only %zu "
              "frames (phys size mismatch)",
              static_cast<unsigned long long>(next_free_), frames_.size());

    page_table_.clear();
    const uint64_t entries = r.getU64();
    for (uint64_t i = 0; i < entries; ++i) {
        const uint64_t k = r.getU64();
        const uint64_t frame = r.getU64();
        page_table_.emplace(k, frame);
    }

    per_core_pages_.clear();
    const uint64_t cores = r.getU64();
    for (uint64_t i = 0; i < cores; ++i) {
        const CoreId core = r.getU32();
        per_core_pages_[core] = r.getU64();
    }

    tlb_.clear();
}

} // namespace sim
} // namespace silc
