#include "sim/translation.hh"

#include "common/logging.hh"

namespace silc {
namespace sim {

Translation::Translation(uint64_t phys_bytes, uint64_t seed)
{
    if (phys_bytes == 0 || phys_bytes % kLargeBlockSize != 0)
        fatal("translation: physical space must be a positive multiple "
              "of the page size");
    const uint64_t n = phys_bytes / kLargeBlockSize;
    frames_.resize(n);
    for (uint64_t i = 0; i < n; ++i)
        frames_[i] = i;
    // Pre-shuffled free list => uniformly random first-touch placement.
    Rng rng(seed ^ 0xA110CA7E);
    for (uint64_t i = n; i > 1; --i) {
        const uint64_t j = rng.below(i);
        std::swap(frames_[i - 1], frames_[j]);
    }
}

Addr
Translation::translate(CoreId core, Addr vaddr)
{
    const uint64_t vpage = vaddr >> kLargeBlockBits;
    if (core < last_vpage_.size() && last_vpage_[core] == vpage) {
        return last_frame_[core] * kLargeBlockSize +
            (vaddr & (kLargeBlockSize - 1));
    }
    const uint64_t k = key(core, vpage);
    auto it = page_table_.find(k);
    uint64_t frame;
    if (it != page_table_.end()) {
        frame = it->second;
    } else {
        if (next_free_ >= frames_.size())
            fatal("translation: out of physical memory after %llu pages",
                  static_cast<unsigned long long>(next_free_));
        frame = frames_[next_free_++];
        page_table_.emplace(k, frame);
        ++per_core_pages_[core];
    }
    if (core >= last_vpage_.size()) {
        last_vpage_.resize(core + 1, ~uint64_t(0));
        last_frame_.resize(core + 1, 0);
    }
    last_vpage_[core] = vpage;
    last_frame_[core] = frame;
    return frame * kLargeBlockSize + (vaddr & (kLargeBlockSize - 1));
}

uint64_t
Translation::pagesAllocatedFor(CoreId core) const
{
    auto it = per_core_pages_.find(core);
    return it == per_core_pages_.end() ? 0 : it->second;
}

} // namespace sim
} // namespace silc
