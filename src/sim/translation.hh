/**
 * @file
 * Virtual-to-physical translation with 2KB pages (Section IV-A).
 *
 * First-touch allocation over a pre-shuffled free-frame list gives the
 * random static placement the paper's schemes start from; per-core
 * address spaces are disjoint (SPEC rate mode: "different instances do
 * not share the same physical address space").
 */

#ifndef SILC_SIM_TRANSLATION_HH
#define SILC_SIM_TRANSLATION_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"

namespace silc {

class BlobWriter;
class BlobReader;

namespace sim {

/** The page-table / frame-allocator pair. */
class Translation
{
  public:
    /**
     * @param phys_bytes flat physical space size (policy-defined)
     * @param seed       RNG seed for the frame shuffle
     */
    Translation(uint64_t phys_bytes, uint64_t seed);

    /**
     * Translate @p vaddr of @p core, allocating a frame on first touch.
     * fatal() when physical memory is exhausted.
     */
    Addr translate(CoreId core, Addr vaddr);

    /** Pages allocated so far (the measured footprint). */
    uint64_t pagesAllocated() const { return next_free_; }

    /** Pages allocated for one core. */
    uint64_t pagesAllocatedFor(CoreId core) const;

    uint64_t totalFrames() const { return frames_.size(); }

    /**
     * Serialize the page table and allocation cursor.  The shuffled
     * frame list is ctor-pure (a pure function of phys_bytes and seed)
     * and is not captured; restore() requires a Translation constructed
     * with the same parameters.  Entries are written in sorted-key order
     * so the blob is byte-deterministic despite the unordered_map.
     */
    void snapshot(BlobWriter &w) const;
    void restore(BlobReader &r);

  private:
    static uint64_t
    key(CoreId core, uint64_t vpage)
    {
        return (static_cast<uint64_t>(core) << 40) | vpage;
    }

    std::unordered_map<uint64_t, uint64_t> page_table_;
    std::unordered_map<CoreId, uint64_t> per_core_pages_;
    std::vector<uint64_t> frames_;
    uint64_t next_free_ = 0;

    /**
     * Per-core direct-mapped translation cache.  Mappings are never
     * invalidated (first-touch only), so serving repeat lookups from
     * here is exact; it exists because the interleaving of instruction
     * lines, stack-like friendly-region accesses and hot-page bursts
     * defeats a single-entry memo, and the hash-map probe was ~17% of
     * simulation time.  Grown lazily per core; restore() just clears it.
     */
    static constexpr uint32_t kTlbEntries = 256; // per core, power of 2

    struct TlbEntry
    {
        uint64_t vpage = ~uint64_t(0);
        uint64_t frame = 0;
    };
    std::vector<TlbEntry> tlb_;
};

} // namespace sim
} // namespace silc

#endif // SILC_SIM_TRANSLATION_HH
