/**
 * @file
 * Virtual-to-physical translation with 2KB pages (Section IV-A).
 *
 * First-touch allocation over a pre-shuffled free-frame list gives the
 * random static placement the paper's schemes start from; per-core
 * address spaces are disjoint (SPEC rate mode: "different instances do
 * not share the same physical address space").
 */

#ifndef SILC_SIM_TRANSLATION_HH
#define SILC_SIM_TRANSLATION_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"

namespace silc {
namespace sim {

/** The page-table / frame-allocator pair. */
class Translation
{
  public:
    /**
     * @param phys_bytes flat physical space size (policy-defined)
     * @param seed       RNG seed for the frame shuffle
     */
    Translation(uint64_t phys_bytes, uint64_t seed);

    /**
     * Translate @p vaddr of @p core, allocating a frame on first touch.
     * fatal() when physical memory is exhausted.
     */
    Addr translate(CoreId core, Addr vaddr);

    /** Pages allocated so far (the measured footprint). */
    uint64_t pagesAllocated() const { return next_free_; }

    /** Pages allocated for one core. */
    uint64_t pagesAllocatedFor(CoreId core) const;

    uint64_t totalFrames() const { return frames_.size(); }

  private:
    static uint64_t
    key(CoreId core, uint64_t vpage)
    {
        return (static_cast<uint64_t>(core) << 40) | vpage;
    }

    std::unordered_map<uint64_t, uint64_t> page_table_;
    std::unordered_map<CoreId, uint64_t> per_core_pages_;
    std::vector<uint64_t> frames_;
    uint64_t next_free_ = 0;

    /**
     * Per-core last-translation memo.  Mappings are never invalidated
     * (first-touch only), so short-circuiting repeat lookups of the
     * same page is exact; bursty traces hit this almost always.
     */
    std::vector<uint64_t> last_vpage_;
    std::vector<uint64_t> last_frame_;
};

} // namespace sim
} // namespace silc

#endif // SILC_SIM_TRANSLATION_HH
