#include "telemetry/json.hh"

#include <charconv>
#include <cmath>
#include <cstdio>

namespace silc {
namespace telemetry {

std::string
jsonEscape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
jsonString(std::string_view s)
{
    return "\"" + jsonEscape(s) + "\"";
}

std::string
jsonDouble(double v)
{
    if (!std::isfinite(v))
        return "null";
    char buf[64];
    auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), v);
    if (ec != std::errc())
        return "null";
    return std::string(buf, end);
}

} // namespace telemetry
} // namespace silc
