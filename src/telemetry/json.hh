/**
 * @file
 * Minimal JSON emission helpers shared by the telemetry sinks and the
 * sim::ResultWriter.  Deliberately not a JSON library: the repo emits
 * JSON but never parses it, so two formatting functions with strict
 * determinism guarantees (shortest round-trip doubles, locale-free) are
 * all that is needed — output must stay byte-identical across runs and
 * thread counts.
 */

#ifndef SILC_TELEMETRY_JSON_HH
#define SILC_TELEMETRY_JSON_HH

#include <string>
#include <string_view>

namespace silc {
namespace telemetry {

/** @p s with JSON string escaping applied, without surrounding quotes. */
std::string jsonEscape(std::string_view s);

/** Quoted, escaped JSON string literal for @p s. */
std::string jsonString(std::string_view s);

/**
 * Shortest round-trip decimal rendering of @p v (std::to_chars), the
 * same bytes for the same bits on every run.  Non-finite values have no
 * JSON representation and render as null.
 */
std::string jsonDouble(double v);

} // namespace telemetry
} // namespace silc

#endif // SILC_TELEMETRY_JSON_HH
