#include "telemetry/recorder.hh"

#include "common/logging.hh"

namespace silc {
namespace telemetry {

Recorder::Recorder(const TelemetryConfig &cfg, std::string run_id)
    : cfg_(cfg), sampler_(cfg.epoch_ticks),
      series_(std::make_shared<TimeSeries>())
{
    header_.run_id = std::move(run_id);
    header_.epoch_ticks = cfg_.epoch_ticks;
    if (!cfg_.jsonl_path.empty())
        sinks_.push_back(std::make_unique<JsonLinesSink>(cfg_.jsonl_path));
    if (!cfg_.csv_path.empty())
        sinks_.push_back(std::make_unique<CsvSink>(cfg_.csv_path));
}

Recorder::~Recorder() = default;

void
Recorder::addSink(std::unique_ptr<Sink> sink)
{
    silc_assert(!started_);
    sinks_.push_back(std::move(sink));
}

void
Recorder::start(EventQueue &events)
{
    silc_assert(!started_);
    started_ = true;
    events_ = &events;
    header_.probes = sampler_.names();
    series_->header = header_;
    for (auto &sink : sinks_)
        sink->begin(header_);
    next_epoch_tick_ = cfg_.epoch_ticks;
    events_->schedule(cfg_.epoch_ticks, [this](Tick t) { onEpoch(t); });
}

void
Recorder::record(Tick now)
{
    EpochRecord rec = sampler_.sample(now);
    for (auto &sink : sinks_)
        sink->epoch(header_, rec);
    series_->epochs.push_back(std::move(rec));
}

void
Recorder::onEpoch(Tick now)
{
    if (finished_)
        return;
    record(now);
    next_epoch_tick_ = now + cfg_.epoch_ticks;
    events_->schedule(next_epoch_tick_,
                      [this](Tick t) { onEpoch(t); });
}

void
Recorder::finish(Tick final_tick)
{
    if (!started_ || finished_)
        return;
    finished_ = true;
    // The run usually ends between epoch boundaries; capture the tail
    // so short runs still produce at least one epoch.
    if (final_tick > sampler_.lastSampleTick())
        record(final_tick);
    for (auto &sink : sinks_)
        sink->end();
}

} // namespace telemetry
} // namespace silc
