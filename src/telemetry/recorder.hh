/**
 * @file
 * The per-run telemetry facade: one Recorder owns one Sampler plus any
 * number of Sinks, drives them from the simulation's EventQueue at a
 * fixed epoch cadence, and keeps the complete TimeSeries in memory for
 * embedding into sim::SimResult.
 *
 * Lifecycle: construct → register probes via sampler() / add file sinks
 * → start(events) → (epochs fire inside the run loop) → finish(tick).
 *
 * Cost model: with telemetry disabled no Recorder exists at all — no
 * epoch events are ever scheduled, so the simulator's hot paths are
 * untouched.  Thread-cleanliness: a Recorder belongs to exactly one
 * sim::System, which belongs to exactly one worker thread; there is no
 * shared mutable state between runs.
 */

#ifndef SILC_TELEMETRY_RECORDER_HH
#define SILC_TELEMETRY_RECORDER_HH

#include <memory>
#include <string>
#include <vector>

#include "common/event_queue.hh"
#include "common/types.hh"
#include "telemetry/sampler.hh"
#include "telemetry/sink.hh"

namespace silc {
namespace telemetry {

/** Per-run telemetry knobs (lives inside sim::SystemConfig). */
struct TelemetryConfig
{
    /** Master switch; off schedules nothing and allocates nothing. */
    bool enabled = false;
    /** Ticks per epoch (SILC_EPOCH_TICKS). */
    Tick epoch_ticks = 100'000;
    /** When non-empty, stream the series to this JSON Lines file. */
    std::string jsonl_path;
    /** When non-empty, stream the series to this CSV file. */
    std::string csv_path;
};

class Recorder
{
  public:
    /** @param run_id series identity, e.g. "mcf/silcfm". */
    Recorder(const TelemetryConfig &cfg, std::string run_id);
    ~Recorder();

    Recorder(const Recorder &) = delete;
    Recorder &operator=(const Recorder &) = delete;

    /** Register probes here before start(). */
    Sampler &sampler() { return sampler_; }

    /** Attach an extra sink; must precede start(). */
    void addSink(std::unique_ptr<Sink> sink);

    /**
     * Freeze the probe list, announce the header to every sink and
     * schedule the first epoch on @p events (which must outlive the
     * Recorder or never fire the scheduled event).
     */
    void start(EventQueue &events);

    /**
     * Take a final partial sample if the run advanced past the last
     * epoch boundary, then flush all sinks.  Idempotent.
     */
    void finish(Tick final_tick);

    /** The recorded series; fully populated once finish() ran. */
    std::shared_ptr<const TimeSeries> series() const { return series_; }

    uint64_t epochsRecorded() const { return sampler_.epochsSampled(); }

    /**
     * Tick of the next scheduled epoch sample, or kTickNever when no
     * epoch is pending (not started, or finished).  The windowed
     * parallel run loop caps each window at this tick so epoch probes
     * observe the same device state as in the sequential run (the epoch
     * event fires before the window's DRAM scans at that tick, exactly
     * like the sequential loop's phase order).
     */
    Tick
    nextEpochTick() const
    {
        return started_ && !finished_ ? next_epoch_tick_ : kTickNever;
    }

  private:
    void onEpoch(Tick now);
    void record(Tick now);

    TelemetryConfig cfg_;
    SeriesHeader header_;
    Sampler sampler_;
    std::vector<std::unique_ptr<Sink>> sinks_;
    std::shared_ptr<TimeSeries> series_;
    EventQueue *events_ = nullptr;
    bool started_ = false;
    bool finished_ = false;
    /** Absolute tick of the pending onEpoch event (see nextEpochTick()). */
    Tick next_epoch_tick_ = kTickNever;
};

} // namespace telemetry
} // namespace silc

#endif // SILC_TELEMETRY_RECORDER_HH
