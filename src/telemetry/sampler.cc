#include "telemetry/sampler.hh"

#include "common/logging.hh"

namespace silc {
namespace telemetry {

Sampler::Sampler(Tick epoch_ticks)
    : epoch_ticks_(epoch_ticks)
{
    if (epoch_ticks_ == 0)
        fatal("telemetry: epoch length must be positive");
}

void
Sampler::add(std::string name, Kind kind, ReadFn read, ReadFn read_den)
{
    silc_assert(read != nullptr);
    for (const auto &n : names_) {
        if (n == name)
            panic("telemetry: duplicate probe '%s'", name.c_str());
    }
    names_.push_back(std::move(name));
    Probe p;
    p.kind = kind;
    p.read = std::move(read);
    p.read_den = std::move(read_den);
    probes_.push_back(std::move(p));
}

void
Sampler::addGauge(std::string name, ReadFn read)
{
    add(std::move(name), Kind::Gauge, std::move(read));
}

void
Sampler::addCounter(std::string name, ReadFn read)
{
    add(std::move(name), Kind::Counter, std::move(read));
}

void
Sampler::addRate(std::string name, ReadFn read)
{
    add(std::move(name), Kind::Rate, std::move(read));
}

void
Sampler::addRatio(std::string name, ReadFn num, ReadFn den)
{
    silc_assert(den != nullptr);
    add(std::move(name), Kind::Ratio, std::move(num), std::move(den));
}

void
Sampler::addStatSet(const stats::StatSet &set, const std::string &prefix)
{
    const std::string p =
        prefix.empty() || prefix.back() == '.' ? prefix : prefix + ".";
    for (const auto &name : set.names()) {
        const stats::StatBase *stat = set.find(name);
        const auto read = [stat] { return stat->value(); };
        if (dynamic_cast<const stats::Scalar *>(stat) != nullptr)
            addCounter(p + name, read);
        else
            addGauge(p + name, read);
    }
}

void
Sampler::addDistribution(const std::string &name,
                         const stats::Distribution &dist)
{
    const stats::Distribution *d = &dist;
    addGauge(name + ".p50", [d] { return d->percentile(0.50); });
    addGauge(name + ".p95", [d] { return d->percentile(0.95); });
    addGauge(name + ".p99", [d] { return d->percentile(0.99); });
}

EpochRecord
Sampler::sample(Tick now)
{
    EpochRecord rec;
    rec.index = epochs_++;
    rec.tick = now;
    rec.elapsed = now >= last_tick_ ? now - last_tick_ : 0;
    rec.values.reserve(probes_.size());

    for (Probe &p : probes_) {
        const double v = p.read();
        double out = 0.0;
        switch (p.kind) {
          case Kind::Gauge:
            out = v;
            break;
          case Kind::Counter:
            out = v - p.last;
            break;
          case Kind::Rate:
            out = rec.elapsed == 0
                ? 0.0
                : (v - p.last) / static_cast<double>(rec.elapsed);
            break;
          case Kind::Ratio: {
            const double den = p.read_den();
            const double dd = den - p.last_den;
            out = dd == 0.0 ? 0.0 : (v - p.last) / dd;
            p.last_den = den;
            break;
          }
        }
        p.last = v;
        rec.values.push_back(out);
    }

    last_tick_ = now;
    return rec;
}

} // namespace telemetry
} // namespace silc
