/**
 * @file
 * The probe registry and epoch snapshot engine.
 *
 * Components register probes — named read functions over their live
 * counters — once at attach time; every epoch the Sampler reads all of
 * them and derives the per-epoch view:
 *
 *   Gauge    raw value at sample time            (queue depth, occupancy)
 *   Counter  delta since the previous sample     (swaps, bytes, retires)
 *   Rate     delta / elapsed ticks               (IPC, bus utilization)
 *   Ratio    delta(num) / delta(den)             (hit rates, Equation 1)
 *
 * Counter-style derivations make monotonic whole-run counters — which is
 * what every component in this codebase already keeps — directly usable
 * as phase-resolved series without the components tracking epochs
 * themselves.  A stats::StatSet can be registered wholesale (Scalars
 * become Counters, everything else a Gauge), and a stats::Distribution
 * registers as p50/p95/p99 percentile gauges rather than raw buckets.
 */

#ifndef SILC_TELEMETRY_SAMPLER_HH
#define SILC_TELEMETRY_SAMPLER_HH

#include <functional>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "telemetry/series.hh"

namespace silc {
namespace telemetry {

class Sampler
{
  public:
    /** Reads one probe value; must stay valid for the Sampler's life. */
    using ReadFn = std::function<double()>;

    /** @param epoch_ticks nominal sampling period (must be > 0). */
    explicit Sampler(Tick epoch_ticks);

    /** Raw value at sample time. */
    void addGauge(std::string name, ReadFn read);

    /** Per-epoch delta of a monotonic counter. */
    void addCounter(std::string name, ReadFn read);

    /** Per-epoch delta divided by the ticks the epoch covered. */
    void addRate(std::string name, ReadFn read);

    /**
     * delta(@p num) / delta(@p den) within the epoch; 0 when the
     * denominator did not move.
     */
    void addRatio(std::string name, ReadFn num, ReadFn den);

    /**
     * Register every stat of @p set under @p prefix: Scalars as
     * Counters (delta derivation), everything else as Gauges.  The set
     * and its stats must outlive the Sampler.
     */
    void addStatSet(const stats::StatSet &set, const std::string &prefix);

    /**
     * Register @p dist as three percentile gauges (<name>.p50/.p95/.p99,
     * cumulative over the run so far).  Sinks thus export percentiles,
     * never bucket arrays.  @p dist must outlive the Sampler.
     */
    void addDistribution(const std::string &name,
                         const stats::Distribution &dist);

    /** Probe names in registration order. */
    const std::vector<std::string> &names() const { return names_; }

    size_t probeCount() const { return probes_.size(); }

    Tick epochTicks() const { return epoch_ticks_; }

    /** Tick of the previous sample (0 before the first). */
    Tick lastSampleTick() const { return last_tick_; }

    /** Epochs sampled so far. */
    uint64_t epochsSampled() const { return epochs_; }

    /**
     * Snapshot every probe at tick @p now, deriving deltas/rates against
     * the previous sample, and advance the epoch state.
     */
    EpochRecord sample(Tick now);

  private:
    enum class Kind { Gauge, Counter, Rate, Ratio };

    struct Probe
    {
        Kind kind;
        ReadFn read;
        ReadFn read_den;    ///< Ratio only
        double last = 0.0;
        double last_den = 0.0;
    };

    void add(std::string name, Kind kind, ReadFn read,
             ReadFn read_den = nullptr);

    Tick epoch_ticks_;
    Tick last_tick_ = 0;
    uint64_t epochs_ = 0;
    std::vector<std::string> names_;
    std::vector<Probe> probes_;
};

} // namespace telemetry
} // namespace silc

#endif // SILC_TELEMETRY_SAMPLER_HH
