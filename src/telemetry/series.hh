/**
 * @file
 * The in-memory representation of an epoch time series: a header naming
 * the run, the epoch cadence and the probes, plus one record per epoch.
 *
 * Everything the telemetry subsystem produces — sink output, the series
 * embedded into sim::SimResult, the JSON export — is derived from these
 * two plain structs, so they are the schema of record.
 */

#ifndef SILC_TELEMETRY_SERIES_HH
#define SILC_TELEMETRY_SERIES_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace silc {
namespace telemetry {

/** Identity and shape of one recorded time series. */
struct SeriesHeader
{
    /** Human-readable run identity ("mcf/silcfm"). */
    std::string run_id;
    /** Nominal ticks between samples (the last epoch may be shorter). */
    Tick epoch_ticks = 0;
    /** Probe names, in registration order; parallel to record values. */
    std::vector<std::string> probes;
};

/** One sampled epoch. */
struct EpochRecord
{
    /** Zero-based epoch index. */
    uint64_t index = 0;
    /** Tick at which the sample was taken (end of the epoch). */
    Tick tick = 0;
    /** Ticks actually covered by this epoch (rate denominators). */
    Tick elapsed = 0;
    /** One value per probe, in header order. */
    std::vector<double> values;
};

/** A complete recorded run. */
struct TimeSeries
{
    SeriesHeader header;
    std::vector<EpochRecord> epochs;

    /** Column index of @p probe, or -1 when absent. */
    int
    probeIndex(const std::string &probe) const
    {
        for (size_t i = 0; i < header.probes.size(); ++i) {
            if (header.probes[i] == probe)
                return static_cast<int>(i);
        }
        return -1;
    }
};

} // namespace telemetry
} // namespace silc

#endif // SILC_TELEMETRY_SERIES_HH
