#include "telemetry/sink.hh"

#include "common/logging.hh"
#include "telemetry/json.hh"

namespace silc {
namespace telemetry {

StreamSink::StreamSink(std::ostream &os)
    : os_(&os)
{
}

StreamSink::StreamSink(const std::string &path)
    : owned_(std::make_unique<std::ofstream>(path)), os_(owned_.get())
{
    if (!owned_->is_open())
        fatal("telemetry: cannot open sink file '%s'", path.c_str());
}

void
JsonLinesSink::begin(const SeriesHeader &header)
{
    std::ostream &os = out();
    os << "{\"type\":\"header\",\"run\":" << jsonString(header.run_id)
       << ",\"epoch_ticks\":" << header.epoch_ticks << ",\"probes\":[";
    for (size_t i = 0; i < header.probes.size(); ++i) {
        if (i != 0)
            os << ",";
        os << jsonString(header.probes[i]);
    }
    os << "]}\n";
}

void
JsonLinesSink::epoch(const SeriesHeader &header, const EpochRecord &rec)
{
    (void)header;
    std::ostream &os = out();
    os << "{\"type\":\"epoch\",\"epoch\":" << rec.index
       << ",\"tick\":" << rec.tick << ",\"elapsed\":" << rec.elapsed
       << ",\"values\":[";
    for (size_t i = 0; i < rec.values.size(); ++i) {
        if (i != 0)
            os << ",";
        os << jsonDouble(rec.values[i]);
    }
    os << "]}\n";
}

void
CsvSink::begin(const SeriesHeader &header)
{
    std::ostream &os = out();
    os << "epoch,tick,elapsed";
    for (const auto &name : header.probes)
        os << "," << name;
    os << "\n";
}

void
CsvSink::epoch(const SeriesHeader &header, const EpochRecord &rec)
{
    (void)header;
    std::ostream &os = out();
    os << rec.index << "," << rec.tick << "," << rec.elapsed;
    for (double v : rec.values)
        os << "," << jsonDouble(v);
    os << "\n";
}

void
MemorySink::begin(const SeriesHeader &header)
{
    series_.header = header;
    series_.epochs.clear();
}

void
MemorySink::epoch(const SeriesHeader &header, const EpochRecord &rec)
{
    (void)header;
    series_.epochs.push_back(rec);
}

} // namespace telemetry
} // namespace silc
