/**
 * @file
 * Pluggable consumers of an epoch time series.
 *
 * A Sink sees the series header once, then one record per epoch as the
 * run progresses, then an end() flush — streaming, so file sinks never
 * buffer a whole run.  Shipped implementations:
 *
 *   JsonLinesSink  one JSON object per line (header line, then epochs)
 *   CsvSink        a header row, then one row per epoch
 *   MemorySink     rebuilds the TimeSeries in memory (tests, embedding)
 *
 * Output is deterministic byte-for-byte: doubles render via the
 * shortest-round-trip formatter in telemetry/json.hh.
 */

#ifndef SILC_TELEMETRY_SINK_HH
#define SILC_TELEMETRY_SINK_HH

#include <fstream>
#include <memory>
#include <ostream>
#include <string>

#include "telemetry/series.hh"

namespace silc {
namespace telemetry {

class Sink
{
  public:
    virtual ~Sink() = default;

    /** Called once, before any epoch, with the frozen probe list. */
    virtual void begin(const SeriesHeader &header) = 0;

    /** Called once per sampled epoch, in order. */
    virtual void epoch(const SeriesHeader &header,
                       const EpochRecord &rec) = 0;

    /** Called once after the final epoch; flush buffers here. */
    virtual void end() {}
};

/** Base for sinks writing to an owned file or a borrowed stream. */
class StreamSink : public Sink
{
  public:
    /** Write to @p os (caller keeps ownership and lifetime). */
    explicit StreamSink(std::ostream &os);

    /** Open @p path for writing; fatal() when the open fails. */
    explicit StreamSink(const std::string &path);

    void end() override { os_->flush(); }

  protected:
    std::ostream &out() { return *os_; }

  private:
    std::unique_ptr<std::ofstream> owned_;
    std::ostream *os_;
};

/** JSON Lines: a header object, then one object per epoch. */
class JsonLinesSink : public StreamSink
{
  public:
    using StreamSink::StreamSink;

    void begin(const SeriesHeader &header) override;
    void epoch(const SeriesHeader &header,
               const EpochRecord &rec) override;
};

/** CSV: "epoch,tick,elapsed,<probe...>" then one row per epoch. */
class CsvSink : public StreamSink
{
  public:
    using StreamSink::StreamSink;

    void begin(const SeriesHeader &header) override;
    void epoch(const SeriesHeader &header,
               const EpochRecord &rec) override;
};

/** Accumulates the series in memory; used by tests and the Recorder. */
class MemorySink : public Sink
{
  public:
    void begin(const SeriesHeader &header) override;
    void epoch(const SeriesHeader &header,
               const EpochRecord &rec) override;

    const TimeSeries &series() const { return series_; }
    TimeSeries takeSeries() { return std::move(series_); }

  private:
    TimeSeries series_;
};

} // namespace telemetry
} // namespace silc

#endif // SILC_TELEMETRY_SINK_HH
