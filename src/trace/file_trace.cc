#include "trace/file_trace.hh"

#include <cinttypes>

#include "common/logging.hh"
#include "common/serialize.hh"

namespace silc {
namespace trace {

namespace {

constexpr const char *kMagic = "silctrace 1";

} // namespace

// ---- TraceWriter ---------------------------------------------------------

TraceWriter::TraceWriter(const std::string &path)
    : out_(path), path_(path)
{
    if (!out_)
        fatal("cannot open trace file '%s' for writing", path.c_str());
    out_ << kMagic << "\n";
}

TraceWriter::~TraceWriter()
{
    finish();
}

void
TraceWriter::flushRun()
{
    if (pending_nonmem_ > 0) {
        out_ << "N " << pending_nonmem_ << "\n";
        pending_nonmem_ = 0;
    }
}

void
TraceWriter::append(const TraceInstruction &ins)
{
    silc_assert(!finished_);
    if (!ins.is_mem) {
        ++pending_nonmem_;
    } else {
        flushRun();
        out_ << "M " << (ins.is_write ? 'w' : 'r') << ' ' << std::hex
             << ins.vaddr << ' ' << ins.pc << std::dec << "\n";
    }
    ++written_;
}

void
TraceWriter::record(TraceSource &source, uint64_t count)
{
    for (uint64_t i = 0; i < count; ++i)
        append(source.next());
}

void
TraceWriter::finish()
{
    if (finished_)
        return;
    flushRun();
    out_.flush();
    if (!out_)
        fatal("error writing trace file '%s'", path_.c_str());
    finished_ = true;
}

// ---- FileTraceReader --------------------------------------------------------

FileTraceReader::FileTraceReader(const std::string &path)
    : in_(path), path_(path)
{
    if (!in_)
        fatal("cannot open trace file '%s'", path.c_str());
    std::string header;
    std::getline(in_, header);
    if (header != kMagic)
        fatal("'%s' is not a silctrace file (bad header)", path.c_str());
    body_start_ = in_.tellg();
    refill();
}

void
FileTraceReader::refill()
{
    while (true) {
        std::string tag;
        if (!(in_ >> tag)) {
            // EOF: wrap to the start of the body.
            in_.clear();
            in_.seekg(body_start_);
            ++wraps_;
            if (!(in_ >> tag))
                fatal("trace file '%s' has no records", path_.c_str());
        }
        if (tag == "N") {
            uint64_t count = 0;
            if (!(in_ >> count) || count == 0)
                fatal("trace file '%s': malformed N record",
                      path_.c_str());
            nonmem_left_ = count;
            have_mem_ = false;
            return;
        }
        if (tag == "M") {
            char rw = 0;
            uint64_t vaddr = 0, pc = 0;
            if (!(in_ >> rw >> std::hex >> vaddr >> pc >> std::dec) ||
                (rw != 'r' && rw != 'w')) {
                fatal("trace file '%s': malformed M record",
                      path_.c_str());
            }
            mem_ = TraceInstruction{true, rw == 'w', vaddr, pc};
            have_mem_ = true;
            nonmem_left_ = 0;
            return;
        }
        fatal("trace file '%s': unknown record tag '%s'", path_.c_str(),
              tag.c_str());
    }
}

TraceInstruction
FileTraceReader::next()
{
    ++delivered_;
    if (nonmem_left_ > 0) {
        if (--nonmem_left_ == 0)
            refill();
        return TraceInstruction{};
    }
    silc_assert(have_mem_);
    const TraceInstruction out = mem_;
    refill();
    return out;
}

void
FileTraceReader::snapshot(BlobWriter &w) const
{
    // tellg() on a good stream is non-destructive; the stream stays
    // positioned where refill() left it.
    const std::streamoff off = static_cast<std::streamoff>(in_.tellg());
    if (off < 0)
        fatal("trace file '%s': cannot checkpoint (tellg failed)",
              path_.c_str());
    w.putI64(off);
    w.putU64(nonmem_left_);
    w.putBool(have_mem_);
    w.putBool(mem_.is_mem);
    w.putBool(mem_.is_write);
    w.putU64(mem_.vaddr);
    w.putU64(mem_.pc);
    w.putU64(delivered_);
    w.putU64(wraps_);
}

void
FileTraceReader::restore(BlobReader &r)
{
    const std::streamoff off = static_cast<std::streamoff>(r.getI64());
    in_.clear();
    in_.seekg(off);
    if (!in_)
        fatal("trace file '%s': cannot restore checkpoint offset %lld",
              path_.c_str(), static_cast<long long>(off));
    nonmem_left_ = r.getU64();
    have_mem_ = r.getBool();
    mem_.is_mem = r.getBool();
    mem_.is_write = r.getBool();
    mem_.vaddr = r.getU64();
    mem_.pc = r.getU64();
    delivered_ = r.getU64();
    wraps_ = r.getU64();
}

} // namespace trace
} // namespace silc
