/**
 * @file
 * Trace recording and replay.
 *
 * The paper drives its simulator from Pin-captured SPEC traces.  Users
 * with their own instruction traces can replay them through this
 * module instead of the synthetic generators, and any TraceSource
 * (including the synthetic ones) can be recorded to a file for exact
 * cross-tool reproduction.
 *
 * Format: a small text header ("silctrace 1") followed by one record
 * per line —
 *
 *     M <r|w> <vaddr hex> <pc hex>     memory instruction
 *     N <count>                        run of non-memory instructions
 *
 * Runs of non-memory instructions are run-length encoded, which keeps
 * SPEC-like traces (~70% non-memory) compact and human-greppable.
 */

#ifndef SILC_TRACE_FILE_TRACE_HH
#define SILC_TRACE_FILE_TRACE_HH

#include <cstdint>
#include <fstream>
#include <string>

#include "trace/generator.hh"

namespace silc {
namespace trace {

/** Writes a TraceSource's stream to a file. */
class TraceWriter
{
  public:
    /** Open @p path for writing; fatal() on failure. */
    explicit TraceWriter(const std::string &path);
    ~TraceWriter();

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    /** Append one instruction. */
    void append(const TraceInstruction &ins);

    /** Record @p count instructions pulled from @p source. */
    void record(TraceSource &source, uint64_t count);

    /** Flush pending state (also done by the destructor). */
    void finish();

    uint64_t instructionsWritten() const { return written_; }

  private:
    void flushRun();

    std::ofstream out_;
    std::string path_;
    uint64_t pending_nonmem_ = 0;
    uint64_t written_ = 0;
    bool finished_ = false;
};

/**
 * Replays a recorded trace file as a TraceSource.
 *
 * Cores need an infinite stream; by default the reader rewinds and
 * replays from the beginning when it reaches the end (SPEC rate-mode
 * style), counting the wraps.
 */
class FileTraceReader : public TraceSource
{
  public:
    /** Open @p path; fatal() on missing file or bad header. */
    explicit FileTraceReader(const std::string &path);

    TraceInstruction next() override;

    /**
     * Serialize / restore the stream position (file offset plus the
     * staged record).  restore() requires a reader opened on the same
     * trace file.
     */
    void snapshot(BlobWriter &w) const override;
    void restore(BlobReader &r) override;

    /** Instructions delivered so far. */
    uint64_t delivered() const { return delivered_; }

    /** Times the trace wrapped back to the beginning. */
    uint64_t wraps() const { return wraps_; }

  private:
    /** Refill the current record from the file, wrapping at EOF. */
    void refill();

    mutable std::ifstream in_;
    std::string path_;
    std::streampos body_start_;

    // Current record state.
    uint64_t nonmem_left_ = 0;
    bool have_mem_ = false;
    TraceInstruction mem_;

    uint64_t delivered_ = 0;
    uint64_t wraps_ = 0;
};

} // namespace trace
} // namespace silc

#endif // SILC_TRACE_FILE_TRACE_HH
