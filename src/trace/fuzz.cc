#include "trace/fuzz.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/rng.hh"

namespace silc {
namespace trace {

const char *
fuzzPatternName(FuzzPattern pattern)
{
    switch (pattern) {
      case FuzzPattern::SetConflictStorm: return "set-conflict-storm";
      case FuzzPattern::LockChurn: return "lock-churn";
      case FuzzPattern::AliasedHotPages: return "aliased-hot-pages";
      case FuzzPattern::BypassBoundary: return "bypass-boundary";
      case FuzzPattern::MixedChaos: return "mixed-chaos";
    }
    return "?";
}

namespace {

Addr
subblockAddrOf(uint64_t page, uint32_t sub)
{
    return page * kLargeBlockSize +
        static_cast<Addr>(sub) * kSubblockSize;
}

/** @p k-th FM page (flat id >= nm pages) mapping to @p set. */
uint64_t
fmPageInSet(const FuzzGeometry &g, uint64_t set, uint64_t k)
{
    const uint64_t sets = g.numSets();
    const uint64_t first = g.nmPages() +
        (set + sets - g.nmPages() % sets) % sets;
    const uint64_t available = (g.totalPages() - first + sets - 1) / sets;
    silc_assert(available > 0);
    return first + (k % available) * sets;
}

Addr
pcOf(Rng &rng)
{
    // A small static-instruction pool: enough collisions to make the
    // PC-indexed history signature (history_index_by_page = false)
    // meaningful, enough spread to exercise distinct predictor slots.
    return 0x400000 + rng.below(16) * 0x40;
}

struct Emitter
{
    std::vector<FuzzAccess> out;
    Rng &rng;

    void
    emit(uint64_t page, uint32_t sub)
    {
        out.push_back(FuzzAccess{subblockAddrOf(page, sub), pcOf(rng),
                                 rng.chance(0.25)});
    }
};

void
genSetConflictStorm(const FuzzGeometry &g, Rng &rng, size_t length,
                    Emitter &e)
{
    const uint64_t sets = g.numSets();
    const uint32_t target_count =
        static_cast<uint32_t>(std::min<uint64_t>(4, sets));
    uint64_t targets[4];
    for (uint32_t i = 0; i < target_count; ++i)
        targets[i] = rng.below(sets);

    // More contenders than ways: every allocation evicts.
    const uint64_t aliases = g.associativity + 2;

    while (e.out.size() < length) {
        const uint64_t set = targets[rng.below(target_count)];
        if (rng.chance(0.15)) {
            // Hammer a native frame of the set so native pages fight
            // the interleaves for the lock.
            e.emit(set * g.associativity + rng.below(g.associativity),
                   static_cast<uint32_t>(rng.below(8)));
        } else {
            const uint64_t k = rng.below(aliases);
            // Clustered subblocks: per-alias offsets overlap so the
            // same positions keep swapping between owners.
            const uint32_t sub = static_cast<uint32_t>(
                (k * 3 + rng.below(6)) % kSubblocksPerBlock);
            e.emit(fmPageInSet(g, set, k), sub);
        }
    }
}

void
genLockChurn(const FuzzGeometry &g, Rng &rng, size_t length, Emitter &e)
{
    const uint64_t sets = g.numSets();
    uint64_t hot[3];
    for (int i = 0; i < 3; ++i)
        hot[i] = fmPageInSet(g, rng.below(sets), rng.below(3));
    const uint64_t hot_native = rng.below(g.nmPages());

    // Hammer long enough to cross any campaign's hot threshold, starve
    // long enough to span several of its aging intervals.
    const size_t hammer_len = 256;
    const size_t starve_len = 640;

    while (e.out.size() < length) {
        for (size_t i = 0; i < hammer_len && e.out.size() < length;
             ++i) {
            if (rng.chance(0.2)) {
                e.emit(hot_native, static_cast<uint32_t>(rng.below(4)));
            } else {
                // Dense subblock reuse drives used.count() over the
                // lock full-fetch threshold.
                e.emit(hot[rng.below(3)],
                       static_cast<uint32_t>(rng.below(12)));
            }
        }
        for (size_t i = 0; i < starve_len && e.out.size() < length;
             ++i) {
            // Cold spray: advances the aging schedule and decays the
            // hot counters so the next sweep unlocks.
            e.emit(g.nmPages() + rng.below(g.totalPages() - g.nmPages()),
                   static_cast<uint32_t>(rng.below(kSubblocksPerBlock)));
        }
    }
}

void
genAliasedHotPages(const FuzzGeometry &g, Rng &rng, size_t length,
                   Emitter &e)
{
    const uint64_t set = rng.below(g.numSets());

    // The contenders: 8 FM aliases of one set plus every native page of
    // that set, under a strongly skewed popularity ranking.
    std::vector<uint64_t> pages;
    for (uint64_t k = 0; k < 8; ++k)
        pages.push_back(fmPageInSet(g, set, k));
    for (uint32_t w = 0; w < g.associativity; ++w)
        pages.push_back(set * g.associativity + w);

    ZipfSampler zipf(pages.size(), 1.1);
    while (e.out.size() < length) {
        const uint64_t page = pages[zipf.sample(rng)];
        // Low offsets collide across aliases; the occasional high
        // offset spreads the residency vectors.
        const uint32_t sub = static_cast<uint32_t>(
            rng.chance(0.8) ? rng.below(8)
                            : rng.below(kSubblocksPerBlock));
        e.emit(page, sub);
    }
}

void
genBypassBoundary(const FuzzGeometry &g, Rng &rng, size_t length,
                  Emitter &e)
{
    const uint64_t sets = g.numSets();
    const uint64_t resident = fmPageInSet(g, rng.below(sets), 0);
    uint64_t cold_cursor = 0;

    // Burst lengths deliberately mismatch the balancer window sizes the
    // campaigns use (32..512) so bursts straddle window boundaries and
    // the measured rate lands on both sides of the target.
    while (e.out.size() < length) {
        const size_t burst = 64 + rng.below(384);
        if (rng.chance(0.5)) {
            // NM-heavy burst: after the first touch the subblock is
            // resident, so the service rate climbs toward 1.
            const uint32_t sub = static_cast<uint32_t>(rng.below(4));
            for (size_t i = 0; i < burst && e.out.size() < length; ++i)
                e.emit(resident, sub);
        } else {
            // FM-heavy burst: fresh cold pages, serviced from FM.
            for (size_t i = 0; i < burst && e.out.size() < length;
                 ++i) {
                const uint64_t page = g.nmPages() +
                    (cold_cursor++ % (g.totalPages() - g.nmPages()));
                e.emit(page, static_cast<uint32_t>(rng.below(2)));
            }
        }
    }
}

void
genMixedChaos(const FuzzGeometry &g, Rng &rng, size_t length,
              Emitter &e)
{
    const uint64_t sets = g.numSets();
    const uint64_t conflict_set = rng.below(sets);
    uint64_t hot[16];
    for (int i = 0; i < 16; ++i)
        hot[i] = rng.below(g.totalPages());

    while (e.out.size() < length) {
        const uint64_t kind = rng.below(10);
        uint64_t page;
        if (kind < 4) {
            page = rng.below(g.totalPages());
        } else if (kind < 7) {
            page = hot[rng.below(16)];
        } else if (kind < 8) {
            page = rng.below(g.nmPages());
        } else {
            page = fmPageInSet(g, conflict_set,
                               rng.below(g.associativity + 2));
        }
        e.emit(page,
               static_cast<uint32_t>(rng.below(kSubblocksPerBlock)));
    }
}

} // namespace

std::vector<FuzzAccess>
generateAdversarialTrace(FuzzPattern pattern,
                         const FuzzGeometry &geometry, uint64_t seed,
                         size_t length)
{
    silc_assert(geometry.nmPages() > 0);
    silc_assert(geometry.totalPages() > geometry.nmPages());
    silc_assert(geometry.numSets() > 0);

    Rng rng(seed * 0x9E3779B97F4A7C15ULL +
            static_cast<uint64_t>(pattern));
    Emitter e{{}, rng};
    e.out.reserve(length);

    switch (pattern) {
      case FuzzPattern::SetConflictStorm:
        genSetConflictStorm(geometry, rng, length, e);
        break;
      case FuzzPattern::LockChurn:
        genLockChurn(geometry, rng, length, e);
        break;
      case FuzzPattern::AliasedHotPages:
        genAliasedHotPages(geometry, rng, length, e);
        break;
      case FuzzPattern::BypassBoundary:
        genBypassBoundary(geometry, rng, length, e);
        break;
      case FuzzPattern::MixedChaos:
        genMixedChaos(geometry, rng, length, e);
        break;
    }
    return e.out;
}

} // namespace trace
} // namespace silc
