/**
 * @file
 * Deterministic adversarial access-stream generation for the
 * differential oracle (src/check/).
 *
 * Each pattern targets one of SILC-FM's hard state-machine corners:
 *
 *  - SetConflictStorm: more FM pages than ways fighting over a few
 *    sets, forcing constant victim selection, restores, and history
 *    saves/recalls;
 *  - LockChurn: hot pages driven over the locking threshold, then
 *    starved so aging sweeps unlock them, cyclically — exercising
 *    lock/unlock, full-fetch, and locked-way victim exclusion;
 *  - AliasedHotPages: a Zipf-skewed working set aliasing into one set
 *    together with that set's native pages, maximising displaced-native
 *    swap-back traffic against interleave churn;
 *  - BypassBoundary: service-rate bursts sized to the balancer window
 *    that toggle the bypass flag right at the target-rate comparison;
 *  - MixedChaos: all of the above plus uniform background noise.
 *
 * Generators are pure functions of (pattern, geometry, seed): the same
 * arguments always produce the same access vector, which is what makes
 * fuzz campaigns replayable from a seed alone.
 */

#ifndef SILC_TRACE_FUZZ_HH
#define SILC_TRACE_FUZZ_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace silc {
namespace trace {

/** Adversarial stream families. */
enum class FuzzPattern
{
    SetConflictStorm,
    LockChurn,
    AliasedHotPages,
    BypassBoundary,
    MixedChaos,
};

constexpr uint32_t kFuzzPatternCount = 5;

const char *fuzzPatternName(FuzzPattern pattern);

/** One raw policy-level access (physical, 64B aligned). */
struct FuzzAccess
{
    Addr paddr = 0;
    Addr pc = 0;
    bool is_write = false;
};

/** The memory geometry a generator aims its conflicts at. */
struct FuzzGeometry
{
    uint64_t nm_bytes = 0;
    uint64_t fm_bytes = 0;
    uint32_t associativity = 1;

    uint64_t nmPages() const { return nm_bytes / kLargeBlockSize; }
    uint64_t
    totalPages() const
    {
        return (nm_bytes + fm_bytes) / kLargeBlockSize;
    }
    uint64_t numSets() const { return nmPages() / associativity; }
};

/**
 * Generate @p length accesses of @p pattern.  Deterministic in
 * (pattern, geometry, seed).
 */
std::vector<FuzzAccess> generateAdversarialTrace(
    FuzzPattern pattern, const FuzzGeometry &geometry, uint64_t seed,
    size_t length);

} // namespace trace
} // namespace silc

#endif // SILC_TRACE_FUZZ_HH
