#include "trace/generator.hh"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <mutex>
#include <unordered_map>

#include "common/logging.hh"
#include "common/serialize.hh"

namespace silc {
namespace trace {

namespace {

/** Virtual base of the LLC-bound data footprint. */
constexpr Addr kDataBase = 0x1000'0000;
/** Virtual base of the small cache-resident region. */
constexpr Addr kFriendlyBase = 0x0800'0000;
/** Virtual base of synthetic code addresses. */
constexpr Addr kCodeBase = 0x0040'0000;

/** Exponential run length with the given mean, at least 1. */
uint32_t
runLength(Rng &rng, uint32_t mean)
{
    if (mean <= 1)
        return 1;
    const double u = rng.uniform();
    const double len = -std::log(1.0 - u) * static_cast<double>(mean);
    return std::max<uint32_t>(1, static_cast<uint32_t>(std::lround(len)));
}

/**
 * Constructor memo: the footprint tables (hot-page permutation and
 * per-page subblock masks) are a pure function of (profile, seed), and
 * comparison harnesses build the same (workload, core) generator once
 * per *scheme* — sevenfold in fig7_comparison.  Caching the post-init
 * RNG state alongside the tables makes repeats a pair of vector copies
 * while leaving the generated stream bit-identical.
 */
struct CtorSnapshot
{
    Rng rng;
    std::vector<uint32_t> hot_perm;
    std::vector<uint32_t> page_masks;
};

std::mutex g_ctor_mu;
std::unordered_map<std::string, std::shared_ptr<const CtorSnapshot>>
    g_ctor_cache;

/** Cache key covering every field the constructor's RNG draw depends on. */
std::string
ctorKey(const WorkloadProfile &p, uint64_t seed)
{
    char buf[320];
    std::snprintf(
        buf, sizeof buf,
        "|%llu|%llu|%.17g|%.17g|%.17g|%llu|%.17g|%.17g|%u|%u|%.17g|%llu|%u",
        static_cast<unsigned long long>(seed),
        static_cast<unsigned long long>(p.footprint_bytes),
        p.mem_fraction, p.write_fraction, p.cache_friendly_fraction,
        static_cast<unsigned long long>(p.friendly_bytes),
        p.stream_fraction, p.zipf_alpha, p.stream_run_subblocks,
        p.hot_run_subblocks, p.page_density,
        static_cast<unsigned long long>(p.phase_interval),
        p.mem_pc_count);
    return p.name + buf;
}

} // namespace

void
TraceSource::snapshot(BlobWriter &w) const
{
    (void)w;
    fatal("this trace source does not support checkpointing");
}

void
TraceSource::restore(BlobReader &r)
{
    (void)r;
    fatal("this trace source does not support checkpointing");
}

const char *
mpkiClassName(MpkiClass c)
{
    switch (c) {
      case MpkiClass::Low: return "low";
      case MpkiClass::Medium: return "medium";
      case MpkiClass::High: return "high";
    }
    return "?";
}

SyntheticGenerator::SyntheticGenerator(WorkloadProfile profile,
                                       uint64_t seed)
    : profile_(std::move(profile)), rng_(seed)
{
    const uint64_t pages = profile_.footprintPages();
    if (pages == 0)
        fatal("workload '%s' has an empty footprint",
              profile_.name.c_str());
    if (profile_.mem_fraction <= 0.0 || profile_.mem_fraction > 1.0)
        fatal("workload '%s': mem_fraction out of (0,1]",
              profile_.name.c_str());

    zipf_ = std::make_unique<ZipfSampler>(pages, profile_.zipf_alpha);

    const std::string key = ctorKey(profile_, seed);
    std::shared_ptr<const CtorSnapshot> snap;
    {
        std::lock_guard<std::mutex> lock(g_ctor_mu);
        auto it = g_ctor_cache.find(key);
        if (it != g_ctor_cache.end())
            snap = it->second;
    }
    if (snap) {
        rng_ = snap->rng;
        hot_perm_ = snap->hot_perm;
        page_masks_ = snap->page_masks;
    } else {
        hot_perm_.resize(pages);
        for (uint64_t i = 0; i < pages; ++i)
            hot_perm_[i] = static_cast<uint32_t>(i);
        reshuffleHotSet();

        // Spatial density: each page exposes a fixed subset of its
        // subblocks to hot-page accesses (a property of the
        // data-structure layout).
        page_masks_.resize(pages);
        const uint32_t used = std::max<uint32_t>(
            1,
            static_cast<uint32_t>(std::lround(
                profile_.page_density * kSubblocksPerBlock)));
        for (uint64_t p = 0; p < pages; ++p) {
            uint32_t mask = 0;
            uint32_t set_bits = 0;
            while (set_bits < used) {
                const uint32_t bit =
                    static_cast<uint32_t>(rng_.below(kSubblocksPerBlock));
                if (!(mask & (1u << bit))) {
                    mask |= (1u << bit);
                    ++set_bits;
                }
            }
            page_masks_[p] = mask;
        }

        auto built = std::make_shared<CtorSnapshot>();
        built->rng = rng_;
        built->hot_perm = hot_perm_;
        built->page_masks = page_masks_;
        std::lock_guard<std::mutex> lock(g_ctor_mu);
        g_ctor_cache.emplace(key, std::move(built));
    }
    phase_changes_ = 0;   // the constructor shuffle is not a phase change
    phase_countdown_ = profile_.phase_interval;

    mem_pcs_.resize(std::max<uint32_t>(1, profile_.mem_pc_count));
    for (size_t i = 0; i < mem_pcs_.size(); ++i)
        mem_pcs_[i] = kCodeBase + static_cast<Addr>(i) * 4;
}

void
SyntheticGenerator::reshuffleHotSet()
{
    // Fisher-Yates with the trace RNG: the hot ranking changes, modelling
    // an execution phase change.
    for (uint64_t i = hot_perm_.size(); i > 1; --i) {
        const uint64_t j = rng_.below(i);
        std::swap(hot_perm_[i - 1], hot_perm_[j]);
    }
    ++phase_changes_;
}

Addr
SyntheticGenerator::pageSubAddr(uint64_t page, uint32_t sub) const
{
    return kDataBase + page * kLargeBlockSize +
        static_cast<Addr>(sub) * kSubblockSize;
}

void
SyntheticGenerator::startBurst()
{
    const uint64_t pages = profile_.footprintPages();
    if (rng_.uniform() < profile_.stream_fraction) {
        // Sequential streaming burst touching every subblock.
        burst_is_stream_ = true;
        burst_left_ = runLength(rng_, profile_.stream_run_subblocks);
        burst_addr_ = kDataBase +
            (stream_cursor_ % (pages * kSubblocksPerBlock)) *
                kSubblockSize;
        burst_pc_ = mem_pcs_[(stream_cursor_ / 1024) % 8 %
                             mem_pcs_.size()];
    } else {
        // Hot-page burst: Zipf-ranked page, offsets from the page's
        // used-subblock mask.
        burst_is_stream_ = false;
        const uint64_t rank = zipf_->sample(rng_);
        const uint64_t page = hot_perm_[rank];
        const uint32_t mask = page_masks_[page];
        // Choose a random set bit as the starting subblock.
        const uint32_t nth =
            static_cast<uint32_t>(rng_.below(std::popcount(mask)));
        uint32_t seen = 0;
        uint32_t start = 0;
        for (uint32_t b = 0; b < kSubblocksPerBlock; ++b) {
            if (mask & (1u << b)) {
                if (seen == nth) {
                    start = b;
                    break;
                }
                ++seen;
            }
        }
        burst_left_ = runLength(rng_, profile_.hot_run_subblocks);
        burst_page_ = page;
        burst_bit_ = start;
        burst_addr_ = pageSubAddr(page, start);
        burst_pc_ = mem_pcs_[(page + 8) % mem_pcs_.size()];
    }
}

TraceInstruction
SyntheticGenerator::next()
{
    ++instr_count_;
    TraceInstruction ins;

    if (rng_.uniform() >= profile_.mem_fraction) {
        nonmem_pc_ += 4;
        if (nonmem_pc_ > kCodeBase + 64 * 1024)
            nonmem_pc_ = kCodeBase;
        ins.pc = nonmem_pc_;
        return ins;
    }

    ins.is_mem = true;
    ins.is_write = rng_.uniform() < profile_.write_fraction;
    ++mem_ops_;

    if (phase_countdown_ != 0 && --phase_countdown_ == 0) {
        reshuffleHotSet();
        phase_countdown_ = profile_.phase_interval;
    }

    if (rng_.uniform() < profile_.cache_friendly_fraction) {
        // Cache-resident region: high L1/L2 hit rate, controls MPKI.
        const uint64_t lines = profile_.friendly_bytes / kSubblockSize;
        ins.vaddr = kFriendlyBase + rng_.below(lines) * kSubblockSize;
        ins.pc = mem_pcs_[rng_.below(4)];
        return ins;
    }

    if (burst_left_ == 0)
        startBurst();

    ins.vaddr = burst_addr_;
    ins.pc = burst_pc_;
    --burst_left_;

    if (burst_is_stream_) {
        ++stream_cursor_;
        if (burst_left_ > 0) {
            const uint64_t pages = profile_.footprintPages();
            burst_addr_ = kDataBase +
                (stream_cursor_ % (pages * kSubblocksPerBlock)) *
                    kSubblockSize;
        }
    } else if (burst_left_ > 0) {
        // Advance to the next used subblock within the hot page; stop
        // the burst once the mask wraps.
        const uint32_t mask = page_masks_[burst_page_];
        uint32_t b = burst_bit_ + 1;
        while (b < kSubblocksPerBlock && !(mask & (1u << b)))
            ++b;
        if (b >= kSubblocksPerBlock) {
            burst_left_ = 0;
        } else {
            burst_bit_ = b;
            burst_addr_ = pageSubAddr(burst_page_, b);
        }
    }
    return ins;
}

void
SyntheticGenerator::snapshot(BlobWriter &w) const
{
    for (uint64_t word : rng_.state())
        w.putU64(word);
    w.putU64(hot_perm_.size());
    for (uint32_t p : hot_perm_)
        w.putU32(p);
    w.putU64(nonmem_pc_);
    w.putBool(burst_is_stream_);
    w.putU32(burst_left_);
    w.putU64(burst_addr_);
    w.putU64(burst_pc_);
    w.putU64(burst_page_);
    w.putU32(burst_bit_);
    w.putU64(stream_cursor_);
    w.putU64(mem_ops_);
    w.putU64(phase_countdown_);
    w.putU64(phase_changes_);
    w.putU64(instr_count_);
}

void
SyntheticGenerator::restore(BlobReader &r)
{
    std::array<uint64_t, 4> s;
    for (auto &word : s)
        word = r.getU64();
    rng_.setState(s);
    const uint64_t perm = r.getU64();
    if (perm != hot_perm_.size())
        fatal("trace restore: hot set has %llu pages, generator %zu "
              "(profile mismatch)", static_cast<unsigned long long>(perm),
              hot_perm_.size());
    for (auto &p : hot_perm_)
        p = r.getU32();
    nonmem_pc_ = r.getU64();
    burst_is_stream_ = r.getBool();
    burst_left_ = r.getU32();
    burst_addr_ = r.getU64();
    burst_pc_ = r.getU64();
    burst_page_ = r.getU64();
    burst_bit_ = r.getU32();
    stream_cursor_ = r.getU64();
    mem_ops_ = r.getU64();
    phase_countdown_ = r.getU64();
    phase_changes_ = r.getU64();
    instr_count_ = r.getU64();
}

} // namespace trace
} // namespace silc
