/**
 * @file
 * Synthetic SPEC-like instruction trace generation.
 *
 * The paper evaluates 14 SPEC CPU2006 benchmarks in rate mode (one copy
 * per core) using 1B-instruction SimPoint slices.  SPEC traces are not
 * redistributable, so this module synthesises address streams with the
 * properties that differentiate the schemes under study:
 *
 *  - memory intensity (drives LLC MPKI class: low / medium / high),
 *  - footprint relative to NM capacity,
 *  - spatial locality (subblocks touched per 2KB block, run lengths),
 *  - temporal skew of page popularity (Zipf hot sets),
 *  - hot-set phase changes (short-lived hot pages, as in gems/milc).
 */

#ifndef SILC_TRACE_GENERATOR_HH
#define SILC_TRACE_GENERATOR_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"

namespace silc {

class BlobWriter;
class BlobReader;

namespace trace {

/** One instruction of a trace. */
struct TraceInstruction
{
    bool is_mem = false;
    bool is_write = false;
    Addr vaddr = 0;
    Addr pc = 0;
};

/** An infinite instruction stream. */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    /** Produce the next instruction. */
    virtual TraceInstruction next() = 0;

    /**
     * Serialize / restore the stream position for checkpointing.  The
     * defaults fatal(): sources that cannot round-trip their state must
     * not be sampled (SamplingController checks policy support, and all
     * shipped sources implement these).
     */
    virtual void snapshot(BlobWriter &w) const;
    virtual void restore(BlobReader &r);
};

/** MPKI class from Table III. */
enum class MpkiClass { Low, Medium, High };

/** Printable name of an MPKI class. */
const char *mpkiClassName(MpkiClass c);

/**
 * Knobs describing one synthetic benchmark.  See trace/profiles.cc for
 * the 14 Table III instances.
 */
struct WorkloadProfile
{
    std::string name = "synthetic";
    MpkiClass mpki_class = MpkiClass::Medium;

    /** Per-core data footprint in bytes (2KB-page granular). */
    uint64_t footprint_bytes = 8 * 1024 * 1024;

    /** Fraction of instructions that access memory. */
    double mem_fraction = 0.30;

    /** Fraction of memory accesses that are stores. */
    double write_fraction = 0.25;

    /**
     * Fraction of memory accesses that go to a small, cache-resident
     * region — raises L1/L2 hit rates and therefore lowers LLC MPKI.
     */
    double cache_friendly_fraction = 0.40;

    /** Size of the cache-resident region in bytes. */
    uint64_t friendly_bytes = 16 * 1024;

    /**
     * Fraction of LLC-bound accesses produced by a sequential streaming
     * pointer (high spatial locality); the rest come from Zipf-skewed
     * hot pages.
     */
    double stream_fraction = 0.5;

    /** Zipf skew of hot-page popularity (0 = uniform). */
    double zipf_alpha = 0.8;

    /** Mean sequential 64B run length for streaming bursts. */
    uint32_t stream_run_subblocks = 16;

    /** Mean 64B run length for hot-page bursts. */
    uint32_t hot_run_subblocks = 2;

    /**
     * Fraction of each 2KB page that is ever touched by hot-page
     * accesses (spatial density; PoM wastes bandwidth when this is low).
     */
    double page_density = 0.5;

    /**
     * Memory accesses between hot-set re-randomisations (0 = static hot
     * set).  Models short-lived hot pages that defeat epoch schemes.
     */
    uint64_t phase_interval = 0;

    /** Distinct static instruction addresses generating memory ops. */
    uint32_t mem_pc_count = 64;

    /** Number of 2KB pages in the footprint. */
    uint64_t
    footprintPages() const
    {
        return footprint_bytes / kLargeBlockSize;
    }
};

/**
 * The synthetic generator.  Deterministic given (profile, seed); each
 * core instantiates its own copy with a distinct seed.
 */
class SyntheticGenerator : public TraceSource
{
  public:
    SyntheticGenerator(WorkloadProfile profile, uint64_t seed);

    TraceInstruction next() override;

    /**
     * Serialize the mutable stream state (RNG, hot permutation, burst
     * machine, counters).  Ctor-pure tables (page_masks_, zipf_,
     * mem_pcs_) are not captured: restore() requires a generator built
     * with the same (profile, seed), which the ctor memo makes exact.
     */
    void snapshot(BlobWriter &w) const override;
    void restore(BlobReader &r) override;

    const WorkloadProfile &profile() const { return profile_; }

    /** Memory instructions generated so far. */
    uint64_t memOpsGenerated() const { return mem_ops_; }

    /** Hot-set phase changes that have occurred. */
    uint64_t phaseChanges() const { return phase_changes_; }

  private:
    /** Start a new memory burst (choose region, page, offset, length). */
    void startBurst();

    /** Re-randomise the hot-page ranking (phase change). */
    void reshuffleHotSet();

    /** vaddr of subblock @p sub in footprint page @p page. */
    Addr pageSubAddr(uint64_t page, uint32_t sub) const;

    WorkloadProfile profile_;
    Rng rng_;
    std::unique_ptr<ZipfSampler> zipf_;

    /** rank -> page permutation (re-seeded on phase changes). */
    std::vector<uint32_t> hot_perm_;

    /** per-page 32-bit mask of "used" subblocks (spatial density). */
    std::vector<uint32_t> page_masks_;

    std::vector<Addr> mem_pcs_;
    Addr nonmem_pc_ = 0x400000;

    // Burst state.
    bool burst_is_stream_ = false;
    uint32_t burst_left_ = 0;
    Addr burst_addr_ = 0;
    Addr burst_pc_ = 0;
    uint64_t burst_page_ = 0;
    uint32_t burst_bit_ = 0;
    uint64_t stream_cursor_ = 0;

    uint64_t mem_ops_ = 0;
    /** Mem ops until the next hot-set reshuffle; 0 disables phases. */
    uint64_t phase_countdown_ = 0;
    uint64_t phase_changes_ = 0;
    uint64_t instr_count_ = 0;
};

} // namespace trace
} // namespace silc

#endif // SILC_TRACE_GENERATOR_HH
