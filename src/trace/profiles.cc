#include "trace/profiles.hh"

#include "common/logging.hh"

namespace silc {
namespace trace {

namespace {

WorkloadProfile
base(const char *name, MpkiClass cls, uint64_t footprint_kib)
{
    WorkloadProfile p;
    p.name = name;
    p.mpki_class = cls;
    p.footprint_bytes = footprint_kib * 1024;
    switch (cls) {
      case MpkiClass::Low:
        p.mem_fraction = 0.30;
        p.cache_friendly_fraction = 0.97;
        break;
      case MpkiClass::Medium:
        p.mem_fraction = 0.30;
        p.cache_friendly_fraction = 0.93;
        break;
      case MpkiClass::High:
        p.mem_fraction = 0.35;
        p.cache_friendly_fraction = 0.84;
        break;
    }
    return p;
}

std::vector<WorkloadProfile>
makeProfiles()
{
    std::vector<WorkloadProfile> v;

    // ---- Low MPKI (< 11) ------------------------------------------------
    {
        // bwaves: heavy streaming over a large array; HMA reacts too
        // slowly to its moving window (paper Section V-B).
        WorkloadProfile p = base("bwaves", MpkiClass::Low, 768);
        p.stream_fraction = 0.90;
        p.stream_run_subblocks = 24;
        p.zipf_alpha = 0.30;
        p.page_density = 0.95;
        p.phase_interval = 160'000;
        v.push_back(p);
    }
    {
        // cactusADM: moderate skew; suffers conflict misses under
        // direct-mapped CAMEO.
        WorkloadProfile p = base("cactus", MpkiClass::Low, 768);
        p.stream_fraction = 0.30;
        p.zipf_alpha = 0.95;
        p.page_density = 0.60;
        p.phase_interval = 300000;
        p.hot_run_subblocks = 2;
        p.phase_interval = 400000;
        v.push_back(p);
    }
    {
        // dealII: balanced mix with decent spatial locality.
        WorkloadProfile p = base("dealii", MpkiClass::Low, 640);
        p.stream_fraction = 0.40;
        p.zipf_alpha = 1.00;
        p.page_density = 0.70;
        p.phase_interval = 350000;
        v.push_back(p);
    }
    {
        // xalancbmk: strongly skewed hot pages that collide in the NM
        // index; locking gives it a large extra win (paper: +14%).
        WorkloadProfile p = base("xalanc", MpkiClass::Low, 768);
        p.stream_fraction = 0.10;
        p.zipf_alpha = 1.15;
        p.page_density = 0.50;
        p.hot_run_subblocks = 2;
        p.phase_interval = 400000;
        v.push_back(p);
    }

    // ---- Medium MPKI (11 - 32) ------------------------------------------
    {
        // gcc: many lukewarm blocks below the hotness threshold;
        // associativity, not locking, is what helps (paper: +36%).
        WorkloadProfile p = base("gcc", MpkiClass::Medium, 768);
        p.stream_fraction = 0.20;
        p.zipf_alpha = 0.75;
        p.page_density = 0.50;
        p.hot_run_subblocks = 3;
        p.phase_interval = 300000;
        v.push_back(p);
    }
    {
        // GemsFDTD: many short-lived hot pages; epoch schemes migrate
        // too late (paper: HMA degrades, CAMEO improves).
        WorkloadProfile p = base("gems", MpkiClass::Medium, 1024);
        p.stream_fraction = 0.45;
        p.zipf_alpha = 0.95;
        p.page_density = 0.60;
        p.phase_interval = 150'000;
        v.push_back(p);
    }
    {
        // leslie3d: streaming stencil with high spatial locality.
        WorkloadProfile p = base("leslie", MpkiClass::Medium, 768);
        p.stream_fraction = 0.80;
        p.stream_run_subblocks = 16;
        p.zipf_alpha = 0.50;
        p.page_density = 0.90;
        p.phase_interval = 450000;
        v.push_back(p);
    }
    {
        // omnetpp: pointer chasing, very low spatial locality; PoM's 2KB
        // migrations waste bandwidth here.
        WorkloadProfile p = base("omnet", MpkiClass::Medium, 640);
        p.stream_fraction = 0.05;
        p.zipf_alpha = 1.00;
        p.page_density = 0.30;
        p.hot_run_subblocks = 1;
        p.phase_interval = 300000;
        v.push_back(p);
    }
    {
        // zeusmp: mixed streaming/hot behaviour.
        WorkloadProfile p = base("zeusmp", MpkiClass::Medium, 768);
        p.stream_fraction = 0.55;
        p.zipf_alpha = 0.85;
        p.page_density = 0.70;
        p.phase_interval = 350000;
        v.push_back(p);
    }

    // ---- High MPKI (> 32) -----------------------------------------------
    {
        // lbm: write-heavy streaming over the full footprint.
        WorkloadProfile p = base("lbm", MpkiClass::High, 1280);
        p.cache_friendly_fraction = 0.80;
        p.stream_fraction = 0.95;
        p.stream_run_subblocks = 28;
        p.zipf_alpha = 0.20;
        p.page_density = 1.00;
        p.write_fraction = 0.45;
        v.push_back(p);
    }
    {
        // libquantum: perfectly sequential sweeps; fully-associative
        // epoch placement (HMA) does well, CAMEO conflicts hurt.
        WorkloadProfile p = base("lib", MpkiClass::High, 1024);
        p.stream_fraction = 0.90;
        p.stream_run_subblocks = 32;
        p.zipf_alpha = 0.30;
        p.page_density = 1.00;
        p.phase_interval = 500000;
        v.push_back(p);
    }
    {
        // mcf: enormous footprint, pointer chasing, low density.
        WorkloadProfile p = base("mcf", MpkiClass::High, 1024);
        p.stream_fraction = 0.05;
        p.zipf_alpha = 0.90;
        p.page_density = 0.12;
        p.hot_run_subblocks = 1;
        p.phase_interval = 400000;
        v.push_back(p);
    }
    {
        // milc: phase changes plus index thrashing; the only workload
        // whose access rate exceeds 0.8, so bypassing pays off.
        WorkloadProfile p = base("milc", MpkiClass::High, 1024);
        p.stream_fraction = 0.35;
        p.zipf_alpha = 1.00;
        p.page_density = 0.50;
        p.phase_interval = 120'000;
        v.push_back(p);
    }
    {
        // soplex: sparse solver; mixed locality.
        WorkloadProfile p = base("soplex", MpkiClass::High, 768);
        p.stream_fraction = 0.45;
        p.zipf_alpha = 0.95;
        p.page_density = 0.60;
        v.push_back(p);
    }

    return v;
}

} // namespace

const std::vector<WorkloadProfile> &
table3Profiles()
{
    static const std::vector<WorkloadProfile> profiles = makeProfiles();
    return profiles;
}

const WorkloadProfile &
findProfile(const std::string &name)
{
    for (const auto &p : table3Profiles()) {
        if (p.name == name)
            return p;
    }
    fatal("unknown workload profile '%s'", name.c_str());
}

std::vector<std::string>
profileNames()
{
    std::vector<std::string> names;
    for (const auto &p : table3Profiles())
        names.push_back(p.name);
    return names;
}

std::vector<std::string>
representativeNames()
{
    return {"bwaves", "xalanc", "gcc", "omnet", "lbm", "mcf", "milc"};
}

} // namespace trace
} // namespace silc
