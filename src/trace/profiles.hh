/**
 * @file
 * The 14 SPEC CPU2006-like workload profiles of Table III, grouped into
 * low / medium / high LLC MPKI classes, with per-benchmark locality
 * characters chosen to reproduce the behaviours the paper calls out
 * (e.g. xalancbmk's locking benefit, gcc's lukewarm blocks helped by
 * associativity, milc's thrashing and bypass benefit, gems' short-lived
 * hot pages).
 */

#ifndef SILC_TRACE_PROFILES_HH
#define SILC_TRACE_PROFILES_HH

#include <string>
#include <vector>

#include "trace/generator.hh"

namespace silc {
namespace trace {

/** All 14 Table III profiles, in the paper's order. */
const std::vector<WorkloadProfile> &table3Profiles();

/** Profile by benchmark name; fatal() when unknown. */
const WorkloadProfile &findProfile(const std::string &name);

/** Names of all Table III benchmarks, in order. */
std::vector<std::string> profileNames();

/** A smaller representative subset (one per class plus extremes),
 *  used by the capacity-sweep bench to bound run time. */
std::vector<std::string> representativeNames();

} // namespace trace
} // namespace silc

#endif // SILC_TRACE_PROFILES_HH
