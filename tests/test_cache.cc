/**
 * @file
 * Unit tests for the cache model (geometry, LRU, write-back/allocate,
 * victims) and the MSHR file (coalescing, per-core throttling).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "cache/cache.hh"
#include "cache/mshr.hh"

using namespace silc;
using namespace silc::cache;

namespace {

CacheParams
smallCache(uint32_t assoc = 2)
{
    CacheParams p;
    p.name = "test";
    p.size_bytes = 1024;   // 16 lines
    p.associativity = assoc;
    p.line_bytes = 64;
    return p;
}

} // namespace

// ---- geometry ---------------------------------------------------------------

TEST(CacheGeometry, SetCount)
{
    CacheParams p = smallCache(2);
    EXPECT_EQ(p.numSets(), 8u);
    Cache c(p);
    EXPECT_EQ(c.params().numSets(), 8u);
}

TEST(CacheGeometry, Table2Shapes)
{
    CacheParams l1d;
    l1d.size_bytes = 16 * 1024;
    l1d.associativity = 4;
    EXPECT_EQ(l1d.numSets(), 64u);
    CacheParams l1i;
    l1i.size_bytes = 64 * 1024;
    l1i.associativity = 2;
    EXPECT_EQ(l1i.numSets(), 512u);
}

// ---- hit/miss behaviour -------------------------------------------------------

TEST(Cache, ColdMissThenHit)
{
    Cache c(smallCache());
    EXPECT_FALSE(c.access(0x1000, false).hit);
    EXPECT_TRUE(c.access(0x1000, false).hit);
    EXPECT_TRUE(c.access(0x1030, false).hit);   // same line
    EXPECT_EQ(c.hits(), 2u);
    EXPECT_EQ(c.misses(), 1u);
}

TEST(Cache, ProbeDoesNotDisturb)
{
    Cache c(smallCache());
    EXPECT_FALSE(c.probe(0x1000));
    c.access(0x1000, false);
    EXPECT_TRUE(c.probe(0x1000));
    EXPECT_EQ(c.hits(), 0u);   // probe is stat-free
}

TEST(Cache, LruEvictsLeastRecent)
{
    Cache c(smallCache(2));   // 8 sets, 2 ways
    // Three lines in the same set (stride = sets * line = 512B).
    c.access(0x0000, false);
    c.access(0x0200, false);
    c.access(0x0000, false);   // refresh line 0
    c.access(0x0400, false);   // evicts 0x0200
    EXPECT_TRUE(c.probe(0x0000));
    EXPECT_FALSE(c.probe(0x0200));
    EXPECT_TRUE(c.probe(0x0400));
}

TEST(Cache, DirtyVictimReportsWriteback)
{
    Cache c(smallCache(1));   // direct-mapped: 16 sets
    c.access(0x0000, true);    // dirty
    AccessOutcome out = c.access(0x0000 + 1024, false);   // same set
    EXPECT_FALSE(out.hit);
    EXPECT_TRUE(out.writeback);
    EXPECT_EQ(out.writeback_addr, 0x0000u);
    EXPECT_EQ(c.writebacks(), 1u);
}

TEST(Cache, CleanVictimNoWriteback)
{
    Cache c(smallCache(1));
    c.access(0x0000, false);
    AccessOutcome out = c.access(0x0000 + 1024, false);
    EXPECT_FALSE(out.writeback);
}

TEST(Cache, WriteMarksDirtyOnHitToo)
{
    Cache c(smallCache(1));
    c.access(0x0000, false);   // clean fill
    c.access(0x0000, true);    // dirty it
    AccessOutcome out = c.access(0x0000 + 1024, false);
    EXPECT_TRUE(out.writeback);
}

TEST(Cache, FillInstallsWithoutHitStats)
{
    Cache c(smallCache());
    c.fill(0x2000, false);
    EXPECT_EQ(c.hits(), 0u);
    EXPECT_EQ(c.misses(), 0u);
    EXPECT_TRUE(c.probe(0x2000));
}

TEST(Cache, FillDirtyCascades)
{
    Cache c(smallCache(1));
    c.fill(0x0000, true);
    AccessOutcome out = c.fill(0x0000 + 1024, false);
    EXPECT_TRUE(out.writeback);
    EXPECT_EQ(out.writeback_addr, 0x0000u);
}

TEST(Cache, InvalidateReportsDirtiness)
{
    Cache c(smallCache());
    c.access(0x3000, true);
    EXPECT_TRUE(c.invalidate(0x3000));
    EXPECT_FALSE(c.probe(0x3000));
    EXPECT_FALSE(c.invalidate(0x3000));   // already gone
}

TEST(Cache, NoteMissOnlyTouchesStats)
{
    Cache c(smallCache());
    c.noteMiss();
    EXPECT_EQ(c.misses(), 1u);
    EXPECT_FALSE(c.probe(0));
}

TEST(Cache, MissRate)
{
    Cache c(smallCache());
    c.access(0x0000, false);
    c.access(0x0000, false);
    EXPECT_DOUBLE_EQ(c.missRate(), 0.5);
}

TEST(Cache, ResetClearsEverything)
{
    Cache c(smallCache());
    c.access(0x0000, true);
    c.reset();
    EXPECT_FALSE(c.probe(0x0000));
    EXPECT_EQ(c.hits() + c.misses(), 0u);
}

TEST(Cache, RandomReplacementStillCorrect)
{
    CacheParams p = smallCache(2);
    p.replacement = Replacement::Random;
    Cache c(p);
    c.access(0x0000, false);
    c.access(0x0200, false);
    c.access(0x0400, false);   // evicts one of the two
    int present = (c.probe(0x0000) ? 1 : 0) + (c.probe(0x0200) ? 1 : 0);
    EXPECT_EQ(present, 1);
    EXPECT_TRUE(c.probe(0x0400));
}

/** Capacity property: a working set equal to the cache size fits. */
class CacheCapacity : public ::testing::TestWithParam<uint32_t>
{
};

TEST_P(CacheCapacity, WorkingSetEqualToCapacityFits)
{
    CacheParams p = smallCache(GetParam());
    Cache c(p);
    const uint64_t lines = p.size_bytes / p.line_bytes;
    for (uint64_t i = 0; i < lines; ++i)
        c.access(i * p.line_bytes, false);
    // Second pass: all hits.
    for (uint64_t i = 0; i < lines; ++i)
        EXPECT_TRUE(c.access(i * p.line_bytes, false).hit);
    EXPECT_EQ(c.evictions(), 0u);
}

TEST_P(CacheCapacity, OversizedWorkingSetThrashes)
{
    CacheParams p = smallCache(GetParam());
    Cache c(p);
    const uint64_t lines = 2 * p.size_bytes / p.line_bytes;
    for (int pass = 0; pass < 2; ++pass) {
        for (uint64_t i = 0; i < lines; ++i)
            c.access(i * p.line_bytes, false);
    }
    EXPECT_GT(c.evictions(), 0u);
    EXPECT_GT(c.missRate(), 0.5);
}

INSTANTIATE_TEST_SUITE_P(Assoc, CacheCapacity,
                         ::testing::Values(1u, 2u, 4u, 8u, 16u));

// ---- MSHRs ----------------------------------------------------------------

TEST(Mshr, PrimaryThenCoalesced)
{
    MshrFile mshr(4, 2);
    int fired = 0;
    auto cb = [&](Tick) { ++fired; };
    EXPECT_EQ(mshr.allocate(0x1000, 0, cb), MshrAllocation::Primary);
    EXPECT_EQ(mshr.allocate(0x1000, 1, cb), MshrAllocation::Coalesced);
    EXPECT_TRUE(mshr.outstanding(0x1000));
    EXPECT_EQ(mshr.complete(0x1000, 55), 2u);
    EXPECT_EQ(fired, 2);
    EXPECT_FALSE(mshr.outstanding(0x1000));
}

TEST(Mshr, CapacityRejects)
{
    MshrFile mshr(2, 2);
    auto cb = [](Tick) {};
    EXPECT_EQ(mshr.allocate(0x0000, 0, cb), MshrAllocation::Primary);
    EXPECT_EQ(mshr.allocate(0x0040, 1, cb), MshrAllocation::Primary);
    EXPECT_EQ(mshr.allocate(0x0080, 2, cb), MshrAllocation::NoCapacity);
    EXPECT_EQ(mshr.rejections(), 1u);
}

TEST(Mshr, PerCoreThrottle)
{
    MshrFile mshr(8, 2);
    auto cb = [](Tick) {};
    EXPECT_EQ(mshr.allocate(0x0000, 0, cb), MshrAllocation::Primary);
    EXPECT_EQ(mshr.allocate(0x0040, 0, cb), MshrAllocation::Primary);
    // Core 0 is at its limit; core 1 is not.
    EXPECT_EQ(mshr.allocate(0x0080, 0, cb), MshrAllocation::NoCapacity);
    EXPECT_EQ(mshr.allocate(0x0080, 1, cb), MshrAllocation::Primary);
    // Coalescing is always allowed.
    EXPECT_EQ(mshr.allocate(0x0040, 0, cb), MshrAllocation::Coalesced);
}

TEST(Mshr, CompleteFreesPerCoreSlot)
{
    MshrFile mshr(8, 1);
    auto cb = [](Tick) {};
    EXPECT_EQ(mshr.allocate(0x0000, 0, cb), MshrAllocation::Primary);
    EXPECT_EQ(mshr.allocate(0x0040, 0, cb), MshrAllocation::NoCapacity);
    mshr.complete(0x0000, 1);
    EXPECT_EQ(mshr.allocate(0x0040, 0, cb), MshrAllocation::Primary);
}

TEST(Mshr, WaitersFireInOrder)
{
    MshrFile mshr(4, 4);
    std::vector<int> order;
    mshr.allocate(0x1000, 0, [&](Tick) { order.push_back(0); });
    mshr.addWaiter(0x1000, [&](Tick) { order.push_back(1); });
    mshr.addWaiter(0x1000, [&](Tick) { order.push_back(2); });
    mshr.complete(0x1000, 9);
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(Mshr, TableSurvivesCollisionChurn)
{
    // The MSHR file is an open-addressed table with backward-shift
    // deletion; interleave allocates and completes over many block
    // addresses (far more than the capacity, in clustered strides that
    // force probe-chain collisions) and verify lookups never lose or
    // duplicate an entry.
    MshrFile mshr(16, 16);
    std::vector<Addr> live;
    uint64_t completed = 0;
    uint64_t next_block = 0;
    // Deterministic LCG so the churn pattern is reproducible.
    uint64_t state = 12345;
    auto rnd = [&state](uint64_t bound) {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        return (state >> 33) % bound;
    };
    for (int step = 0; step < 2000; ++step) {
        if (live.size() < 16 && rnd(2) == 0) {
            // Clustered addresses: consecutive block numbers hash near
            // each other often enough to exercise chain shifts.
            const Addr addr = (next_block++ % 64) * kSubblockSize;
            if (std::find(live.begin(), live.end(), addr) != live.end())
                continue;
            ASSERT_EQ(mshr.allocate(addr, 0, [&](Tick) { ++completed; }),
                      MshrAllocation::Primary)
                << "step " << step;
            live.push_back(addr);
        } else if (!live.empty()) {
            const size_t pick = rnd(live.size());
            const Addr addr = live[pick];
            ASSERT_TRUE(mshr.outstanding(addr)) << "step " << step;
            ASSERT_EQ(mshr.complete(addr, step), 1u) << "step " << step;
            ASSERT_FALSE(mshr.outstanding(addr)) << "step " << step;
            live.erase(live.begin() + pick);
        }
        ASSERT_EQ(mshr.size(), live.size()) << "step " << step;
        for (const Addr addr : live)
            ASSERT_TRUE(mshr.outstanding(addr)) << "step " << step;
    }
    while (!live.empty()) {
        mshr.complete(live.back(), 0);
        live.pop_back();
    }
    EXPECT_EQ(mshr.size(), 0u);
    EXPECT_GT(completed, 0u);
}

TEST(Mshr, WaiterMayReallocateSameBlock)
{
    MshrFile mshr(4, 4);
    bool refired = false;
    mshr.allocate(0x1000, 0, [&](Tick) {
        // Re-allocate the same block from inside the completion.
        EXPECT_EQ(mshr.allocate(0x1000, 0, [&](Tick) { refired = true; }),
                  MshrAllocation::Primary);
    });
    mshr.complete(0x1000, 1);
    EXPECT_TRUE(mshr.outstanding(0x1000));
    mshr.complete(0x1000, 2);
    EXPECT_TRUE(refired);
}

TEST(Mshr, CoalescedCountStat)
{
    MshrFile mshr(4, 4);
    auto cb = [](Tick) {};
    mshr.allocate(0x1000, 0, cb);
    mshr.allocate(0x1000, 0, cb);
    mshr.allocate(0x1000, 1, cb);
    EXPECT_EQ(mshr.coalesced(), 2u);
}

TEST(Mshr, ResetClears)
{
    MshrFile mshr(4, 4);
    mshr.allocate(0x1000, 0, [](Tick) {});
    mshr.reset();
    EXPECT_FALSE(mshr.outstanding(0x1000));
    EXPECT_EQ(mshr.size(), 0u);
    EXPECT_EQ(mshr.outstandingFor(0), 0u);
}

TEST(MshrDeath, MisalignedBlockAsserts)
{
    MshrFile mshr(4, 4);
    EXPECT_DEATH(mshr.allocate(0x1001, 0, [](Tick) {}), "assertion");
}

TEST(MshrDeath, CompletingUnknownPanics)
{
    MshrFile mshr(4, 4);
    EXPECT_DEATH(mshr.complete(0x1000, 1), "unknown");
}

// ---- hierarchy-shape regression ---------------------------------------------------

TEST(Cache, SharedL2HoldsLessThanSumOfFootprints)
{
    // The scaled L2 (256KB) must be small relative to any workload
    // footprint so that reuse reaches the memory system (DESIGN.md,
    // regime condition 2).  Guard the relationship, not the constant.
    CacheParams l2;
    l2.size_bytes = 256 * 1024;
    l2.associativity = 16;
    l2.validate();
    EXPECT_LT(l2.size_bytes, 1024u * 1024u);
}

TEST(Cache, LruIsPerSet)
{
    Cache c(smallCache(2));   // 8 sets, 2 ways
    // Heavy use of set 0 must not evict lines in set 1.
    c.access(0x0000, false);          // set 0
    c.access(0x0040, false);          // set 1
    for (int i = 0; i < 16; ++i) {
        c.access(0x0000 + 512 * (i % 2), false);   // churn set 0
    }
    EXPECT_TRUE(c.probe(0x0040));
}

TEST(Cache, WritebackAddressReconstruction)
{
    // The victim's full line address must be reconstructable from the
    // stored tag (regression for tag/set arithmetic).
    Cache c(smallCache(1));   // 16 sets
    const Addr victim = 7 * 64 + 3 * 1024;   // set 7, some tag
    c.access(victim, true);
    AccessOutcome out = c.access(victim + 5 * 1024, false);   // same set
    ASSERT_TRUE(out.writeback);
    EXPECT_EQ(out.writeback_addr, victim);
}
