/**
 * @file
 * Tests for the differential correctness harness (src/check/): the
 * untimed reference model in lockstep with the live policy, the deep
 * state sweep, the fuzz campaign machinery (generation, replay,
 * shrinking, trace persistence), and — since the oracle currently finds
 * no divergence in core/ — an injected-fault self-test proving that
 * each corruption class (remap, residency bitvector, lock bit, LRU)
 * is actually detected.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>

#include "check/campaign.hh"
#include "check/differential.hh"
#include "common/rng.hh"
#include "core/silc_fm.hh"
#include "dram/dram_system.hh"
#include "sim/system.hh"
#include "trace/fuzz.hh"

using namespace silc;
using namespace silc::check;
using silc::core::SilcFmParams;
using silc::core::SilcFmPolicy;
using silc::trace::FuzzAccess;
using silc::trace::FuzzGeometry;
using silc::trace::FuzzPattern;

namespace {

class CheckFixture : public ::testing::Test
{
  protected:
    CheckFixture()
    {
        nm_ = std::make_unique<dram::DramSystem>(dram::hbm2Params(),
                                                 1_MiB, events_);
        fm_ = std::make_unique<dram::DramSystem>(dram::ddr3Params(),
                                                 4_MiB, events_);
        env_.nm = nm_.get();
        env_.fm = fm_.get();
        env_.events = &events_;
    }

    SilcFmParams
    stormParams(uint32_t assoc)
    {
        SilcFmParams p;
        p.associativity = assoc;
        p.hot_threshold = 5;
        p.aging_interval = 300;
        p.bypass_window = 128;
        p.bypass_target = 0.5;
        p.history_min_bits = 4;
        return p;
    }

    /**
     * Build a policy+checker pair and drive @p n uniform random
     * accesses through it in lockstep.
     */
    struct Lockstep
    {
        std::unique_ptr<SilcFmPolicy> policy;
        std::unique_ptr<DifferentialChecker> checker;
    };

    Lockstep
    makeLockstep(SilcFmParams params,
                 DifferentialChecker::Options opts = {})
    {
        Lockstep l;
        l.policy = std::make_unique<SilcFmPolicy>(env_, params);
        l.checker =
            std::make_unique<DifferentialChecker>(*l.policy, opts);
        l.policy->setObserver(l.checker.get());
        return l;
    }

    void
    storm(Lockstep &l, uint64_t seed, int n)
    {
        Rng rng(seed);
        Tick now = 0;
        for (int i = 0; i < n; ++i) {
            const Addr a =
                rng.below(l.policy->flatSpaceBytes() / 64) * 64;
            l.policy->demandAccess(a, rng.chance(0.25), 0,
                                   0x400 + rng.below(16) * 4, nullptr,
                                   now);
            now += 7;
        }
    }

    EventQueue events_;
    std::unique_ptr<dram::DramSystem> nm_;
    std::unique_ptr<dram::DramSystem> fm_;
    policy::PolicyEnv env_;
};

} // namespace

// ---- lockstep agreement ---------------------------------------------------

TEST_F(CheckFixture, RandomStormLockstepCleanAcrossAssociativities)
{
    for (uint32_t assoc : {1u, 2u, 4u}) {
        Lockstep l = makeLockstep(stormParams(assoc));
        storm(l, 42 + assoc, 5000);
        EXPECT_FALSE(l.checker->failed())
            << "assoc " << assoc << ": " << l.checker->failure();
        EXPECT_TRUE(l.checker->verifyFullState())
            << "assoc " << assoc << ": " << l.checker->failure();
        EXPECT_EQ(l.checker->accessesChecked(), 5000u);
        EXPECT_GE(l.checker->sweepsRun(), 1u);
    }
}

TEST_F(CheckFixture, FeatureCornersLockstepClean)
{
    // Feature flags off one at a time: the oracle must track the
    // reduced machine, not just the full one.
    for (int corner = 0; corner < 4; ++corner) {
        SilcFmParams p = stormParams(2);
        if (corner == 0) p.enable_locking = false;
        if (corner == 1) p.enable_bypass = false;
        if (corner == 2) p.enable_history_fetch = false;
        if (corner == 3) p.history_entries = 256;   // force collisions
        Lockstep l = makeLockstep(p);
        storm(l, 1000 + corner, 4000);
        EXPECT_TRUE(l.checker->verifyFullState())
            << "corner " << corner << ": " << l.checker->failure();
    }
}

TEST_F(CheckFixture, ExhaustiveLocateAgreementAfterStorm)
{
    Lockstep l = makeLockstep(stormParams(2));
    storm(l, 7, 4000);
    ASSERT_FALSE(l.checker->failed()) << l.checker->failure();
    for (Addr a = 0; a < l.policy->flatSpaceBytes();
         a += kSubblockSize) {
        ASSERT_EQ(l.policy->locate(a), l.checker->reference().locate(a))
            << "flat address 0x" << std::hex << a;
    }
}

TEST_F(CheckFixture, AdversarialPatternsClean)
{
    // One short campaign per pattern family, on top of the 25 mixed
    // campaigns the fuzz_check ctest runs.
    for (uint32_t pat = 0; pat < trace::kFuzzPatternCount; ++pat) {
        CampaignConfig cfg = makeCampaign(900 + pat, 3000);
        cfg.pattern = static_cast<FuzzPattern>(pat);
        const auto trace = trace::generateAdversarialTrace(
            cfg.pattern, cfg.geometry, cfg.seed, cfg.accesses);
        const auto failure = runCampaignTrace(cfg, trace);
        EXPECT_FALSE(failure.has_value())
            << trace::fuzzPatternName(cfg.pattern) << ": "
            << failure->why << " at access " << failure->access_index;
    }
}

TEST_F(CheckFixture, GeneratorsAreDeterministic)
{
    const CampaignConfig cfg = makeCampaign(3, 500);
    const auto a = trace::generateAdversarialTrace(
        cfg.pattern, cfg.geometry, cfg.seed, cfg.accesses);
    const auto b = trace::generateAdversarialTrace(
        cfg.pattern, cfg.geometry, cfg.seed, cfg.accesses);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].paddr, b[i].paddr);
        EXPECT_EQ(a[i].pc, b[i].pc);
        EXPECT_EQ(a[i].is_write, b[i].is_write);
    }
}

// ---- injected-fault self-test ---------------------------------------------
//
// 325 seeded campaigns (1.3M accesses) found no divergence in core/,
// so these prove the oracle is not vacuous: corrupt the live policy's
// metadata directly, one corruption class at a time, and require the
// deep sweep to flag it with the right diagnosis.

namespace {

/** A remapped frame to corrupt (the storm guarantees one exists). */
uint64_t
findRemappedFrame(const SilcFmPolicy &policy)
{
    const core::NmMetadata &meta = policy.metadata();
    for (uint64_t f = 0; f < meta.frames(); ++f) {
        if (meta.meta(f).remap != core::kNoRemap)
            return f;
    }
    ADD_FAILURE() << "storm left no remapped frame";
    return 0;
}

} // namespace

TEST_F(CheckFixture, DetectsRemapCorruption)
{
    Lockstep l = makeLockstep(stormParams(2));
    storm(l, 11, 3000);
    ASSERT_TRUE(l.checker->verifyFullState()) << l.checker->failure();

    const uint64_t f = findRemappedFrame(*l.policy);
    l.policy->metadataForFaultInjection().meta(f).remap += 1;

    EXPECT_FALSE(l.checker->verifyFullState());
    EXPECT_TRUE(l.checker->failed());
    EXPECT_NE(l.checker->failure().find("remap"), std::string::npos)
        << l.checker->failure();
}

TEST_F(CheckFixture, DetectsBitvectorCorruption)
{
    Lockstep l = makeLockstep(stormParams(2));
    storm(l, 12, 3000);
    ASSERT_TRUE(l.checker->verifyFullState()) << l.checker->failure();

    const uint64_t f = findRemappedFrame(*l.policy);
    core::WayMeta &m = l.policy->metadataForFaultInjection().meta(f);
    // Flip one residency bit (whichever direction).
    if (m.bv.test(13))
        m.bv.clear(13);
    else
        m.bv.set(13);

    EXPECT_FALSE(l.checker->verifyFullState());
    EXPECT_NE(l.checker->failure().find("residency bitvector"),
              std::string::npos)
        << l.checker->failure();
}

TEST_F(CheckFixture, DetectsLockBitCorruption)
{
    SilcFmParams p = stormParams(2);
    p.hot_threshold = 3;   // make locks plentiful
    Lockstep l = makeLockstep(p);
    storm(l, 13, 3000);
    ASSERT_TRUE(l.checker->verifyFullState()) << l.checker->failure();

    core::WayMeta &m = l.policy->metadataForFaultInjection().meta(
        findRemappedFrame(*l.policy));
    m.locked = !m.locked;

    EXPECT_FALSE(l.checker->verifyFullState());
    EXPECT_NE(l.checker->failure().find("lock bit"), std::string::npos)
        << l.checker->failure();
}

TEST_F(CheckFixture, DetectsLruCorruption)
{
    Lockstep l = makeLockstep(stormParams(4));
    storm(l, 14, 3000);
    ASSERT_TRUE(l.checker->verifyFullState()) << l.checker->failure();

    l.policy->metadataForFaultInjection().meta(0).lru += 1'000'000;

    EXPECT_FALSE(l.checker->verifyFullState());
    EXPECT_NE(l.checker->failure().find("LRU"), std::string::npos)
        << l.checker->failure();
}

TEST_F(CheckFixture, LatchedFailureSticksAndStopsChecking)
{
    Lockstep l = makeLockstep(stormParams(2));
    storm(l, 15, 2000);
    l.policy->metadataForFaultInjection()
        .meta(findRemappedFrame(*l.policy))
        .remap += 1;
    ASSERT_FALSE(l.checker->verifyFullState());
    const std::string first = l.checker->failure();
    const uint64_t checked = l.checker->accessesChecked();

    // Further traffic neither clears nor replaces the latched failure.
    storm(l, 16, 100);
    EXPECT_TRUE(l.checker->failed());
    EXPECT_EQ(l.checker->failure(), first);
    EXPECT_EQ(l.checker->accessesChecked(), checked);
}

TEST_F(CheckFixture, PanicModeDiesOnDivergence)
{
    DifferentialChecker::Options opts;
    opts.panic_on_divergence = true;
    Lockstep l = makeLockstep(stormParams(2), opts);
    storm(l, 17, 2000);
    l.policy->metadataForFaultInjection()
        .meta(findRemappedFrame(*l.policy))
        .remap += 1;
    EXPECT_DEATH(l.checker->verifyFullState(), "differential oracle");
}

// ---- campaign machinery ---------------------------------------------------

TEST_F(CheckFixture, CampaignDerivationIsDeterministic)
{
    const CampaignConfig a = makeCampaign(99, 1000);
    const CampaignConfig b = makeCampaign(99, 1000);
    EXPECT_EQ(describeCampaign(a), describeCampaign(b));
    EXPECT_EQ(a.params.associativity, b.params.associativity);
    EXPECT_EQ(a.pattern, b.pattern);
}

TEST_F(CheckFixture, ShrinkTraceFindsMinimalPair)
{
    // Synthetic oracle: the "failure" needs accesses A then B in order.
    const Addr A = 0x1000, B = 0x2000;
    std::vector<FuzzAccess> trace;
    Rng rng(5);
    for (int i = 0; i < 60; ++i)
        trace.push_back(FuzzAccess{0x40 * (rng.below(64) + 100), 0, false});
    trace.insert(trace.begin() + 20, FuzzAccess{A, 0, false});
    trace.insert(trace.begin() + 45, FuzzAccess{B, 0, false});

    auto fails = [&](const std::vector<FuzzAccess> &t) {
        bool seen_a = false;
        for (const FuzzAccess &acc : t) {
            if (acc.paddr == A)
                seen_a = true;
            if (acc.paddr == B && seen_a)
                return true;
        }
        return false;
    };
    ASSERT_TRUE(fails(trace));

    const auto minimal = shrinkTrace(trace, fails);
    ASSERT_EQ(minimal.size(), 2u);
    EXPECT_EQ(minimal[0].paddr, A);
    EXPECT_EQ(minimal[1].paddr, B);
}

TEST_F(CheckFixture, FuzzTraceRoundTripsThroughFile)
{
    const CampaignConfig cfg = makeCampaign(21, 300);
    const auto trace = trace::generateAdversarialTrace(
        cfg.pattern, cfg.geometry, cfg.seed, cfg.accesses);

    const std::string path = "check_roundtrip.silctrace";
    writeFuzzTrace(path, trace);
    const auto loaded = loadFuzzTrace(path);
    std::remove(path.c_str());

    ASSERT_EQ(loaded.size(), trace.size());
    for (size_t i = 0; i < trace.size(); ++i) {
        EXPECT_EQ(loaded[i].paddr, trace[i].paddr);
        EXPECT_EQ(loaded[i].pc, trace[i].pc);
        EXPECT_EQ(loaded[i].is_write, trace[i].is_write);
    }
}

TEST_F(CheckFixture, ReplayedCampaignTraceStaysClean)
{
    const CampaignConfig cfg = makeCampaign(33, 1500);
    const auto trace = trace::generateAdversarialTrace(
        cfg.pattern, cfg.geometry, cfg.seed, cfg.accesses);
    const std::string path = "check_replay.silctrace";
    writeFuzzTrace(path, trace);
    const auto loaded = loadFuzzTrace(path);
    std::remove(path.c_str());
    EXPECT_FALSE(runCampaignTrace(cfg, loaded).has_value());
}

// ---- System integration ---------------------------------------------------

TEST(CheckSystem, FullSystemRunsCleanUnderOracle)
{
    sim::SystemConfig cfg = sim::SystemConfig::defaults();
    cfg.cores = 2;
    cfg.instructions_per_core = 40'000;
    cfg.nm_bytes = 1_MiB;
    cfg.fm_bytes = 4_MiB;
    cfg.policy = sim::PolicyKind::SilcFm;
    cfg.silc.aging_interval = 2'000;
    cfg.silc.hot_threshold = 8;
    cfg.check = true;
    sim::System system(cfg);
    const sim::SimResult r = system.run();   // panics on divergence
    EXPECT_GT(r.ipc, 0.0);
}

TEST(CheckSystem, CheckWithOtherPolicyIsFatal)
{
    sim::SystemConfig cfg = sim::SystemConfig::defaults();
    cfg.policy = sim::PolicyKind::Cameo;
    cfg.check = true;
    EXPECT_DEATH(sim::System{cfg}, "silcfm");
}
