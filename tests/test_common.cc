/**
 * @file
 * Unit tests for the common substrate: types/address math, event queue,
 * statistics, RNG/Zipf, config parsing, and the subblock bit vector.
 */

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <sstream>
#include <vector>

#include "common/bitvector.hh"
#include "common/config.hh"
#include "common/env.hh"
#include "common/event_queue.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/types.hh"

using namespace silc;

// ---- types / address math ----------------------------------------------

TEST(Types, Constants)
{
    EXPECT_EQ(kSubblockSize, 64u);
    EXPECT_EQ(kLargeBlockSize, 2048u);
    EXPECT_EQ(kSubblocksPerBlock, 32u);
}

TEST(Types, FloorLog2)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(64), 6u);
    EXPECT_EQ(floorLog2(2048), 11u);
    EXPECT_EQ(floorLog2(3), 1u);
}

TEST(Types, IsPowerOf2)
{
    EXPECT_TRUE(isPowerOf2(1));
    EXPECT_TRUE(isPowerOf2(4096));
    EXPECT_FALSE(isPowerOf2(0));
    EXPECT_FALSE(isPowerOf2(3));
    EXPECT_FALSE(isPowerOf2(96));
}

TEST(Types, Alignment)
{
    EXPECT_EQ(subblockAddr(0x12345), Addr(0x12340));
    EXPECT_EQ(largeBlockAddr(0x12345), Addr(0x12000));
    EXPECT_EQ(alignDown(127, 64), Addr(64));
}

TEST(Types, SubblockOffsetCoversBlock)
{
    // All 32 offsets appear exactly once per large block.
    std::map<uint32_t, int> seen;
    for (Addr a = 0; a < kLargeBlockSize; a += kSubblockSize)
        seen[subblockOffset(a)]++;
    EXPECT_EQ(seen.size(), kSubblocksPerBlock);
    for (auto [off, count] : seen) {
        EXPECT_LT(off, kSubblocksPerBlock);
        EXPECT_EQ(count, 1);
    }
}

TEST(Types, SubblockOffsetIgnoresPage)
{
    EXPECT_EQ(subblockOffset(5 * kLargeBlockSize + 7 * kSubblockSize),
              7u);
}

TEST(Types, SizeLiterals)
{
    EXPECT_EQ(4_KiB, 4096u);
    EXPECT_EQ(16_MiB, uint64_t(16) << 20);
    EXPECT_EQ(1_GiB, uint64_t(1) << 30);
}

// ---- event queue --------------------------------------------------------

TEST(EventQueue, FiresInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(30, [&](Tick) { order.push_back(3); });
    q.schedule(10, [&](Tick) { order.push_back(1); });
    q.schedule(20, [&](Tick) { order.push_back(2); });

    q.runDue(15);
    EXPECT_EQ(order, (std::vector<int>{1}));
    q.runDue(30);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, FifoTieBreak)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        q.schedule(7, [&order, i](Tick) { order.push_back(i); });
    q.runDue(7);
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, CallbackReceivesScheduledTick)
{
    EventQueue q;
    Tick seen = 0;
    q.schedule(42, [&](Tick t) { seen = t; });
    q.runDue(100);
    EXPECT_EQ(seen, 42u);
}

TEST(EventQueue, EventScheduledDuringDrainSameTickRuns)
{
    EventQueue q;
    int fired = 0;
    q.schedule(5, [&](Tick t) {
        ++fired;
        q.schedule(t, [&](Tick) { ++fired; });
    });
    q.runDue(5);
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, NextEventTick)
{
    EventQueue q;
    EXPECT_EQ(q.nextEventTick(), kTickNever);
    q.schedule(9, [](Tick) {});
    EXPECT_EQ(q.nextEventTick(), 9u);
}

TEST(EventQueue, ClearDropsPending)
{
    EventQueue q;
    int fired = 0;
    q.schedule(1, [&](Tick) { ++fired; });
    q.clear();
    q.runDue(10);
    EXPECT_EQ(fired, 0);
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, CountsExecuted)
{
    EventQueue q;
    for (Tick t = 1; t <= 4; ++t)
        q.schedule(t, [](Tick) {});
    q.runDue(4);
    EXPECT_EQ(q.executed(), 4u);
}

TEST(EventQueue, CancelledEventDoesNotFire)
{
    EventQueue q;
    int fired = 0;
    const EventId id =
        q.scheduleCancellable(10, [&](Tick) { ++fired; });
    q.schedule(10, [&](Tick) { fired += 100; });
    q.cancel(id);
    q.runDue(20);
    EXPECT_EQ(fired, 100);   // only the uncancelled event ran
    EXPECT_EQ(q.executed(), 1u);
    EXPECT_EQ(q.cancelled(), 1u);
}

TEST(EventQueue, CancelThenRearmLater)
{
    // The cancel/re-arm pattern a wakeup consumer uses: drop the stale
    // deadline, schedule the corrected one.
    EventQueue q;
    std::vector<Tick> fires;
    const EventId stale =
        q.scheduleCancellable(50, [&](Tick t) { fires.push_back(t); });
    q.cancel(stale);
    q.scheduleCancellable(30, [&](Tick t) { fires.push_back(t); });
    q.runDue(100);
    EXPECT_EQ(fires, (std::vector<Tick>{30}));
}

TEST(EventQueue, CancelledTombstonesDoNotBlockLaterEvents)
{
    EventQueue q;
    int fired = 0;
    for (int i = 0; i < 8; ++i) {
        const EventId id =
            q.scheduleCancellable(5, [&](Tick) { fired += 1000; });
        q.cancel(id);
    }
    q.schedule(6, [&](Tick) { ++fired; });
    q.runDue(10);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(q.cancelled(), 8u);
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, ClearDropsTombstones)
{
    EventQueue q;
    const EventId id = q.scheduleCancellable(5, [](Tick) {});
    q.cancel(id);
    q.clear();
    int fired = 0;
    q.schedule(1, [&](Tick) { ++fired; });
    q.runDue(5);
    EXPECT_EQ(fired, 1);
}

// ---- small function ------------------------------------------------------

TEST(SmallFunction, InvokesAndReportsInlineStorage)
{
    int hits = 0;
    SmallFunction<void(Tick), 64> fn = [&hits](Tick t) {
        hits += static_cast<int>(t);
    };
    ASSERT_TRUE(static_cast<bool>(fn));
    EXPECT_TRUE(fn.storedInline());
    fn(3);
    fn(4);
    EXPECT_EQ(hits, 7);
}

TEST(SmallFunction, EmptyIsFalse)
{
    SmallFunction<void(Tick), 64> fn;
    EXPECT_FALSE(static_cast<bool>(fn));
    SmallFunction<void(Tick), 64> null_fn = nullptr;
    EXPECT_FALSE(static_cast<bool>(null_fn));
}

TEST(SmallFunction, OversizedCaptureFallsBackToHeap)
{
    struct Big
    {
        uint64_t words[16];  // 128 bytes > the 64-byte buffer
    };
    Big big{};
    big.words[15] = 42;
    uint64_t seen = 0;
    SmallFunction<void(Tick), 64> fn = [big, &seen](Tick) {
        seen = big.words[15];
    };
    EXPECT_FALSE(fn.storedInline());
    fn(0);
    EXPECT_EQ(seen, 42u);
}

TEST(SmallFunction, MoveTransfersOwnership)
{
    auto counter = std::make_shared<int>(0);
    SmallFunction<void(Tick), 64> a = [counter](Tick) { ++*counter; };
    SmallFunction<void(Tick), 64> b = std::move(a);
    EXPECT_FALSE(static_cast<bool>(a));
    ASSERT_TRUE(static_cast<bool>(b));
    b(0);
    EXPECT_EQ(*counter, 1);

    // Destroying the callable releases its captures.
    b = nullptr;
    EXPECT_EQ(counter.use_count(), 1);
}

TEST(SmallFunction, HoldsMoveOnlyCallable)
{
    auto owned = std::make_unique<int>(9);
    SmallFunction<int(Tick), 64> fn =
        [owned = std::move(owned)](Tick t) {
            return *owned + static_cast<int>(t);
        };
    EXPECT_EQ(fn(1), 10);
}

// ---- stats ---------------------------------------------------------------

TEST(Stats, ScalarCounts)
{
    stats::Scalar s;
    ++s;
    s += 4;
    EXPECT_EQ(s.count(), 5u);
    EXPECT_DOUBLE_EQ(s.value(), 5.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
}

TEST(Stats, AverageOfSamples)
{
    stats::Average a;
    EXPECT_DOUBLE_EQ(a.value(), 0.0);
    a.sample(2.0);
    a.sample(4.0);
    EXPECT_DOUBLE_EQ(a.value(), 3.0);
    EXPECT_EQ(a.samples(), 2u);
}

TEST(Stats, DistributionBuckets)
{
    stats::Distribution d(0.0, 10.0, 5);
    d.sample(0.5);
    d.sample(9.5);
    d.sample(-1.0);
    d.sample(11.0);
    EXPECT_EQ(d.buckets()[0], 1u);
    EXPECT_EQ(d.buckets()[4], 1u);
    EXPECT_EQ(d.underflows(), 1u);
    EXPECT_EQ(d.overflows(), 1u);
    EXPECT_EQ(d.samples(), 4u);
    EXPECT_DOUBLE_EQ(d.value(), 5.0);
}

TEST(Stats, SetRegistersAndDumps)
{
    stats::StatSet set;
    stats::Scalar a, b;
    set.add("sim.a", a.describe("first"));
    set.add("sim.b", b);
    ++a;
    EXPECT_DOUBLE_EQ(set.get("sim.a"), 1.0);
    EXPECT_EQ(set.find("nope"), nullptr);

    std::ostringstream os;
    set.dump(os);
    EXPECT_NE(os.str().find("sim.a"), std::string::npos);
    EXPECT_NE(os.str().find("first"), std::string::npos);

    set.resetAll();
    EXPECT_DOUBLE_EQ(set.get("sim.a"), 0.0);
}

// ---- rng -----------------------------------------------------------------

TEST(Rng, DeterministicForSeed)
{
    Rng a(123), b(123), c(124);
    EXPECT_EQ(a.next(), b.next());
    EXPECT_NE(a.next(), c.next());
}

TEST(Rng, BelowStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, BetweenInclusive)
{
    Rng rng(9);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 20000; ++i) {
        uint64_t v = rng.between(3, 5);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 5u);
        saw_lo |= (v == 3);
        saw_hi |= (v == 5);
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(11);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Zipf, AlphaZeroIsUniform)
{
    Rng rng(5);
    ZipfSampler z(10, 0.0);
    std::vector<int> counts(10, 0);
    for (int i = 0; i < 50000; ++i)
        counts[z.sample(rng)]++;
    for (int c : counts)
        EXPECT_NEAR(c, 5000, 500);
}

TEST(Zipf, SkewPrefersLowRanks)
{
    Rng rng(5);
    ZipfSampler z(1000, 1.0);
    uint64_t low = 0, total = 100000;
    for (uint64_t i = 0; i < total; ++i) {
        if (z.sample(rng) < 10)
            ++low;
    }
    // With alpha=1 over 1000 items, the top-10 ranks draw ~39% of
    // samples (H(10)/H(1000)); uniform would give 1%.
    EXPECT_GT(low, total / 5);
}

TEST(Zipf, SamplesInRange)
{
    Rng rng(3);
    ZipfSampler z(37, 0.8);
    for (int i = 0; i < 20000; ++i)
        EXPECT_LT(z.sample(rng), 37u);
}

// ---- config ----------------------------------------------------------------

TEST(Config, ParseSizeSuffixes)
{
    EXPECT_EQ(parseSize("64"), 64u);
    EXPECT_EQ(parseSize("4k"), 4096u);
    EXPECT_EQ(parseSize("16m"), uint64_t(16) << 20);
    EXPECT_EQ(parseSize("2g"), uint64_t(2) << 30);
    EXPECT_EQ(parseSize("0x10"), 16u);
}

TEST(Config, TypedAccessors)
{
    Config cfg = Config::fromTokens(
        {"cores=16", "rate=0.8", "flag=true", "name=mcf"});
    EXPECT_EQ(cfg.getU64("cores", 1), 16u);
    EXPECT_DOUBLE_EQ(cfg.getDouble("rate", 0.0), 0.8);
    EXPECT_TRUE(cfg.getBool("flag", false));
    EXPECT_EQ(cfg.getString("name", ""), "mcf");
    EXPECT_EQ(cfg.getU64("missing", 7), 7u);
}

TEST(Config, TracksUnusedKeys)
{
    Config cfg = Config::fromTokens({"a=1", "b=2"});
    (void)cfg.getU64("a", 0);
    auto unused = cfg.unusedKeys();
    ASSERT_EQ(unused.size(), 1u);
    EXPECT_EQ(unused[0], "b");
}

TEST(Config, OverwriteKeepsSingleKey)
{
    Config cfg;
    cfg.set("x", "1");
    cfg.set("x", "2");
    EXPECT_EQ(cfg.getU64("x", 0), 2u);
    EXPECT_EQ(cfg.keys().size(), 1u);
}

// ---- bit vector -------------------------------------------------------------

TEST(SubblockVector, StartsEmpty)
{
    SubblockVector bv;
    EXPECT_TRUE(bv.none());
    EXPECT_FALSE(bv.full());
    EXPECT_EQ(bv.count(), 0u);
}

TEST(SubblockVector, SetTestClear)
{
    SubblockVector bv;
    bv.set(0);
    bv.set(31);
    EXPECT_TRUE(bv.test(0));
    EXPECT_TRUE(bv.test(31));
    EXPECT_FALSE(bv.test(15));
    EXPECT_EQ(bv.count(), 2u);
    bv.clear(0);
    EXPECT_FALSE(bv.test(0));
    EXPECT_EQ(bv.count(), 1u);
}

TEST(SubblockVector, AllAndClearAll)
{
    SubblockVector bv = SubblockVector::all();
    EXPECT_TRUE(bv.full());
    EXPECT_EQ(bv.count(), 32u);
    bv.clearAll();
    EXPECT_TRUE(bv.none());
    bv.setAll();
    EXPECT_TRUE(bv.full());
}

TEST(SubblockVector, RawRoundTrip)
{
    SubblockVector bv;
    bv.set(3);
    bv.set(17);
    SubblockVector copy(bv.raw());
    EXPECT_EQ(copy, bv);
}

TEST(SubblockVector, ToStringMarksBits)
{
    SubblockVector bv;
    bv.set(1);
    std::string s = bv.toString();
    ASSERT_EQ(s.size(), 32u);
    EXPECT_EQ(s[0], '0');
    EXPECT_EQ(s[1], '1');
}

// ---- logging ----------------------------------------------------------------

TEST(Logging, FormatsPrintfStyle)
{
    EXPECT_EQ(logFormat("x=%d s=%s", 5, "hi"), "x=5 s=hi");
}

TEST(Logging, WarnIncrementsCounter)
{
    const uint64_t before = warnCount();
    warn("test warning %d", 1);
    EXPECT_EQ(warnCount(), before + 1);
}

// ---- additional property coverage ---------------------------------------------

TEST(Zipf, LowerRankNeverLessPopularOnAverage)
{
    Rng rng(21);
    ZipfSampler z(64, 0.9);
    std::vector<uint64_t> counts(64, 0);
    for (int i = 0; i < 200'000; ++i)
        counts[z.sample(rng)]++;
    // Compare coarse halves to avoid noise: the first half must get
    // clearly more than the second.
    uint64_t lo = 0, hi = 0;
    for (int i = 0; i < 32; ++i)
        lo += counts[i];
    for (int i = 32; i < 64; ++i)
        hi += counts[i];
    EXPECT_GT(lo, 2 * hi);
}

TEST(EventQueue, InterleavedScheduleAndDrain)
{
    EventQueue q;
    std::vector<Tick> fired;
    for (Tick t = 0; t < 50; ++t) {
        q.schedule(t * 2 + 1, [&](Tick when) { fired.push_back(when); });
        q.runDue(t * 2);
    }
    q.runDue(1000);
    ASSERT_EQ(fired.size(), 50u);
    for (size_t i = 1; i < fired.size(); ++i)
        EXPECT_LT(fired[i - 1], fired[i]);
}

TEST(EventQueueDeath, PastSchedulingPanics)
{
    EventQueue q;
    q.runDue(100);
    EXPECT_DEATH(q.schedule(50, [](Tick) {}), "past");
}

TEST(Stats, DuplicateNamePanics)
{
    stats::StatSet set;
    stats::Scalar a, b;
    set.add("x", a);
    EXPECT_DEATH(set.add("x", b), "duplicate");
}

TEST(Config, MalformedTokensFatal)
{
    EXPECT_DEATH(Config::fromTokens({"noequals"}), "key=value");
    Config cfg = Config::fromTokens({"x=abc"});
    EXPECT_DEATH(cfg.getU64("x", 0), "malformed");
}

TEST(SubblockVector, IndependenceOfBits)
{
    SubblockVector bv;
    for (uint32_t i = 0; i < kSubblocksPerBlock; i += 2)
        bv.set(i);
    for (uint32_t i = 0; i < kSubblocksPerBlock; ++i)
        EXPECT_EQ(bv.test(i), i % 2 == 0);
    EXPECT_EQ(bv.count(), 16u);
}

// ---- env knob parsing ----------------------------------------------------

namespace {

/** RAII environment variable for the env-parsing tests. */
class ScopedEnv
{
  public:
    ScopedEnv(const char *name, const char *value) : name_(name)
    {
        setenv(name, value, 1);
    }
    ~ScopedEnv() { unsetenv(name_); }

  private:
    const char *name_;
};

} // namespace

TEST(Env, UnsetReturnsFallback)
{
    unsetenv("SILC_TEST_KNOB");
    EXPECT_EQ(envPositiveCount("SILC_TEST_KNOB", 42), 42u);
    EXPECT_EQ(envThreadCount("SILC_TEST_KNOB", 3), 3u);
}

TEST(Env, PlainDecimalParses)
{
    ScopedEnv e("SILC_TEST_KNOB", "17");
    EXPECT_EQ(envPositiveCount("SILC_TEST_KNOB", 1), 17u);
}

TEST(EnvDeath, EmptyValueFatal)
{
    ScopedEnv e("SILC_TEST_KNOB", "");
    EXPECT_DEATH(envPositiveCount("SILC_TEST_KNOB", 1),
                 "SILC_TEST_KNOB");
}

TEST(EnvDeath, LeadingWhitespaceFatal)
{
    ScopedEnv e("SILC_TEST_KNOB", " 4");
    EXPECT_DEATH(envPositiveCount("SILC_TEST_KNOB", 1),
                 "SILC_TEST_KNOB");
}

TEST(EnvDeath, TrailingWhitespaceFatal)
{
    ScopedEnv e("SILC_TEST_KNOB", "4 ");
    EXPECT_DEATH(envPositiveCount("SILC_TEST_KNOB", 1),
                 "SILC_TEST_KNOB");
}

TEST(EnvDeath, HexPrefixFatal)
{
    // "0x10" must not silently read as 0 (or as 16): trailing junk.
    ScopedEnv e("SILC_TEST_KNOB", "0x10");
    EXPECT_DEATH(envPositiveCount("SILC_TEST_KNOB", 1),
                 "SILC_TEST_KNOB");
}

TEST(EnvDeath, ZeroFatal)
{
    ScopedEnv e("SILC_TEST_KNOB", "0");
    EXPECT_DEATH(envPositiveCount("SILC_TEST_KNOB", 1),
                 "SILC_TEST_KNOB");
}

TEST(EnvDeath, NegativeFatal)
{
    ScopedEnv e("SILC_TEST_KNOB", "-4");
    EXPECT_DEATH(envPositiveCount("SILC_TEST_KNOB", 1),
                 "SILC_TEST_KNOB");
}

TEST(EnvDeath, OverflowFatal)
{
    // Larger than UINT64_MAX: strtoull saturates with ERANGE.
    ScopedEnv e("SILC_TEST_KNOB", "99999999999999999999999999");
    EXPECT_DEATH(envPositiveCount("SILC_TEST_KNOB", 1),
                 "SILC_TEST_KNOB");
}

TEST(EnvDeath, AboveMaxValueFatal)
{
    ScopedEnv e("SILC_TEST_KNOB", "11");
    EXPECT_DEATH(envPositiveCount("SILC_TEST_KNOB", 1, 10),
                 "SILC_TEST_KNOB");
}

TEST(EnvDeath, ThreadCountCapFatal)
{
    ScopedEnv e("SILC_TEST_KNOB", "100000");
    EXPECT_DEATH(envThreadCount("SILC_TEST_KNOB", 1), "SILC_TEST_KNOB");
}

// ---- distribution percentiles / differencing -----------------------------

TEST(Stats, PercentileOfEmptyDistributionIsZero)
{
    stats::Distribution d(0.0, 10.0, 5);
    EXPECT_DOUBLE_EQ(d.percentile(0.0), 0.0);
    EXPECT_DOUBLE_EQ(d.percentile(0.5), 0.0);
    EXPECT_DOUBLE_EQ(d.percentile(1.0), 0.0);
}

TEST(Stats, PercentileOfSingleSample)
{
    stats::Distribution d(0.0, 10.0, 5);
    d.sample(3.0);
    // Every quantile lands inside the one populated bucket [2, 4).
    for (double p : {0.01, 0.5, 0.99}) {
        EXPECT_GE(d.percentile(p), 2.0);
        EXPECT_LE(d.percentile(p), 4.0);
    }
}

TEST(Stats, PercentileClampsOutOfRangeP)
{
    stats::Distribution d(0.0, 10.0, 5);
    d.sample(5.0);
    EXPECT_DOUBLE_EQ(d.percentile(-1.0), d.percentile(0.0));
    EXPECT_DOUBLE_EQ(d.percentile(2.0), d.percentile(1.0));
}

TEST(Stats, PercentileSaturatesAtRangeEdges)
{
    stats::Distribution d(0.0, 10.0, 5);
    d.sample(-5.0); // underflow
    d.sample(15.0); // overflow
    EXPECT_DOUBLE_EQ(d.percentile(0.25), 0.0);  // min()
    EXPECT_DOUBLE_EQ(d.percentile(0.99), 10.0); // max()
}

TEST(Stats, DistributionMinusYieldsWindowSamples)
{
    stats::Distribution early(0.0, 10.0, 5);
    early.sample(1.0);
    early.sample(-2.0);
    stats::Distribution late = early; // snapshot
    late.sample(5.0);
    late.sample(5.5);
    late.sample(12.0);

    const stats::Distribution delta = late.minus(early);
    EXPECT_EQ(delta.samples(), 3u);
    EXPECT_EQ(delta.underflows(), 0u);
    EXPECT_EQ(delta.overflows(), 1u);
    EXPECT_EQ(delta.buckets()[2], 2u);
    // Mean of the window-only samples: (5 + 5.5 + 12) / 3.
    EXPECT_NEAR(delta.value(), 22.5 / 3.0, 1e-12);
}

TEST(Stats, DistributionMinusSelfIsEmpty)
{
    stats::Distribution d(0.0, 10.0, 4);
    d.sample(1.0);
    const stats::Distribution delta = d.minus(d);
    EXPECT_EQ(delta.samples(), 0u);
    EXPECT_DOUBLE_EQ(delta.percentile(0.5), 0.0);
}

TEST(Rng, StateRoundTrip)
{
    Rng a(123);
    (void)a.next();
    (void)a.next();
    const auto saved = a.state();
    Rng b(999);
    b.setState(saved);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(a.next(), b.next());
}
