/**
 * @file
 * Unit tests for the trace generators (profiles, address properties,
 * determinism, phases) and the ROB-limit core model.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "cpu/core.hh"
#include "trace/generator.hh"
#include "trace/profiles.hh"

using namespace silc;
using namespace silc::trace;
using namespace silc::cpu;

// ---- profiles ------------------------------------------------------------

TEST(Profiles, FourteenBenchmarksInClasses)
{
    const auto &profiles = table3Profiles();
    ASSERT_EQ(profiles.size(), 14u);
    std::map<MpkiClass, int> counts;
    for (const auto &p : profiles)
        counts[p.mpki_class]++;
    EXPECT_EQ(counts[MpkiClass::Low], 4);
    EXPECT_EQ(counts[MpkiClass::Medium], 5);
    EXPECT_EQ(counts[MpkiClass::High], 5);
}

TEST(Profiles, NamesUniqueAndFindable)
{
    std::set<std::string> names;
    for (const auto &name : profileNames())
        EXPECT_TRUE(names.insert(name).second);
    EXPECT_EQ(findProfile("mcf").name, "mcf");
    EXPECT_EQ(findProfile("bwaves").mpki_class, MpkiClass::Low);
    EXPECT_EQ(findProfile("lbm").mpki_class, MpkiClass::High);
}

TEST(Profiles, UnknownProfileIsFatal)
{
    EXPECT_DEATH(findProfile("doom3"), "unknown workload");
}

TEST(Profiles, RepresentativesAreValid)
{
    for (const auto &name : representativeNames())
        EXPECT_NO_FATAL_FAILURE(findProfile(name));
}

TEST(Profiles, FootprintsArePagePositive)
{
    for (const auto &p : table3Profiles()) {
        EXPECT_GT(p.footprintPages(), 0u) << p.name;
        EXPECT_EQ(p.footprint_bytes % kLargeBlockSize, 0u) << p.name;
    }
}

TEST(Profiles, ClassKnobsAreOrdered)
{
    // Memory intensity should not decrease with the MPKI class.
    const auto &low = findProfile("dealii");
    const auto &high = findProfile("mcf");
    EXPECT_LE(low.mem_fraction, high.mem_fraction);
    EXPECT_GE(low.cache_friendly_fraction,
              high.cache_friendly_fraction);
}

// ---- generator -------------------------------------------------------------

TEST(Generator, DeterministicPerSeed)
{
    const auto &p = findProfile("gcc");
    SyntheticGenerator a(p, 7), b(p, 7), c(p, 8);
    bool diverged = false;
    for (int i = 0; i < 5000; ++i) {
        TraceInstruction ia = a.next();
        TraceInstruction ib = b.next();
        TraceInstruction ic = c.next();
        EXPECT_EQ(ia.is_mem, ib.is_mem);
        EXPECT_EQ(ia.vaddr, ib.vaddr);
        EXPECT_EQ(ia.pc, ib.pc);
        diverged |= (ia.vaddr != ic.vaddr || ia.is_mem != ic.is_mem);
    }
    EXPECT_TRUE(diverged);
}

TEST(Generator, MemFractionApproximatelyHonoured)
{
    const auto &p = findProfile("mcf");
    SyntheticGenerator gen(p, 3);
    uint64_t mem = 0;
    const uint64_t total = 200'000;
    for (uint64_t i = 0; i < total; ++i) {
        if (gen.next().is_mem)
            ++mem;
    }
    EXPECT_NEAR(static_cast<double>(mem) / total, p.mem_fraction, 0.02);
    EXPECT_EQ(gen.memOpsGenerated(), mem);
}

TEST(Generator, WriteFractionApproximatelyHonoured)
{
    const auto &p = findProfile("lbm");
    SyntheticGenerator gen(p, 3);
    uint64_t mem = 0, writes = 0;
    for (uint64_t i = 0; i < 300'000; ++i) {
        TraceInstruction ins = gen.next();
        if (ins.is_mem) {
            ++mem;
            writes += ins.is_write;
        }
    }
    EXPECT_NEAR(static_cast<double>(writes) / mem, p.write_fraction,
                0.03);
}

TEST(Generator, AddressesStayInFootprintOrFriendlyRegion)
{
    const auto &p = findProfile("omnet");
    SyntheticGenerator gen(p, 11);
    const Addr data_base = 0x1000'0000;
    const Addr data_end = data_base + p.footprint_bytes;
    for (int i = 0; i < 200'000; ++i) {
        TraceInstruction ins = gen.next();
        if (!ins.is_mem)
            continue;
        const bool in_data =
            ins.vaddr >= data_base && ins.vaddr < data_end;
        const bool in_friendly = ins.vaddr < data_base;
        EXPECT_TRUE(in_data || in_friendly)
            << std::hex << ins.vaddr;
    }
}

TEST(Generator, SpatialDensityRespectsMask)
{
    // A low-density profile must touch only a subset of each page's
    // subblocks through its hot-page path.
    WorkloadProfile p = findProfile("mcf");
    p.stream_fraction = 0.0;             // hot accesses only
    p.cache_friendly_fraction = 0.0;
    p.mem_fraction = 1.0;
    SyntheticGenerator gen(p, 5);
    std::map<uint64_t, std::set<uint32_t>> page_subs;
    for (int i = 0; i < 300'000; ++i) {
        TraceInstruction ins = gen.next();
        const uint64_t page = ins.vaddr >> kLargeBlockBits;
        page_subs[page].insert(subblockOffset(ins.vaddr));
    }
    const uint32_t expected =
        static_cast<uint32_t>(p.page_density * kSubblocksPerBlock + 0.5);
    for (const auto &[page, subs] : page_subs) {
        (void)page;
        EXPECT_LE(subs.size(), expected + 1);
    }
}

TEST(Generator, StreamingTouchesSequentialSubblocks)
{
    WorkloadProfile p = findProfile("lbm");
    p.stream_fraction = 1.0;
    p.cache_friendly_fraction = 0.0;
    p.mem_fraction = 1.0;
    SyntheticGenerator gen(p, 5);
    Addr prev = 0;
    uint64_t sequential = 0, total = 0;
    for (int i = 0; i < 50'000; ++i) {
        TraceInstruction ins = gen.next();
        if (prev != 0 && ins.vaddr == prev + kSubblockSize)
            ++sequential;
        prev = ins.vaddr;
        ++total;
    }
    EXPECT_GT(static_cast<double>(sequential) / total, 0.8);
}

TEST(Generator, PhaseChangesOccurWhenConfigured)
{
    WorkloadProfile p = findProfile("gems");
    ASSERT_GT(p.phase_interval, 0u);
    p.phase_interval = 1'000;
    p.mem_fraction = 1.0;
    SyntheticGenerator gen(p, 5);
    for (int i = 0; i < 10'000; ++i)
        gen.next();
    EXPECT_GE(gen.phaseChanges(), 9u);
}

TEST(Generator, NoPhaseChangesWhenDisabled)
{
    WorkloadProfile p = findProfile("mcf");
    p.phase_interval = 0;
    SyntheticGenerator gen(p, 5);
    for (int i = 0; i < 50'000; ++i)
        gen.next();
    EXPECT_EQ(gen.phaseChanges(), 0u);
}

TEST(Generator, ZipfSkewConcentratesPageAccesses)
{
    WorkloadProfile p = findProfile("xalanc");
    p.stream_fraction = 0.0;
    p.cache_friendly_fraction = 0.0;
    p.mem_fraction = 1.0;
    SyntheticGenerator gen(p, 5);
    std::map<uint64_t, uint64_t> page_counts;
    const int n = 200'000;
    for (int i = 0; i < n; ++i)
        ++page_counts[gen.next().vaddr >> kLargeBlockBits];
    std::vector<uint64_t> counts;
    for (auto &[page, cnt] : page_counts)
        counts.push_back(cnt);
    std::sort(counts.rbegin(), counts.rend());
    uint64_t top = 0;
    const size_t head = counts.size() / 20;   // top 5% of pages
    for (size_t i = 0; i < head; ++i)
        top += counts[i];
    EXPECT_GT(static_cast<double>(top) / n, 0.25);
}

// ---- core -------------------------------------------------------------------

namespace {

/** Scripted trace: fixed list, then non-memory filler. */
class ScriptedTrace : public TraceSource
{
  public:
    explicit ScriptedTrace(std::vector<TraceInstruction> script)
        : script_(std::move(script))
    {
    }

    TraceInstruction
    next() override
    {
        if (pos_ < script_.size())
            return script_[pos_++];
        return TraceInstruction{};   // non-memory filler
    }

  private:
    std::vector<TraceInstruction> script_;
    size_t pos_ = 0;
};

/** Memory port with a fixed latency and optional admission control. */
class FixedLatencyPort : public MemoryPort
{
  public:
    explicit FixedLatencyPort(Tick latency) : latency_(latency) {}

    bool
    access(CoreId, Addr, Addr, bool is_write,
           std::function<void(Tick)> done, Tick now) override
    {
        ++accesses_;
        if (reject_next_ > 0) {
            --reject_next_;
            return false;
        }
        if (!is_write && done)
            pending_.push_back({now + latency_, std::move(done)});
        return true;
    }

    /** Fire all completions due at @p now. */
    void
    drain(Tick now)
    {
        for (auto it = pending_.begin(); it != pending_.end();) {
            if (it->first <= now) {
                it->second(it->first);
                it = pending_.erase(it);
            } else {
                ++it;
            }
        }
    }

    void rejectNext(int n) { reject_next_ = n; }
    uint64_t accesses() const { return accesses_; }

  private:
    Tick latency_;
    int reject_next_ = 0;
    uint64_t accesses_ = 0;
    std::vector<std::pair<Tick, std::function<void(Tick)>>> pending_;
};

} // namespace

TEST(Core, RetiresNonMemAtFullWidth)
{
    ScriptedTrace trace({});
    FixedLatencyPort port(10);
    CoreParams params;
    params.instruction_budget = 400;
    Core core(0, params, trace, port);
    Tick t = 0;
    while (!core.done() && t < 10'000)
        core.tick(t++);
    EXPECT_TRUE(core.done());
    // 4-wide with 1-cycle latency: ~100 cycles + pipeline fill.
    EXPECT_LE(core.finishTick(), 110u);
    EXPECT_EQ(core.retired(), 400u);
}

TEST(Core, LoadLatencyStallsRetirement)
{
    std::vector<TraceInstruction> script(1);
    script[0] = TraceInstruction{true, false, 0x1000, 0x400};
    ScriptedTrace trace(script);
    FixedLatencyPort port(500);
    CoreParams params;
    params.instruction_budget = 200;
    Core core(0, params, trace, port);
    Tick t = 0;
    while (!core.done() && t < 10'000) {
        core.tick(t);
        port.drain(t);
        ++t;
    }
    EXPECT_TRUE(core.done());
    // The in-order retire must wait for the 500-tick load.
    EXPECT_GE(core.finishTick(), 500u);
    EXPECT_EQ(core.loads(), 1u);
}

TEST(Core, RobLimitsOutstandingWork)
{
    // All loads, long latency: the ROB (128) fills and dispatch stalls.
    std::vector<TraceInstruction> script;
    for (int i = 0; i < 300; ++i)
        script.push_back(
            TraceInstruction{true, false, Addr(0x1000 + 64 * i), 0x400});
    ScriptedTrace trace(script);
    FixedLatencyPort port(100'000);   // never completes within the test
    CoreParams params;
    params.instruction_budget = 300;
    Core core(0, params, trace, port);
    for (Tick t = 0; t < 2'000; ++t)
        core.tick(t);
    EXPECT_EQ(core.robOccupancy(), params.rob_entries);
    EXPECT_EQ(core.dispatched(), params.rob_entries);
    EXPECT_GT(core.robFullCycles(), 0u);
}

TEST(Core, StoresRetireWithoutWaiting)
{
    std::vector<TraceInstruction> script;
    for (int i = 0; i < 100; ++i)
        script.push_back(
            TraceInstruction{true, true, Addr(0x1000 + 64 * i), 0x400});
    ScriptedTrace trace(script);
    FixedLatencyPort port(100'000);
    CoreParams params;
    params.instruction_budget = 100;
    Core core(0, params, trace, port);
    Tick t = 0;
    while (!core.done() && t < 10'000)
        core.tick(t++);
    EXPECT_TRUE(core.done());
    EXPECT_LE(core.finishTick(), 200u);
    EXPECT_EQ(core.stores(), 100u);
}

TEST(Core, MemoryBackpressureStallsDispatch)
{
    std::vector<TraceInstruction> script(1);
    script[0] = TraceInstruction{true, false, 0x1000, 0x400};
    ScriptedTrace trace(script);
    FixedLatencyPort port(5);
    port.rejectNext(3);
    CoreParams params;
    params.instruction_budget = 50;
    Core core(0, params, trace, port);
    Tick t = 0;
    while (!core.done() && t < 10'000) {
        core.tick(t);
        port.drain(t);
        ++t;
    }
    EXPECT_TRUE(core.done());
    EXPECT_GE(core.memStallCycles(), 3u);
    // The access is retried, not dropped: 3 rejections + 1 success.
    EXPECT_EQ(port.accesses(), 4u);
    EXPECT_EQ(core.loads(), 1u);
}

TEST(Core, MlpOverlapsIndependentMisses)
{
    // 8 independent loads of 200 ticks each: with MLP they finish in
    // ~200+ ticks, not 1600.
    std::vector<TraceInstruction> script;
    for (int i = 0; i < 8; ++i)
        script.push_back(
            TraceInstruction{true, false, Addr(0x1000 + 64 * i), 0x400});
    ScriptedTrace trace(script);
    FixedLatencyPort port(200);
    CoreParams params;
    params.instruction_budget = 8;
    Core core(0, params, trace, port);
    Tick t = 0;
    while (!core.done() && t < 10'000) {
        core.tick(t);
        port.drain(t);
        ++t;
    }
    EXPECT_TRUE(core.done());
    EXPECT_LT(core.finishTick(), 2 * 200u);
}

TEST(Core, DoneExactlyAtBudget)
{
    ScriptedTrace trace({});
    FixedLatencyPort port(1);
    CoreParams params;
    params.instruction_budget = 7;
    Core core(0, params, trace, port);
    Tick t = 0;
    while (!core.done() && t < 100)
        core.tick(t++);
    EXPECT_EQ(core.retired(), 7u);
    // No further retirement after done.
    core.tick(t + 1);
    EXPECT_EQ(core.retired(), 7u);
}

// ---- trace file record / replay ------------------------------------------------

#include "trace/file_trace.hh"

#include <cstdio>

namespace {

std::string
tempTracePath(const char *tag)
{
    return std::string(::testing::TempDir()) + "/silc_" + tag + ".trace";
}

} // namespace

TEST(FileTrace, RoundTripPreservesStream)
{
    const std::string path = tempTracePath("roundtrip");
    const auto &profile = findProfile("gcc");
    {
        SyntheticGenerator gen(profile, 99);
        TraceWriter writer(path);
        writer.record(gen, 5000);
        writer.finish();
        EXPECT_EQ(writer.instructionsWritten(), 5000u);
    }
    SyntheticGenerator ref(profile, 99);
    FileTraceReader reader(path);
    for (int i = 0; i < 5000; ++i) {
        const TraceInstruction a = ref.next();
        const TraceInstruction b = reader.next();
        ASSERT_EQ(a.is_mem, b.is_mem) << "instr " << i;
        if (a.is_mem) {
            EXPECT_EQ(a.is_write, b.is_write);
            EXPECT_EQ(a.vaddr, b.vaddr);
            EXPECT_EQ(a.pc, b.pc);
        }
    }
    std::remove(path.c_str());
}

TEST(FileTrace, WrapsAtEof)
{
    const std::string path = tempTracePath("wrap");
    {
        TraceWriter writer(path);
        writer.append(TraceInstruction{true, false, 0x1000, 0x400});
        writer.append(TraceInstruction{});
        writer.append(TraceInstruction{true, true, 0x2000, 0x404});
        writer.finish();
    }
    FileTraceReader reader(path);
    // 3 records per pass; read three passes.
    for (int pass = 0; pass < 3; ++pass) {
        TraceInstruction a = reader.next();
        EXPECT_TRUE(a.is_mem);
        EXPECT_EQ(a.vaddr, 0x1000u);
        TraceInstruction b = reader.next();
        EXPECT_FALSE(b.is_mem);
        TraceInstruction c = reader.next();
        EXPECT_TRUE(c.is_mem);
        EXPECT_TRUE(c.is_write);
        EXPECT_EQ(c.vaddr, 0x2000u);
    }
    EXPECT_GE(reader.wraps(), 2u);
    EXPECT_EQ(reader.delivered(), 9u);
    std::remove(path.c_str());
}

TEST(FileTrace, RunLengthEncodesNonMem)
{
    const std::string path = tempTracePath("rle");
    {
        TraceWriter writer(path);
        for (int i = 0; i < 100; ++i)
            writer.append(TraceInstruction{});
        writer.append(TraceInstruction{true, false, 0x40, 0x400});
        writer.finish();
    }
    // The file must contain a single "N 100" record.
    std::ifstream in(path);
    std::string line;
    std::getline(in, line);   // header
    std::getline(in, line);
    EXPECT_EQ(line, "N 100");
    std::remove(path.c_str());
}

TEST(FileTrace, MissingFileIsFatal)
{
    EXPECT_DEATH(FileTraceReader("/nonexistent/nope.trace"),
                 "cannot open");
}

TEST(FileTrace, BadHeaderIsFatal)
{
    const std::string path = tempTracePath("bad");
    {
        std::ofstream out(path);
        out << "not a trace\nM r 0 0\n";
    }
    EXPECT_DEATH(FileTraceReader reader(path), "bad header");
    std::remove(path.c_str());
}

// ---- per-benchmark character regressions ------------------------------------------

TEST(Profiles, StreamersAreStreamHeavy)
{
    EXPECT_GT(findProfile("lbm").stream_fraction, 0.8);
    EXPECT_GT(findProfile("lib").stream_fraction, 0.8);
    EXPECT_LT(findProfile("mcf").stream_fraction, 0.2);
    EXPECT_LT(findProfile("omnet").stream_fraction, 0.2);
}

TEST(Profiles, PointerChasersAreSparse)
{
    // PoM's bandwidth-waste argument needs low page density here.
    EXPECT_LT(findProfile("mcf").page_density, 0.3);
    EXPECT_LT(findProfile("omnet").page_density, 0.4);
    EXPECT_GE(findProfile("lbm").page_density, 0.95);
}

TEST(Profiles, PhaseBenchmarksHaveIntervals)
{
    // gems and milc are the paper's short-lived-hot-page examples.
    EXPECT_GT(findProfile("gems").phase_interval, 0u);
    EXPECT_GT(findProfile("milc").phase_interval, 0u);
    // lbm is a pure stream: hot ranking is irrelevant.
    EXPECT_EQ(findProfile("lbm").phase_interval, 0u);
}

TEST(Profiles, XalancIsTheLockingPosterChild)
{
    // Strong skew, low-ish MPKI: hot pages that collide in the index.
    const auto &p = findProfile("xalanc");
    EXPECT_EQ(p.mpki_class, MpkiClass::Low);
    EXPECT_GT(p.zipf_alpha, 1.0);
}
