/**
 * @file
 * Unit tests for the DRAM model: timing parameter sets, the bank state
 * machine (tRCD/tCAS/tRP/tRAS/tCCD), FR-FCFS scheduling, write drain,
 * address decode, refresh, and energy accounting.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/event_queue.hh"
#include "common/rng.hh"
#include "dram/bank.hh"
#include "dram/controller.hh"
#include "dram/dram_system.hh"
#include "dram/energy.hh"
#include "dram/timing.hh"

using namespace silc;
using namespace silc::dram;

namespace {

DramTimingParams
simpleParams()
{
    DramTimingParams p = ddr3Params();
    p.name = "testdram";
    p.channels = 2;
    p.t_refi = 0;   // disable refresh unless a test wants it
    return p;
}

} // namespace

// ---- timing params -------------------------------------------------------

TEST(Timing, Table2Defaults)
{
    DramTimingParams hbm = hbm2Params();
    EXPECT_EQ(hbm.bus_width_bits, 128u);
    EXPECT_EQ(hbm.channels, 8u);
    EXPECT_EQ(hbm.banks_per_rank, 8u);
    EXPECT_EQ(hbm.row_buffer_bytes, 8192u);
    EXPECT_EQ(hbm.bus_freq_mhz, 800u);

    DramTimingParams ddr = ddr3Params();
    EXPECT_EQ(ddr.bus_width_bits, 64u);
    EXPECT_EQ(ddr.channels, 4u);
    EXPECT_EQ(ddr.t_cas, 11u);
    EXPECT_EQ(ddr.t_ras, 28u);
}

TEST(Timing, BurstMath)
{
    DramTimingParams hbm = hbm2Params();
    // 64B over a 128-bit bus: 4 beats, 2 memory cycles (DDR).
    EXPECT_EQ(hbm.beatsFor(64), 4u);
    EXPECT_EQ(hbm.burstMemCycles(64), 2u);

    DramTimingParams ddr = ddr3Params();
    // 64B over a 64-bit bus: 8 beats, 4 memory cycles.
    EXPECT_EQ(ddr.beatsFor(64), 8u);
    EXPECT_EQ(ddr.burstMemCycles(64), 4u);
    // Partial bursts round up.
    EXPECT_EQ(ddr.beatsFor(8), 1u);
    EXPECT_EQ(ddr.burstMemCycles(8), 1u);
}

TEST(Timing, TickConversion)
{
    DramTimingParams p = ddr3Params();
    EXPECT_EQ(p.toTicks(1), 4u);   // 3.2 GHz CPU / 800 MHz memory
    EXPECT_EQ(p.toTicks(11), 44u);
}

TEST(Timing, PeakBandwidth)
{
    DramTimingParams hbm = hbm2Params();
    // 8 channels x 32 B/mem-cycle / 4 ticks = 64 B/tick.
    EXPECT_DOUBLE_EQ(hbm.peakBytesPerTick(), 64.0);
    DramTimingParams ddr = ddr3Params();
    EXPECT_DOUBLE_EQ(ddr.peakBytesPerTick(), 16.0);
}

// ---- bank state machine ---------------------------------------------------

TEST(Bank, FirstAccessPaysActivation)
{
    DramTimingParams p = simpleParams();
    Bank bank;
    const Tick burst = p.toTicks(p.burstMemCycles(64));
    BankService svc = bank.serve(5, 0, burst, 0, p);
    EXPECT_FALSE(svc.row_hit);
    EXPECT_TRUE(svc.activated);
    // tRCD + tCAS before data.
    EXPECT_EQ(svc.data_start, p.toTicks(p.t_rcd + p.t_cas));
    EXPECT_EQ(svc.data_done, svc.data_start + burst);
    EXPECT_EQ(bank.openRow(), 5);
}

TEST(Bank, RowHitPaysOnlyCas)
{
    DramTimingParams p = simpleParams();
    Bank bank;
    const Tick burst = p.toTicks(p.burstMemCycles(64));
    bank.serve(5, 0, burst, 0, p);
    const Tick now = 10'000;
    BankService svc = bank.serve(5, now, burst, 0, p);
    EXPECT_TRUE(svc.row_hit);
    EXPECT_FALSE(svc.activated);
    EXPECT_EQ(svc.data_start, now + p.toTicks(p.t_cas));
}

TEST(Bank, RowConflictPaysPrechargeAndRas)
{
    DramTimingParams p = simpleParams();
    Bank bank;
    const Tick burst = p.toTicks(p.burstMemCycles(64));
    bank.serve(5, 0, burst, 0, p);
    // Conflict immediately: precharge must wait for tRAS from the
    // activation at tick 0.
    BankService svc = bank.serve(9, 0, burst, 0, p);
    EXPECT_FALSE(svc.row_hit);
    EXPECT_TRUE(svc.activated);
    const Tick pre_start = p.toTicks(p.t_ras);
    const Tick expected = pre_start + p.toTicks(p.t_rp) +
        p.toTicks(p.t_rcd) + p.toTicks(p.t_cas);
    EXPECT_EQ(svc.data_start, expected);
    EXPECT_EQ(bank.openRow(), 9);
}

TEST(Bank, BackToBackRowHitsPipelineAtTccd)
{
    DramTimingParams p = simpleParams();
    Bank bank;
    const Tick burst = p.toTicks(p.burstMemCycles(64));
    BankService first = bank.serve(3, 0, burst, 0, p);
    // Bank accepts the next CAS tCCD after the previous one, well before
    // the previous burst completes.
    EXPECT_LT(bank.readyAt(), first.data_done);
    BankService second = bank.serve(3, bank.readyAt(), burst,
                                    first.data_done, p);
    EXPECT_TRUE(second.row_hit);
    // The shared bus defers the second burst to after the first.
    EXPECT_GE(second.data_start, first.data_done);
}

TEST(Bank, BusContentionDelaysData)
{
    DramTimingParams p = simpleParams();
    Bank bank;
    const Tick burst = p.toTicks(p.burstMemCycles(64));
    const Tick bus_free = 100'000;
    BankService svc = bank.serve(1, 0, burst, bus_free, p);
    EXPECT_EQ(svc.data_start, bus_free);
}

TEST(Bank, RefreshClosesRowAndBlocks)
{
    DramTimingParams p = simpleParams();
    Bank bank;
    const Tick burst = p.toTicks(p.burstMemCycles(64));
    bank.serve(7, 0, burst, 0, p);
    EXPECT_EQ(bank.openRow(), 7);
    const Tick now = 50'000;
    bank.refresh(now, p);
    EXPECT_EQ(bank.openRow(), -1);
    EXPECT_GE(bank.readyAt(), now + p.toTicks(p.t_rfc));
}

TEST(Bank, ResetForgetsState)
{
    DramTimingParams p = simpleParams();
    Bank bank;
    bank.serve(7, 0, 8, 0, p);
    bank.reset();
    EXPECT_EQ(bank.openRow(), -1);
    EXPECT_EQ(bank.readyAt(), 0u);
}

// ---- address decode -------------------------------------------------------

TEST(Decode, ChannelInterleavesAtSubblock)
{
    EventQueue events;
    DramSystem sys(simpleParams(), 16_MiB, events);
    AddressDecode d0 = sys.decode(0);
    AddressDecode d1 = sys.decode(64);
    EXPECT_NE(d0.channel, d1.channel);
    EXPECT_EQ(sys.decode(128).channel, d0.channel);   // 2 channels
}

TEST(Decode, CoversAllBanks)
{
    EventQueue events;
    DramSystem sys(simpleParams(), 16_MiB, events);
    // Bank bits sit above channels (2) and columns (128): the bank
    // advances every 2 * 128 * 64B = 16KB.
    std::set<uint32_t> banks;
    for (Addr a = 0; a < 16_MiB; a += 16 * 1024)
        banks.insert(sys.decode(a).bank);
    EXPECT_EQ(banks.size(), 8u);
}

TEST(Decode, DistinctAddressesDistinctPlacement)
{
    EventQueue events;
    DramSystem sys(simpleParams(), 16_MiB, events);
    std::set<std::tuple<uint32_t, uint32_t, int64_t, uint32_t>> seen;
    for (Addr a = 0; a < 1_MiB; a += 64) {
        AddressDecode d = sys.decode(a);
        auto key = std::make_tuple(d.channel, d.bank, d.row, d.column);
        EXPECT_TRUE(seen.insert(key).second)
            << "collision at addr " << a;
    }
}

TEST(Decode, OutOfRangeAddressPanics)
{
    EventQueue events;
    DramSystem sys(simpleParams(), 1_MiB, events);
    DramRequest req;
    req.addr = 2_MiB;
    EXPECT_DEATH(sys.issue(std::move(req), 0), "out of range");
}

// ---- system-level behaviour ------------------------------------------------

namespace {

/** Issue a read and step the system until it completes. */
Tick
runRead(DramSystem &sys, EventQueue &events, Addr addr, Tick start)
{
    Tick completed = kTickNever;
    DramRequest req;
    req.addr = addr;
    req.on_complete = [&](Tick t) { completed = t; };
    sys.issue(std::move(req), start);
    for (Tick t = start; t < start + 100'000 && completed == kTickNever;
         ++t) {
        sys.tick(t);
        events.runDue(t);
    }
    EXPECT_NE(completed, kTickNever);
    return completed;
}

} // namespace

TEST(DramSystem, ReadCompletesWithPlausibleLatency)
{
    EventQueue events;
    DramSystem sys(simpleParams(), 16_MiB, events);
    const Tick done = runRead(sys, events, 4096, 0);
    const DramTimingParams &p = sys.params();
    const Tick min_lat =
        p.toTicks(p.t_rcd + p.t_cas + p.burstMemCycles(64));
    EXPECT_GE(done, min_lat);
    EXPECT_LT(done, min_lat + 100);
    EXPECT_EQ(sys.readsServed(), 1u);
}

TEST(DramSystem, RowHitsFasterThanConflicts)
{
    EventQueue events;
    DramSystem sys(simpleParams(), 16_MiB, events);
    const Tick t1 = runRead(sys, events, 0, 0);
    // Same row (next column): row hit.
    const Tick t2 = runRead(sys, events, 128, t1 + 1);
    // Same bank, different row: conflict.  With 2 channels, 8 banks and
    // 128-column rows the same (channel, bank) recurs every
    // 2*128*8*64B = 128KB; bump the row by going 8 * 128KB further.
    const Tick t3 = runRead(sys, events, 8u * 128 * 1024, t2 + 1);
    const Tick hit_lat = t2 - (t1 + 1);
    const Tick conflict_lat = t3 - (t2 + 1);
    EXPECT_LT(hit_lat, conflict_lat);
    EXPECT_GE(sys.rowHits(), 1u);
    EXPECT_GE(sys.rowMisses(), 1u);
}

TEST(DramSystem, DemandPriorityOverMigration)
{
    EventQueue events;
    DramSystem sys(simpleParams(), 16_MiB, events);
    // Flood one channel with migration reads, then issue one demand
    // read; the demand must complete before most of the migrations.
    std::vector<Tick> migration_done;
    for (int i = 0; i < 16; ++i) {
        DramRequest req;
        req.addr = static_cast<Addr>(i) * 128 * 1024;   // same channel 0
        req.traffic = TrafficClass::Migration;
        req.on_complete = [&](Tick t) { migration_done.push_back(t); };
        sys.issue(std::move(req), 0);
    }
    Tick demand_done = kTickNever;
    DramRequest demand;
    demand.addr = 16u * 128 * 1024;
    demand.traffic = TrafficClass::Demand;
    demand.on_complete = [&](Tick t) { demand_done = t; };
    sys.issue(std::move(demand), 0);

    for (Tick t = 0; t < 200'000; ++t) {
        sys.tick(t);
        events.runDue(t);
        if (demand_done != kTickNever && migration_done.size() == 16)
            break;
    }
    ASSERT_NE(demand_done, kTickNever);
    ASSERT_EQ(migration_done.size(), 16u);
    size_t after = 0;
    for (Tick t : migration_done) {
        if (t > demand_done)
            ++after;
    }
    // The demand read overtakes the bulk of the earlier migrations.
    EXPECT_GE(after, 12u);
}

TEST(DramSystem, WritesDrainEventually)
{
    EventQueue events;
    DramSystem sys(simpleParams(), 16_MiB, events);
    for (int i = 0; i < 40; ++i) {
        DramRequest req;
        req.addr = static_cast<Addr>(i) * 64;
        req.is_write = true;
        sys.issue(std::move(req), 0);
    }
    for (Tick t = 0; t < 500'000 && !sys.idle(); ++t) {
        sys.tick(t);
        events.runDue(t);
    }
    EXPECT_TRUE(sys.idle());
    EXPECT_EQ(sys.writesServed(), 40u);
}

TEST(DramSystem, TrafficClassAccounting)
{
    EventQueue events;
    DramSystem sys(simpleParams(), 16_MiB, events);
    DramRequest demand;
    demand.addr = 0;
    sys.issue(std::move(demand), 0);

    DramRequest mig;
    mig.addr = 64;
    mig.is_write = true;
    mig.traffic = TrafficClass::Migration;
    sys.issue(std::move(mig), 0);

    const auto d = static_cast<size_t>(TrafficClass::Demand);
    const auto m = static_cast<size_t>(TrafficClass::Migration);
    EXPECT_EQ(sys.traffic().read[d], 64u);
    EXPECT_EQ(sys.traffic().write[m], 64u);
    EXPECT_EQ(sys.traffic().total(), 128u);
    EXPECT_EQ(sys.demandBytes(), 64u);
}

TEST(DramSystem, ForcedChannelIsHonoured)
{
    EventQueue events;
    DramTimingParams p = simpleParams();
    DramSystem sys(p, 16_MiB, events);
    // Address 64 decodes to channel 1; force channel 0 and verify the
    // request completes (served by the forced channel).
    Tick done = kTickNever;
    DramRequest req;
    req.addr = 64;
    req.force_channel = 0;
    req.on_complete = [&](Tick t) { done = t; };
    sys.issue(std::move(req), 0);
    for (Tick t = 0; t < 100'000 && done == kTickNever; ++t) {
        sys.tick(t);
        events.runDue(t);
    }
    EXPECT_NE(done, kTickNever);
}

TEST(DramSystem, RefreshClosesOpenRows)
{
    EventQueue events;
    DramTimingParams p = simpleParams();
    p.t_refi = 1000;   // refresh boundary at tick 4000
    DramSystem sys(p, 16_MiB, events);
    // Open a row well before the refresh boundary.
    runRead(sys, events, 0, 0);
    // A same-row access after the refresh boundary re-activates.
    runRead(sys, events, 128, 10'000);
    EXPECT_EQ(sys.rowHits(), 0u);
    EXPECT_EQ(sys.rowMisses(), 2u);

    // Without refresh, the second access would have been a row hit.
    EventQueue events2;
    DramTimingParams p2 = simpleParams();
    DramSystem sys2(p2, 16_MiB, events2);
    runRead(sys2, events2, 0, 0);
    runRead(sys2, events2, 128, 10'000);
    EXPECT_EQ(sys2.rowHits(), 1u);
}

TEST(DramSystem, BusUtilizationBounded)
{
    EventQueue events;
    DramSystem sys(simpleParams(), 16_MiB, events);
    for (int i = 0; i < 100; ++i) {
        DramRequest req;
        req.addr = static_cast<Addr>(i) * 64;
        sys.issue(std::move(req), 0);
    }
    Tick t = 0;
    for (; t < 500'000 && !sys.idle(); ++t) {
        sys.tick(t);
        events.runDue(t);
    }
    const double util = sys.busUtilization(t);
    EXPECT_GT(util, 0.0);
    EXPECT_LE(util, 1.0);
}

// ---- energy ----------------------------------------------------------------

TEST(Energy, DynamicScalesWithTraffic)
{
    DramTimingParams p = ddr3Params();
    EnergyMeter m;
    m.recordActivations(10);
    m.recordTransfer(6400, false);
    const double base = m.dynamicJoules(p);
    EXPECT_GT(base, 0.0);
    m.recordTransfer(6400, true);
    EXPECT_GT(m.dynamicJoules(p), base);
}

TEST(Energy, BackgroundScalesWithTime)
{
    DramTimingParams p = ddr3Params();
    EnergyMeter m;
    const double e1 = m.totalJoules(p, 3'200'000, 3.2e9);   // 1 ms
    const double e2 = m.totalJoules(p, 6'400'000, 3.2e9);   // 2 ms
    EXPECT_NEAR(e2, 2.0 * e1, 1e-12);
}

TEST(Energy, NmCheaperPerBitThanFm)
{
    // The premise of the paper's EDP result: die-stacked DRAM moves
    // bits much more cheaply than off-chip DDR.
    DramTimingParams hbm = hbm2Params();
    DramTimingParams ddr = ddr3Params();
    EnergyMeter a, b;
    a.recordTransfer(1'000'000, false);
    b.recordTransfer(1'000'000, false);
    EXPECT_LT(a.dynamicJoules(hbm), b.dynamicJoules(ddr));
}

TEST(Energy, SystemEnergyMatchesMeter)
{
    EventQueue events;
    DramSystem sys(simpleParams(), 16_MiB, events);
    runRead(sys, events, 0, 0);
    EXPECT_GT(sys.dynamicEnergyJoules(), 0.0);
    EXPECT_GT(sys.energyJoules(1000, 3.2e9),
              sys.dynamicEnergyJoules());
}

// ---- controller scheduling details ------------------------------------------

TEST(Controller, WritesUseIdleSlots)
{
    EventQueue events;
    DramSystem sys(simpleParams(), 16_MiB, events);
    // Only writes queued: they issue without needing a drain trigger.
    for (int i = 0; i < 4; ++i) {
        DramRequest req;
        req.addr = static_cast<Addr>(i) * 64;
        req.is_write = true;
        sys.issue(std::move(req), 0);
    }
    for (Tick t = 0; t < 100'000 && !sys.idle(); ++t) {
        sys.tick(t);
        events.runDue(t);
    }
    EXPECT_EQ(sys.writesServed(), 4u);
}

TEST(Controller, BackgroundReadsEventuallyComplete)
{
    EventQueue events;
    DramSystem sys(simpleParams(), 16_MiB, events);
    // Interleave demand and migration reads; both classes must finish.
    int migration_done = 0, demand_done = 0;
    for (int i = 0; i < 8; ++i) {
        DramRequest mig;
        mig.addr = static_cast<Addr>(i) * 4096;
        mig.traffic = TrafficClass::Migration;
        mig.on_complete = [&](Tick) { ++migration_done; };
        sys.issue(std::move(mig), 0);

        DramRequest dem;
        dem.addr = static_cast<Addr>(i) * 4096 + 2048;
        dem.traffic = TrafficClass::Demand;
        dem.on_complete = [&](Tick) { ++demand_done; };
        sys.issue(std::move(dem), 0);
    }
    for (Tick t = 0;
         t < 1'000'000 && !(sys.idle() && events.empty()); ++t) {
        sys.tick(t);
        events.runDue(t);
    }
    EXPECT_EQ(migration_done, 8);
    EXPECT_EQ(demand_done, 8);
}

TEST(Controller, LargerBurstsOccupyBusLonger)
{
    EventQueue events;
    DramTimingParams p = simpleParams();
    p.channels = 1;
    DramSystem sysA(p, 16_MiB, events);

    // Two back-to-back row-hit reads of 64B vs of 2048B: completion gap
    // reflects the burst length.
    auto run_two = [&events](DramSystem &sys, uint32_t bytes) {
        std::vector<Tick> done;
        for (int i = 0; i < 2; ++i) {
            DramRequest req;
            req.addr = static_cast<Addr>(i) * bytes;
            req.bytes = bytes;
            req.on_complete = [&](Tick t) { done.push_back(t); };
            sys.issue(std::move(req), 0);
        }
        for (Tick t = 0; t < 1'000'000 && done.size() < 2; ++t) {
            sys.tick(t);
            events.runDue(t);
        }
        return done[1] - done[0];
    };

    const Tick gap64 = run_two(sysA, 64);
    DramSystem sysB(p, 16_MiB, events);
    const Tick gap2k = run_two(sysB, 2048);
    EXPECT_GT(gap2k, gap64);
}

TEST(Controller, QueueDepthObservable)
{
    EventQueue events;
    DramTimingParams p = simpleParams();
    p.channels = 1;
    DramSystem sys(p, 16_MiB, events);
    for (int i = 0; i < 10; ++i) {
        DramRequest req;
        req.addr = static_cast<Addr>(i) * 64;
        sys.issue(std::move(req), 0);
    }
    EXPECT_EQ(sys.queuedRequests(), 10u);
    for (Tick t = 0; t < 1'000'000 && !sys.idle(); ++t) {
        sys.tick(t);
        events.runDue(t);
    }
    EXPECT_EQ(sys.queuedRequests(), 0u);
}

TEST(Controller, ResetRestoresPristineState)
{
    EventQueue events;
    DramSystem sys(simpleParams(), 16_MiB, events);
    runRead(sys, events, 0, 0);
    sys.reset();
    EXPECT_EQ(sys.readsServed(), 0u);
    EXPECT_EQ(sys.traffic().total(), 0u);
    EXPECT_TRUE(sys.idle());
    // Still usable after reset.
    events.clear();
    runRead(sys, events, 4096, 0);
    EXPECT_EQ(sys.readsServed(), 1u);
}

TEST(Controller, AvgReadQueueDelayGrowsUnderLoad)
{
    EventQueue events;
    DramTimingParams p = simpleParams();
    p.channels = 1;
    DramSystem light(p, 16_MiB, events);
    runRead(light, events, 0, 0);
    const double d_light = light.avgReadQueueDelay();

    DramSystem heavy(p, 16_MiB, events);
    for (int i = 0; i < 64; ++i) {
        DramRequest req;
        req.addr = static_cast<Addr>(i) * 128 * 1024;   // row conflicts
        heavy.issue(std::move(req), 0);
    }
    for (Tick t = 0; t < 4'000'000 && !heavy.idle(); ++t) {
        heavy.tick(t);
        events.runDue(t);
    }
    EXPECT_GT(heavy.avgReadQueueDelay(), d_light);
}

// ---- traffic-class name plumbing -------------------------------------------------

TEST(TrafficClass, NamesAreStable)
{
    EXPECT_STREQ(trafficClassName(TrafficClass::Demand), "demand");
    EXPECT_STREQ(trafficClassName(TrafficClass::Migration), "migration");
    EXPECT_STREQ(trafficClassName(TrafficClass::Metadata), "metadata");
    EXPECT_STREQ(trafficClassName(TrafficClass::Writeback), "writeback");
}

TEST(Timing, ValidationCatchesBadGeometry)
{
    DramTimingParams p = ddr3Params();
    p.channels = 3;   // not a power of two
    EXPECT_DEATH(p.validate(), "powers of two");
    DramTimingParams q = ddr3Params();
    q.t_cas = 0;
    EXPECT_DEATH(q.validate(), "timing");
}

TEST(DramSystem, CapacityMustBePageMultiple)
{
    EventQueue events;
    EXPECT_DEATH(DramSystem(ddr3Params(), 1000, events), "multiple");
}

// ---- event-driven controller wakeups -------------------------------------
//
// The controller's never-miss invariant: whenever anything actionable
// exists at tick T (a request could issue, a refresh is due, drain state
// could flip, a background read out-ages its bound), nextScanAt() <= T.
// The strongest check is differential: a "polled" driver that scans every
// memory cycle — the historical behaviour — must produce exactly the
// same issued schedule, completions, and statistics as an event-driven
// driver that scans only at the pending wakeup.

namespace {

/** One completion observed through a controller's event queue. */
struct Completion
{
    Tick tick;
    Addr addr;
    bool operator==(const Completion &) const = default;
};

/** Drives one ChannelController either polled or event-driven. */
struct ControllerDriver
{
    explicit ControllerDriver(const DramTimingParams &p)
        : params(p), ctrl(p, events)
    {
    }

    void
    enqueue(Addr addr, bool is_write, TrafficClass cls, uint32_t bank,
            int64_t row, Tick now, bool event_driven)
    {
        DecodedRequest dec;
        dec.req.addr = addr;
        dec.req.is_write = is_write;
        dec.req.traffic = cls;
        if (!is_write) {
            dec.req.on_complete = [this, addr](Tick t) {
                completions.push_back({t, addr});
            };
        }
        dec.bank = bank;
        dec.row = row;
        ctrl.enqueue(std::move(dec), now);
        if (event_driven) {
            // Mirror DramSystem::issue(): the scan phase for this tick
            // has already run, so a boundary tick arms the next boundary.
            const Tick step = params.toTicks(1);
            const Tick rem = now % step;
            ctrl.requestScanAt(rem == 0 ? now + step
                                        : now + (step - rem));
        }
    }

    void
    step(Tick now, bool event_driven)
    {
        if (event_driven) {
            if (now >= ctrl.nextScanAt())
                ctrl.scan(now);
        } else if (now % params.toTicks(1) == 0) {
            ctrl.scan(now);
        }
        events.runDue(now);
    }

    DramTimingParams params;
    EventQueue events;
    ChannelController ctrl;
    std::vector<Completion> completions;
};

} // namespace

TEST(EventDriven, MatchesPolledControllerAcrossRandomTimings)
{
    Rng cfg_rng(20260805);
    for (int trial = 0; trial < 10; ++trial) {
        DramTimingParams p = simpleParams();
        p.t_cas = 4 + static_cast<uint32_t>(cfg_rng.below(12));
        p.t_rcd = 4 + static_cast<uint32_t>(cfg_rng.below(12));
        p.t_rp = 4 + static_cast<uint32_t>(cfg_rng.below(12));
        p.t_ras = p.t_rcd + p.t_cas +
            static_cast<uint32_t>(cfg_rng.below(16));
        p.t_ccd = 2 + static_cast<uint32_t>(cfg_rng.below(4));
        p.queue_depth = 8u << cfg_rng.below(3);
        p.cpu_cycles_per_mem_cycle =
            1u << cfg_rng.below(3);
        p.t_refi = cfg_rng.below(2) == 0
            ? 0
            : 400 + static_cast<uint32_t>(cfg_rng.below(400));
        p.bg_max_wait_mem_cycles = cfg_rng.below(2) == 0
            ? 0
            : 32 + static_cast<uint32_t>(cfg_rng.below(200));

        ControllerDriver polled(p);
        ControllerDriver event_driven(p);
        const uint32_t banks = static_cast<uint32_t>(
            polled.ctrl.numBanks());

        // Identical pseudo-random traffic into both drivers.
        Rng traffic(1000 + trial);
        const Tick horizon = 6000;
        Tick next_arrival = traffic.below(20);
        Addr next_addr = 0;
        for (Tick t = 0; t < horizon; ++t) {
            polled.step(t, false);
            event_driven.step(t, true);
            while (t == next_arrival) {
                const bool is_write = traffic.below(10) < 3;
                const TrafficClass cls = is_write
                    ? (traffic.below(2) != 0 ? TrafficClass::Writeback
                                             : TrafficClass::Migration)
                    : (traffic.below(10) < 7
                           ? TrafficClass::Demand
                           : TrafficClass::Migration);
                const uint32_t bank =
                    static_cast<uint32_t>(traffic.below(banks));
                const int64_t row =
                    static_cast<int64_t>(traffic.below(4));
                const Addr addr = next_addr;
                next_addr += kSubblockSize;
                polled.enqueue(addr, is_write, cls, bank, row, t,
                               false);
                event_driven.enqueue(addr, is_write, cls, bank, row, t,
                                     true);
                next_arrival = t + 1 + traffic.below(12);
            }
            // Liveness: pending work always has a pending wakeup.
            if (event_driven.ctrl.queuedRequests() != 0)
                ASSERT_NE(event_driven.ctrl.nextScanAt(), kTickNever)
                    << "trial " << trial << " tick " << t;
        }
        // Drain what is still queued.
        for (Tick t = horizon; t < horizon + 100000 &&
                 (polled.ctrl.queuedRequests() != 0 ||
                  event_driven.ctrl.queuedRequests() != 0);
             ++t) {
            polled.step(t, false);
            event_driven.step(t, true);
        }

        ASSERT_EQ(polled.ctrl.queuedRequests(), 0u) << "trial " << trial;
        ASSERT_EQ(event_driven.ctrl.queuedRequests(), 0u)
            << "trial " << trial;
        EXPECT_EQ(polled.completions, event_driven.completions)
            << "trial " << trial;
        EXPECT_EQ(polled.ctrl.readsServed(),
                  event_driven.ctrl.readsServed());
        EXPECT_EQ(polled.ctrl.writesServed(),
                  event_driven.ctrl.writesServed());
        EXPECT_EQ(polled.ctrl.rowHits(), event_driven.ctrl.rowHits());
        EXPECT_EQ(polled.ctrl.rowMisses(),
                  event_driven.ctrl.rowMisses());
        EXPECT_EQ(polled.ctrl.activations(),
                  event_driven.ctrl.activations());
        EXPECT_EQ(polled.ctrl.refreshes(),
                  event_driven.ctrl.refreshes());
        EXPECT_EQ(polled.ctrl.bgPromotions(),
                  event_driven.ctrl.bgPromotions());
        EXPECT_EQ(polled.ctrl.busBusyTicks(),
                  event_driven.ctrl.busBusyTicks());
    }
}

TEST(EventDriven, RefreshCatchUpCountsEachInterval)
{
    DramTimingParams p = simpleParams();
    p.t_refi = 100;
    EventQueue events;
    ChannelController ctrl(p, events);

    // Idle channel: the only wakeup is the refresh deadline.
    EXPECT_EQ(ctrl.nextScanAt(), p.toTicks(p.t_refi));

    // Wake far past several intervals at once (a fast-forwarded main
    // loop does this routinely): every elapsed interval must count.
    const Tick interval = p.toTicks(p.t_refi);
    ctrl.scan(interval * 5);
    EXPECT_EQ(ctrl.refreshes(), 5u);
    EXPECT_EQ(ctrl.nextRefreshAt(), interval * 6);
    EXPECT_EQ(ctrl.nextScanAt(), interval * 6);

    ctrl.scan(interval * 6);
    EXPECT_EQ(ctrl.refreshes(), 6u);
}

TEST(EventDriven, DrainHysteresisReleasesAboveEmptyAtDepth8)
{
    // Regression: with queue_depth = 8 the old fixed release margin of 8
    // exceeded the high watermark, the release condition could never be
    // met, and an engaged drain ran the write queue all the way to
    // empty.  The margin now derives from the depth.
    DramTimingParams p = simpleParams();
    p.queue_depth = 8;
    p.t_refi = 0;
    EventQueue events;
    ChannelController ctrl(p, events);

    for (uint32_t i = 0; i < 8; ++i) {
        DecodedRequest dec;
        dec.req.addr = static_cast<Addr>(i) * kSubblockSize;
        dec.req.is_write = true;
        dec.req.traffic = TrafficClass::Writeback;
        dec.bank = i % ctrl.numBanks();
        dec.row = 0;
        ctrl.enqueue(std::move(dec), 0);
    }

    bool engaged = false;
    size_t depth_at_release = 0;
    for (Tick t = 0; t < 100000 && ctrl.writeQueueDepth() != 0; ++t) {
        if (t % p.toTicks(1) == 0)
            ctrl.scan(t);
        if (ctrl.drainingWrites()) {
            engaged = true;
        } else if (engaged && depth_at_release == 0) {
            depth_at_release = ctrl.writeQueueDepth();
            break;
        }
    }
    EXPECT_TRUE(engaged);
    // Drain must disengage while writes are still queued, not at empty.
    EXPECT_GT(depth_at_release, 0u);
}

TEST(EventDriven, AgingPromotesStarvedBackgroundRead)
{
    DramTimingParams p = simpleParams();
    p.t_refi = 0;
    p.bg_max_wait_mem_cycles = 64;
    EventQueue events;
    ChannelController ctrl(p, events);

    bool bg_done = false;
    Tick bg_done_at = 0;
    {
        DecodedRequest dec;
        dec.req.addr = 0x10000;
        dec.req.traffic = TrafficClass::Migration;
        dec.req.on_complete = [&](Tick t) {
            bg_done = true;
            bg_done_at = t;
        };
        dec.bank = 0;
        dec.row = 7;
        ctrl.enqueue(std::move(dec), 0);
    }

    // Saturate the channel with demand reads to the same bank forever:
    // without the aging bound the migration read would never be chosen.
    uint64_t demand_done = 0;
    Addr a = 0;
    for (Tick t = 0; t < p.toTicks(4096); ++t) {
        if (t % p.toTicks(1) == 0) {
            while (ctrl.readQueueDepth() < p.queue_depth) {
                DecodedRequest dec;
                dec.req.addr = (a += kSubblockSize);
                dec.req.traffic = TrafficClass::Demand;
                dec.req.on_complete = [&](Tick) { ++demand_done; };
                dec.bank = 0;
                dec.row = 0;
                ctrl.enqueue(std::move(dec), t);
            }
            ctrl.scan(t);
        }
        events.runDue(t);
    }

    EXPECT_TRUE(bg_done);
    EXPECT_GE(ctrl.bgPromotions(), 1u);
    // Promotion happened once the bound elapsed, not at the very end.
    EXPECT_LE(bg_done_at,
              p.toTicks(p.bg_max_wait_mem_cycles) + p.toTicks(256));
    EXPECT_GT(demand_done, 0u);
}

TEST(EventDriven, ArenaSurvivesChurn)
{
    // Free-list stress: interleave enqueues and drains so arena slots
    // are recycled across all three queues, then verify nothing leaks
    // and FIFO order within each queue is preserved.
    DramTimingParams p = simpleParams();
    p.t_refi = 0;
    EventQueue events;
    ChannelController ctrl(p, events);
    Rng rng(42);

    uint64_t enqueued_reads = 0;
    uint64_t enqueued_writes = 0;
    Addr a = 0;
    for (int round = 0; round < 50; ++round) {
        const uint32_t burst = 1 + static_cast<uint32_t>(rng.below(12));
        const Tick base = static_cast<Tick>(round) * 4096;
        for (uint32_t i = 0; i < burst; ++i) {
            DecodedRequest dec;
            dec.req.addr = (a += kSubblockSize);
            dec.req.is_write = rng.below(3) == 0;
            dec.req.traffic = dec.req.is_write
                ? TrafficClass::Writeback
                : (rng.below(2) != 0 ? TrafficClass::Demand
                                     : TrafficClass::Migration);
            dec.bank = static_cast<uint32_t>(
                rng.below(ctrl.numBanks()));
            dec.row = static_cast<int64_t>(rng.below(8));
            if (dec.req.is_write)
                ++enqueued_writes;
            else
                ++enqueued_reads;
            ctrl.enqueue(std::move(dec), base);
        }
        // FIFO snapshots stay enqueue-ordered.
        for (int q = 0; q < 3; ++q) {
            const auto snap = ctrl.queueSnapshot(q);
            for (size_t i = 1; i < snap.size(); ++i)
                ASSERT_LE(snap[i - 1].enqueued, snap[i].enqueued);
        }
        // Randomly drain some or all of the queue.
        const bool full_drain = rng.below(3) == 0;
        Tick t = base;
        const Tick stop = base + 4096;
        while (t < stop &&
               (full_drain ? ctrl.queuedRequests() != 0
                           : t < base + 256)) {
            if (t % p.toTicks(1) == 0)
                ctrl.scan(t);
            events.runDue(t);
            ++t;
        }
    }
    // Final drain.
    for (Tick t = 50 * 4096; ctrl.queuedRequests() != 0; ++t) {
        if (t % p.toTicks(1) == 0)
            ctrl.scan(t);
        events.runDue(t);
    }
    EXPECT_EQ(ctrl.readsServed(), enqueued_reads);
    EXPECT_EQ(ctrl.writesServed(), enqueued_writes);
    EXPECT_EQ(ctrl.readQueueDepth(), 0u);
    EXPECT_EQ(ctrl.writeQueueDepth(), 0u);
}
