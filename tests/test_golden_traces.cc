/**
 * @file
 * Golden-trace regression: three small recorded traces (tests/golden/)
 * replay through full-system SILC-FM configurations, and the resulting
 * SimResult JSON must match the committed goldens byte for byte.  Any
 * change in functional behaviour, timing, metric plumbing, or JSON
 * formatting shows up as a diff here before it can silently shift the
 * paper's figures.
 *
 * Every run also executes under the differential oracle (check=true),
 * so a golden can only be regenerated from a state the reference model
 * agrees with.
 *
 * Regenerating after an intentional behaviour change:
 *
 *     GOLDEN_REGEN=1 ./tests/test_golden_traces
 *
 * then inspect the diff of tests/golden/\*.json and commit it together
 * with the change that caused it (see TESTING.md).
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "sim/result_writer.hh"
#include "sim/system.hh"

using namespace silc;

namespace {

std::string
goldenPath(const std::string &file)
{
    return std::string(SILC_GOLDEN_DIR) + "/" + file;
}

/** Distinct configuration per trace to spread feature coverage. */
sim::SystemConfig
configFor(const std::string &name)
{
    sim::SystemConfig cfg = sim::SystemConfig::defaults();
    cfg.cores = 2;
    cfg.instructions_per_core = 25'000;
    cfg.nm_bytes = 1_MiB;
    cfg.fm_bytes = 4_MiB;
    cfg.policy = sim::PolicyKind::SilcFm;
    cfg.workload = name;
    cfg.trace_file = goldenPath(name + ".silctrace");
    cfg.check = true;
    cfg.silc.aging_interval = 2'000;
    cfg.silc.hot_threshold = 6;
    if (name == "golden_stream") {
        cfg.silc.associativity = 1;
        cfg.silc.bypass_window = 512;
    } else if (name == "golden_hotset") {
        cfg.silc.associativity = 2;
        cfg.silc.hot_threshold = 4;
    } else if (name == "golden_conflict") {
        cfg.silc.associativity = 4;
        cfg.silc.history_min_bits = 2;
    }
    return cfg;
}

std::string
runToJson(const std::string &name)
{
    sim::System system(configFor(name));
    const sim::SimResult r = system.run();
    std::ostringstream os;
    sim::writeResultJson(os, r);
    os << "\n";
    return os.str();
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return {};
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

} // namespace

class GoldenTrace : public ::testing::TestWithParam<const char *>
{
};

TEST_P(GoldenTrace, ResultJsonIsByteStable)
{
    const std::string name = GetParam();
    const std::string json = runToJson(name);
    const std::string golden_file = goldenPath(name + ".json");

    if (std::getenv("GOLDEN_REGEN") != nullptr) {
        std::ofstream out(golden_file, std::ios::binary);
        ASSERT_TRUE(out.good()) << "cannot write " << golden_file;
        out << json;
        GTEST_SKIP() << "regenerated " << golden_file;
    }

    const std::string golden = readFile(golden_file);
    ASSERT_FALSE(golden.empty())
        << golden_file
        << " missing - run with GOLDEN_REGEN=1 to create it";
    EXPECT_EQ(json, golden)
        << "result JSON diverged from " << golden_file
        << "; if the behaviour change is intentional, regenerate with "
           "GOLDEN_REGEN=1 and commit the diff";
}

TEST_P(GoldenTrace, ReplayIsDeterministic)
{
    // The byte-stability claim rests on run-to-run determinism; prove
    // it directly so a flaky golden can be told apart from a real
    // behaviour change.
    const std::string name = GetParam();
    EXPECT_EQ(runToJson(name), runToJson(name));
}

INSTANTIATE_TEST_SUITE_P(Traces, GoldenTrace,
                         ::testing::Values("golden_stream",
                                           "golden_hotset",
                                           "golden_conflict"),
                         [](const ::testing::TestParamInfo<const char *>
                                &info) {
                             return std::string(info.param);
                         });
