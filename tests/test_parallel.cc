/**
 * @file
 * The parallel experiment layer: ThreadPool execution and stealing,
 * SILC_THREADS parsing, and — the properties the bench tables depend
 * on — bit-identical results between sequential and parallel runs and
 * a baseline cache that computes each workload's no-NM denominator
 * exactly once no matter how many threads request it.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <thread>
#include <vector>

#include "common/logging.hh"
#include "sim/parallel.hh"

using namespace silc;
using namespace silc::sim;

namespace {

/** Tiny but non-trivial scale so a full grid stays fast. */
ExperimentOptions
tinyOptions()
{
    ExperimentOptions opts;
    opts.cores = 2;
    opts.instructions_per_core = 20'000;
    return opts;
}

} // namespace

TEST(ThreadPoolTest, RunsEveryTask)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.threads(), 4u);
    std::atomic<int> count{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&count] { ++count; });
    // Destruction drains the queues before joining.
    {
        ThreadPool inner(2);
        for (int i = 0; i < 100; ++i)
            inner.submit([&count] { ++count; });
    }
    while (count.load() < 200)
        std::this_thread::yield();
    EXPECT_EQ(count.load(), 200);
}

TEST(ThreadPoolTest, IdleWorkersStealQueuedWork)
{
    // One queue receives a long task followed by short ones (round-robin
    // over a 2-worker pool lands every even submission on worker 0); the
    // other worker must steal the short tasks for them to finish while
    // the long task still blocks its home queue.
    ThreadPool pool(2);
    std::atomic<bool> release{false};
    std::atomic<int> shorts{0};
    for (int i = 0; i < 8; ++i) {
        pool.submit([&] {
            if (!release.load()) {
                // First task to run becomes the blocker.
                bool expected = false;
                if (release.compare_exchange_strong(expected, true)) {
                    while (shorts.load() < 7)
                        std::this_thread::yield();
                    return;
                }
            }
            ++shorts;
        });
    }
    while (shorts.load() < 7)
        std::this_thread::yield();
    EXPECT_EQ(shorts.load(), 7);
}

TEST(ParallelThreadsTest, EnvKnobParsing)
{
    ASSERT_EQ(setenv("SILC_THREADS", "3", 1), 0);
    EXPECT_EQ(parallelThreadsFromEnv(), 3u);
    ASSERT_EQ(setenv("SILC_THREADS", "1", 1), 0);
    EXPECT_EQ(parallelThreadsFromEnv(), 1u);
    ASSERT_EQ(unsetenv("SILC_THREADS"), 0);
    EXPECT_GE(parallelThreadsFromEnv(), 1u);
}

TEST(ParallelRunnerTest, BitIdenticalToSequentialRunner)
{
    const ExperimentOptions opts = tinyOptions();
    const std::vector<std::string> workloads = {"mcf", "milc", "lbm"};
    const std::vector<PolicyKind> kinds = {PolicyKind::SilcFm,
                                           PolicyKind::Cameo};

    ExperimentRunner seq(opts);

    ASSERT_EQ(setenv("SILC_THREADS", "4", 1), 0);
    ParallelRunner par(opts);  // picks up SILC_THREADS
    ASSERT_EQ(unsetenv("SILC_THREADS"), 0);
    ASSERT_EQ(par.threads(), 4u);

    std::vector<std::vector<ParallelRunner::Job>> jobs(workloads.size());
    for (size_t w = 0; w < workloads.size(); ++w)
        for (PolicyKind kind : kinds)
            jobs[w].push_back(par.submit(workloads[w], kind));

    for (size_t w = 0; w < workloads.size(); ++w) {
        for (size_t k = 0; k < kinds.size(); ++k) {
            const SimResult s = seq.run(workloads[w], kinds[k]);
            const SimResult p = jobs[w][k].get();
            EXPECT_EQ(s.ticks, p.ticks)
                << workloads[w] << "/" << policyKindName(kinds[k]);
            EXPECT_EQ(s.instructions, p.instructions);
            EXPECT_EQ(s.llc_misses, p.llc_misses);
            EXPECT_EQ(s.nm_total_bytes, p.nm_total_bytes);
            EXPECT_EQ(s.fm_total_bytes, p.fm_total_bytes);
            EXPECT_EQ(s.migration_bytes, p.migration_bytes);
            // The speedups share the same cached denominator.
            EXPECT_DOUBLE_EQ(seq.speedup(s), par.speedup(p));
        }
    }
    EXPECT_EQ(par.jobsCompleted(),
              workloads.size() * kinds.size() + workloads.size());
}

TEST(ParallelRunnerTest, BaselineComputedExactlyOnce)
{
    ParallelRunner runner(tinyOptions(), 4);

    // Hammer the cache from many external threads at once: everyone
    // must see the same ticks and only one baseline simulation may run.
    constexpr int kRequesters = 8;
    std::vector<Tick> ticks(kRequesters, 0);
    std::vector<std::thread> threads;
    for (int i = 0; i < kRequesters; ++i) {
        threads.emplace_back([&runner, &ticks, i] {
            ticks[static_cast<size_t>(i)] = runner.baselineTicks("mcf");
        });
    }
    for (auto &t : threads)
        t.join();

    EXPECT_EQ(runner.baselineRuns(), 1u);
    for (int i = 1; i < kRequesters; ++i)
        EXPECT_EQ(ticks[static_cast<size_t>(i)], ticks[0]);

    // FmOnly submissions reuse the cache instead of re-running.
    ParallelRunner::Job job = runner.submit("mcf", PolicyKind::FmOnly);
    EXPECT_EQ(job.get().ticks, ticks[0]);
    EXPECT_EQ(runner.baselineRuns(), 1u);
}

TEST(ParallelRunnerTest, LogThreadTagRoundTrips)
{
    logSetThreadTag("unit/test");
    EXPECT_EQ(logThreadTag(), "unit/test");
    logSetThreadTag("");
    EXPECT_EQ(logThreadTag(), "");
}
