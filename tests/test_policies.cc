/**
 * @file
 * Unit and property tests for the baseline flat-memory policies:
 * FmOnly, StaticRandom, CAMEO(+P), PoM and HMA.  The central property is
 * that locate() stays a bijection over the flat space no matter what
 * sequence of accesses and migrations has happened.
 */

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <vector>

#include "common/rng.hh"
#include "dram/dram_system.hh"
#include "policy/cameo.hh"
#include "policy/hma.hh"
#include "policy/pom.hh"
#include "policy/static_random.hh"

using namespace silc;
using namespace silc::policy;

namespace {

/** A tiny NM/FM pair shared by the tests (1 MiB NM, 4 MiB FM). */
class PolicyFixture : public ::testing::Test
{
  protected:
    PolicyFixture()
    {
        dram::DramTimingParams nm_p = dram::hbm2Params();
        dram::DramTimingParams fm_p = dram::ddr3Params();
        nm_ = std::make_unique<dram::DramSystem>(nm_p, 1_MiB, events_);
        fm_ = std::make_unique<dram::DramSystem>(fm_p, 4_MiB, events_);
        env_.nm = nm_.get();
        env_.fm = fm_.get();
        env_.events = &events_;
    }

    /** Step DRAM until everything queued has drained. */
    void
    drain(Tick start = 0, Tick budget = 4'000'000)
    {
        for (Tick t = start; t < start + budget; ++t) {
            nm_->tick(t);
            fm_->tick(t);
            events_.runDue(t);
            if (nm_->idle() && fm_->idle() && events_.empty())
                return;
        }
        FAIL() << "DRAM did not drain";
    }

    /**
     * The bijection property: every 64B block in the flat space maps to
     * a distinct (device, address) and round-trips within capacity.
     */
    void
    checkBijective(const FlatMemoryPolicy &policy)
    {
        std::set<std::pair<bool, Addr>> seen;
        for (Addr a = 0; a < policy.flatSpaceBytes(); a += kSubblockSize) {
            const Location loc = policy.locate(a);
            if (loc.in_nm)
                ASSERT_LT(loc.device_addr, nm_->capacity());
            else
                ASSERT_LT(loc.device_addr, fm_->capacity());
            ASSERT_TRUE(
                seen.insert({loc.in_nm, loc.device_addr}).second)
                << "two blocks share a location (flat addr " << a << ")";
        }
        // Complete coverage: as many distinct locations as blocks.
        EXPECT_EQ(seen.size(), policy.flatSpaceBytes() / kSubblockSize);
    }

    EventQueue events_;
    std::unique_ptr<dram::DramSystem> nm_;
    std::unique_ptr<dram::DramSystem> fm_;
    PolicyEnv env_;
};

/** Issue one demand access and return the completion tick. */
Tick
demand(FlatMemoryPolicy &policy, Addr a, Tick now, CoreId core = 0,
       Addr pc = 0x400)
{
    // The completion callback outlives this frame (it fires from the
    // DRAM event path during drain()), so the landing slot must be
    // owned by the callback, not a captured stack local.
    auto done = std::make_shared<Tick>(kTickNever);
    policy.demandAccess(a, false, core, pc,
                        [done](Tick t) { *done = t; }, now);
    return *done;
}

} // namespace

// ---- FmOnly -----------------------------------------------------------------

TEST_F(PolicyFixture, FmOnlySpansOnlyFm)
{
    FmOnlyPolicy p(env_);
    EXPECT_EQ(p.flatSpaceBytes(), fm_->capacity());
    const Location loc = p.locate(4096);
    EXPECT_FALSE(loc.in_nm);
    EXPECT_EQ(loc.device_addr, 4096u);
}

TEST_F(PolicyFixture, FmOnlyCountsAllAsFm)
{
    FmOnlyPolicy p(env_);
    demand(p, 0, 0);
    demand(p, 64, 0);
    drain();
    EXPECT_EQ(p.nmServiced(), 0u);
    EXPECT_EQ(p.fmServiced(), 2u);
    EXPECT_DOUBLE_EQ(p.accessRate(), 0.0);
}

// ---- StaticRandom -------------------------------------------------------------

TEST_F(PolicyFixture, RandomIsIdentityLayout)
{
    StaticRandomPolicy p(env_);
    EXPECT_EQ(p.flatSpaceBytes(), 5_MiB);
    EXPECT_TRUE(p.locate(0).in_nm);
    EXPECT_FALSE(p.locate(1_MiB).in_nm);
    EXPECT_EQ(p.locate(1_MiB + 64).device_addr, 64u);
    checkBijective(p);
}

TEST_F(PolicyFixture, RandomAccessRateTracksAddressSplit)
{
    StaticRandomPolicy p(env_);
    demand(p, 0, 0);              // NM
    demand(p, 2_MiB, 0);          // FM
    demand(p, 3_MiB, 0);          // FM
    drain();
    EXPECT_EQ(p.nmServiced(), 1u);
    EXPECT_EQ(p.fmServiced(), 2u);
    EXPECT_NEAR(p.accessRate(), 1.0 / 3.0, 1e-12);
}

TEST_F(PolicyFixture, RandomNeverMigrates)
{
    StaticRandomPolicy p(env_);
    Rng rng(1);
    for (int i = 0; i < 2000; ++i)
        demand(p, rng.below(p.flatSpaceBytes() / 64) * 64, i);
    EXPECT_EQ(p.migrationOps(), 0u);
    checkBijective(p);
}

// ---- CAMEO -------------------------------------------------------------------

TEST_F(PolicyFixture, CameoFirstFmAccessSwapsIntoNm)
{
    CameoPolicy p(env_, CameoParams{});
    const Addr fm_block = 2_MiB;   // member != 0 of its group
    EXPECT_FALSE(p.locate(fm_block).in_nm);
    demand(p, fm_block, 0);
    EXPECT_TRUE(p.locate(fm_block).in_nm);
    EXPECT_EQ(p.swaps(), 1u);
    checkBijective(p);
    drain();
}

TEST_F(PolicyFixture, CameoEvictsNmOccupantToVacatedSlot)
{
    CameoPolicy p(env_, CameoParams{});
    const Addr a = 1_MiB;          // member 1 of group 0
    const Addr b = 2_MiB;          // member 2 of group 0
    demand(p, a, 0);               // a -> NM slot, native -> a's slot
    const Location native_loc = p.locate(0);
    EXPECT_FALSE(native_loc.in_nm);
    EXPECT_EQ(native_loc.device_addr, 0u);   // FM device addr of a's home
    demand(p, b, 100);             // b -> NM, a -> b's home
    EXPECT_TRUE(p.locate(b).in_nm);
    EXPECT_FALSE(p.locate(a).in_nm);
    checkBijective(p);
    drain();
}

TEST_F(PolicyFixture, CameoNmHitDoesNotSwap)
{
    CameoPolicy p(env_, CameoParams{});
    demand(p, 0, 0);   // NM-native
    EXPECT_EQ(p.swaps(), 0u);
    EXPECT_EQ(p.nmServiced(), 1u);
    drain();
}

TEST_F(PolicyFixture, CameoPrefetchPullsNextLines)
{
    CameoParams params;
    params.prefetch_degree = 3;
    CameoPolicy p(env_, params);
    const Addr fm_block = 2_MiB;
    demand(p, fm_block, 0);
    // The demand line plus the next three now live in NM.
    for (uint32_t i = 0; i <= 3; ++i)
        EXPECT_TRUE(p.locate(fm_block + i * kSubblockSize).in_nm);
    EXPECT_EQ(p.prefetches(), 3u);
    checkBijective(p);
    drain();
}

TEST_F(PolicyFixture, CameoPlainDoesNotPrefetch)
{
    CameoPolicy p(env_, CameoParams{});
    demand(p, 2_MiB, 0);
    EXPECT_EQ(p.prefetches(), 0u);
    EXPECT_FALSE(p.locate(2_MiB + kSubblockSize).in_nm);
    drain();
}

TEST_F(PolicyFixture, CameoLlpTrainsTowardsCorrect)
{
    CameoPolicy p(env_, CameoParams{});
    // Repeated accesses to the same (now NM-resident) block: the LLP
    // should converge to predicting NM for it.
    demand(p, 2_MiB, 0);
    for (int i = 1; i <= 10; ++i)
        demand(p, 2_MiB, i * 1000);
    drain();
    EXPECT_GT(p.llpLookups(), 0u);
    EXPECT_GT(p.llpCorrect(), p.llpLookups() / 2);
}

TEST_F(PolicyFixture, CameoRandomStormStaysBijective)
{
    CameoPolicy p(env_, CameoParams{});
    Rng rng(42);
    for (int i = 0; i < 5000; ++i)
        demand(p, rng.below(p.flatSpaceBytes() / 64) * 64, i);
    checkBijective(p);
    drain();
}

// ---- PoM ---------------------------------------------------------------------

namespace {

PomParams
eagerPom()
{
    PomParams params;
    params.migration_threshold = 2;
    return params;
}

} // namespace

TEST_F(PolicyFixture, PomMigratesAfterThreshold)
{
    PomPolicy p(env_, eagerPom());
    const Addr fm_page_addr = 2_MiB;
    EXPECT_FALSE(p.locate(fm_page_addr).in_nm);
    demand(p, fm_page_addr, 0);
    EXPECT_FALSE(p.locate(fm_page_addr).in_nm);   // below threshold
    demand(p, fm_page_addr, 100);
    EXPECT_TRUE(p.locate(fm_page_addr).in_nm);    // migrated
    EXPECT_EQ(p.migrations(), 1u);
    checkBijective(p);
    drain();
}

TEST_F(PolicyFixture, PomMigrationMovesWholePage)
{
    PomPolicy p(env_, eagerPom());
    const Addr fm_page_addr = 2_MiB;
    demand(p, fm_page_addr, 0);
    demand(p, fm_page_addr, 100);
    // Every subblock of the 2KB page is now NM-resident.
    for (uint32_t s = 0; s < kSubblocksPerBlock; ++s) {
        EXPECT_TRUE(
            p.locate(fm_page_addr + s * kSubblockSize).in_nm);
    }
    // 2KB each way = at least 64 subblock moves.
    EXPECT_GE(p.migrationOps(), 2 * kSubblocksPerBlock);
    drain();
}

TEST_F(PolicyFixture, PomDisplacedNativeFoundAtResidentsHome)
{
    PomPolicy p(env_, eagerPom());
    const Addr fm_page_addr = 2_MiB;   // group 0, member 2
    demand(p, fm_page_addr, 0);
    demand(p, fm_page_addr, 100);
    const Location native = p.locate(0);
    EXPECT_FALSE(native.in_nm);
    // Native page 0 now lives at member 2's FM home, which is device
    // address (2MiB - 1MiB NM) = 1MiB.
    EXPECT_EQ(native.device_addr, 1_MiB);
    checkBijective(p);
    drain();
}

TEST_F(PolicyFixture, PomSecondMigrationRestoresFirst)
{
    PomPolicy p(env_, eagerPom());
    const Addr first = 2_MiB;    // member 2 of group 0
    const Addr second = 3_MiB;   // member 3 of group 0
    demand(p, first, 0);
    demand(p, first, 1);
    ASSERT_TRUE(p.locate(first).in_nm);
    demand(p, second, 2);
    demand(p, second, 3);
    EXPECT_TRUE(p.locate(second).in_nm);
    EXPECT_FALSE(p.locate(first).in_nm);
    // First page restored to its own home.
    EXPECT_EQ(p.locate(first).device_addr, 1_MiB);
    EXPECT_EQ(p.restores(), 1u);
    checkBijective(p);
    drain();
}

TEST_F(PolicyFixture, PomRandomStormStaysBijective)
{
    PomPolicy p(env_, eagerPom());
    Rng rng(7);
    for (int i = 0; i < 4000; ++i)
        demand(p, rng.below(p.flatSpaceBytes() / 64) * 64, i);
    checkBijective(p);
    drain(0, 40'000'000);
}

// ---- HMA ---------------------------------------------------------------------

namespace {

HmaParams
fastHma()
{
    HmaParams params;
    params.epoch_ticks = 10'000;
    params.hot_threshold = 4;
    params.os_base_overhead = 100;
    params.os_per_page_overhead = 10;
    return params;
}

} // namespace

TEST_F(PolicyFixture, HmaMigratesHotFmPageAtEpoch)
{
    HmaPolicy p(env_, fastHma());
    const Addr hot = 2_MiB + 4 * kLargeBlockSize;
    for (int i = 0; i < 10; ++i)
        demand(p, hot, i * 10);
    EXPECT_FALSE(p.locate(hot).in_nm);   // mid-epoch: nothing moves
    for (Tick t = 0; t <= 10'000; ++t)
        p.tick(t);
    EXPECT_EQ(p.epochs(), 1u);
    EXPECT_TRUE(p.locate(hot).in_nm);
    EXPECT_GE(p.pagesMigrated(), 1u);
    checkBijective(p);
    drain(20'000);
}

TEST_F(PolicyFixture, HmaColdPagesStayPut)
{
    HmaPolicy p(env_, fastHma());
    const Addr cold = 2_MiB;
    demand(p, cold, 0);   // one access: below threshold
    for (Tick t = 0; t <= 10'000; ++t)
        p.tick(t);
    EXPECT_FALSE(p.locate(cold).in_nm);
    drain(20'000);
}

TEST_F(PolicyFixture, HmaStallsDemandDuringMigrationWindow)
{
    HmaPolicy p(env_, fastHma());
    const Addr hot = 2_MiB;
    for (int i = 0; i < 10; ++i)
        demand(p, hot, i);
    for (Tick t = 0; t <= 10'000; ++t)
        p.tick(t);
    ASSERT_GE(p.pagesMigrated(), 1u);
    // A demand access right after the epoch boundary is delayed past
    // the OS busy window.
    Tick done = kTickNever;
    p.demandAccess(hot, false, 0, 0x400,
                   [&](Tick t) { done = t; }, 10'001);
    for (Tick t = 10'001; t < 10'000'000 && done == kTickNever; ++t) {
        nm_->tick(t);
        fm_->tick(t);
        events_.runDue(t);
    }
    ASSERT_NE(done, kTickNever);
    EXPECT_GT(done, 10'001u + 100u);   // at least the base OS overhead
}

TEST_F(PolicyFixture, HmaEvictsColdestNmPage)
{
    HmaPolicy p(env_, fastHma());
    // Warm an NM-native page a little, make an FM page very hot.
    const Addr lukewarm = 0;
    const Addr hot = 2_MiB;
    for (int i = 0; i < 5; ++i)
        demand(p, lukewarm, i);
    for (int i = 0; i < 50; ++i)
        demand(p, hot, 100 + i);
    for (Tick t = 0; t <= 10'000; ++t)
        p.tick(t);
    EXPECT_TRUE(p.locate(hot).in_nm);
    // The lukewarm page was not the coldest candidate... but wherever
    // pages went, the mapping stays a bijection.
    checkBijective(p);
    drain(20'000, 40'000'000);
}

TEST_F(PolicyFixture, HmaRepeatedEpochsStayBijective)
{
    HmaPolicy p(env_, fastHma());
    Rng rng(3);
    Tick now = 0;
    for (int epoch = 0; epoch < 5; ++epoch) {
        for (int i = 0; i < 500; ++i) {
            demand(p, rng.below(p.flatSpaceBytes() / 64) * 64, now);
            ++now;
        }
        now += 10'000;
        p.tick(now);
        checkBijective(p);
    }
    drain(now + 1, 80'000'000);
}

// ---- cross-policy property sweeps ---------------------------------------------

/** Every migrating policy keeps a bijective map under random storms. */
class BijectionSweep
    : public PolicyFixture,
      public ::testing::WithParamInterface<int>
{
};

TEST_P(BijectionSweep, RandomStorm)
{
    const int kind = GetParam();
    std::unique_ptr<FlatMemoryPolicy> p;
    switch (kind) {
      case 0:
        p = std::make_unique<StaticRandomPolicy>(env_);
        break;
      case 1:
        p = std::make_unique<CameoPolicy>(env_, CameoParams{});
        break;
      case 2: {
        CameoParams cp;
        cp.prefetch_degree = 3;
        p = std::make_unique<CameoPolicy>(env_, cp);
        break;
      }
      case 3:
        p = std::make_unique<PomPolicy>(env_, eagerPom());
        break;
      default:
        p = std::make_unique<HmaPolicy>(env_, fastHma());
        break;
    }
    Rng rng(1000 + kind);
    Tick now = 0;
    for (int i = 0; i < 3000; ++i) {
        demand(*p, rng.below(p->flatSpaceBytes() / 64) * 64, now);
        p->tick(now);
        now += 7;
    }
    checkBijective(*p);
    drain(now, 120'000'000);
}

namespace {

std::string
sweepName(const ::testing::TestParamInfo<int> &info)
{
    static const char *const names[] = {"rand", "cam", "camp", "pom",
                                        "hma"};
    return names[info.param];
}

} // namespace

INSTANTIATE_TEST_SUITE_P(Policies, BijectionSweep,
                         ::testing::Values(0, 1, 2, 3, 4), sweepName);

// ---- writeback routing ----------------------------------------------------------

TEST_F(PolicyFixture, WritebackGoesToCurrentLocation)
{
    CameoPolicy p(env_, CameoParams{});
    const Addr fm_block = 2_MiB;
    demand(p, fm_block, 0);   // swapped into NM
    drain();
    const uint64_t nm_wb_before = nm_->traffic().write[static_cast<size_t>(
        dram::TrafficClass::Writeback)];
    p.writeback(fm_block, 0, 1'000'000);
    drain(1'000'000);
    const uint64_t nm_wb_after = nm_->traffic().write[static_cast<size_t>(
        dram::TrafficClass::Writeback)];
    EXPECT_EQ(nm_wb_after - nm_wb_before, kSubblockSize);
}

// ---- JoinBarrier -----------------------------------------------------------

TEST(JoinBarrier, FiresAfterAllSignals)
{
    Tick done_at = 0;
    int fired = 0;
    auto barrier = JoinBarrier::create(3, [&](Tick t) {
        done_at = t;
        ++fired;
    });
    auto cb1 = barrier->arm();
    auto cb2 = barrier->arm();
    auto cb3 = barrier->arm();
    cb1(10);
    cb3(50);
    EXPECT_EQ(fired, 0);
    cb2(30);
    EXPECT_EQ(fired, 1);
    // Completion carries the latest constituent tick.
    EXPECT_EQ(done_at, 50u);
}

TEST(JoinBarrier, SingleShot)
{
    int fired = 0;
    auto barrier = JoinBarrier::create(1, [&](Tick) { ++fired; });
    barrier->arm()(5);
    EXPECT_EQ(fired, 1);
}

// ---- traffic-class accounting across schemes -------------------------------------

TEST_F(PolicyFixture, CameoSwapTrafficIsMigrationClass)
{
    CameoPolicy p(env_, CameoParams{});
    demand(p, 2_MiB, 0);
    drain();
    const auto mig = static_cast<size_t>(dram::TrafficClass::Migration);
    // Swap writes: 64B+LLT into NM and 64B back to FM.
    EXPECT_GE(nm_->traffic().write[mig], kSubblockSize);
    EXPECT_GE(fm_->traffic().write[mig], kSubblockSize);
}

TEST_F(PolicyFixture, PomMigrationTrafficAccounted)
{
    PomPolicy p(env_, eagerPom());
    demand(p, 2_MiB, 0);
    demand(p, 2_MiB, 100);
    drain();
    const auto mig = static_cast<size_t>(dram::TrafficClass::Migration);
    // A full 2KB swap: >= 2KB read from and written to each device.
    EXPECT_GE(nm_->traffic().read[mig], kLargeBlockSize);
    EXPECT_GE(nm_->traffic().write[mig], kLargeBlockSize);
    EXPECT_GE(fm_->traffic().read[mig], kLargeBlockSize);
    EXPECT_GE(fm_->traffic().write[mig], kLargeBlockSize);
}

TEST_F(PolicyFixture, DemandBytesSeparateFromMigration)
{
    CameoPolicy p(env_, CameoParams{});
    demand(p, 2_MiB, 0);
    drain();
    // Exactly one 64B demand read reached FM; swap traffic must not
    // pollute the demand class (Figure 8 depends on this separation).
    const auto d = static_cast<size_t>(dram::TrafficClass::Demand);
    EXPECT_EQ(fm_->traffic().read[d], kSubblockSize);
    EXPECT_EQ(fm_->traffic().write[d], 0u);
}

TEST_F(PolicyFixture, HmaMigrationIsBackgroundTraffic)
{
    HmaPolicy p(env_, fastHma());
    const Addr hot = 2_MiB;
    for (int i = 0; i < 10; ++i)
        demand(p, hot, i);
    for (Tick t = 0; t <= 10'000; ++t)
        p.tick(t);
    drain(10'001, 40'000'000);
    const auto mig = static_cast<size_t>(dram::TrafficClass::Migration);
    const uint64_t total_mig = nm_->traffic().read[mig] +
        nm_->traffic().write[mig] + fm_->traffic().read[mig] +
        fm_->traffic().write[mig];
    // One page swap = 2KB in each direction on each device.
    EXPECT_GE(total_mig, 4 * kLargeBlockSize);
}
