/**
 * @file
 * Statistical sampling subsystem tests (src/sample/): blob
 * serialization, checkpoint round-trips, replay determinism, early
 * stopping, the HMA fallback, and the headline differential property —
 * sampled metrics agree with a full detailed run within the reported
 * 95% confidence intervals.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/serialize.hh"
#include "core/silc_fm.hh"
#include "sample/checkpoint.hh"
#include "sample/sampling.hh"
#include "sim/experiment.hh"
#include "sim/system.hh"

using namespace silc;
using namespace silc::sim;
using namespace silc::sample;

namespace {

SystemConfig
sampleConfig(const std::string &workload, PolicyKind kind,
             uint32_t cores = 4, uint64_t instr = 400'000)
{
    ExperimentOptions opts;
    opts.cores = cores;
    opts.instructions_per_core = instr;
    return makeConfig(workload, kind, opts);
}

/** The locally validated smoke fixture: windows stay inside the CI. */
SamplingConfig
smokeSamplingConfig()
{
    SamplingConfig s;
    s.period = 50'000;
    s.window = 5'000;
    s.warmup = 5'000;
    s.threads = 2;
    return s;
}

} // namespace

// ---- Blob serialization ------------------------------------------------

TEST(Serialize, RoundTrip)
{
    BlobWriter w;
    w.section("TEST");
    w.putU8(0xAB);
    w.putU32(0xDEADBEEF);
    w.putU64(0x0123456789ABCDEFull);
    w.putI64(-42);
    w.putBool(true);
    w.putF64(3.25);
    w.putStr("hello");

    BlobReader r(w.data());
    r.expect("TEST");
    EXPECT_EQ(r.getU8(), 0xAB);
    EXPECT_EQ(r.getU32(), 0xDEADBEEFu);
    EXPECT_EQ(r.getU64(), 0x0123456789ABCDEFull);
    EXPECT_EQ(r.getI64(), -42);
    EXPECT_TRUE(r.getBool());
    EXPECT_EQ(r.getF64(), 3.25);
    EXPECT_EQ(r.getStr(), "hello");
    r.done();
    EXPECT_EQ(r.remaining(), 0u);
}

TEST(SerializeDeath, TruncationDies)
{
    BlobWriter w;
    w.putU32(7);
    BlobReader r(w.data());
    (void)r.getU32();
    EXPECT_DEATH((void)r.getU64(), "truncated");
}

TEST(SerializeDeath, SectionMismatchDies)
{
    BlobWriter w;
    w.section("AAAA");
    BlobReader r(w.data());
    EXPECT_DEATH(r.expect("BBBB"), "section");
}

TEST(SerializeDeath, TrailingBytesDie)
{
    BlobWriter w;
    w.putU32(7);
    w.putU32(9);
    BlobReader r(w.data());
    (void)r.getU32();
    EXPECT_DEATH(r.done(), "trailing");
}

// ---- SamplingConfig ----------------------------------------------------

TEST(SamplingConfigDeath, WindowMustFitPeriod)
{
    SamplingConfig s;
    s.period = 10'000;
    s.warmup = 6'000;
    s.window = 5'000;
    EXPECT_DEATH(s.validate(), "fit within the period");
}

TEST(SamplingConfig, DefaultsValidate)
{
    SamplingConfig s;
    s.validate();
    EXPECT_EQ(s.period, 200'000u);
}

// ---- Student's t -------------------------------------------------------

TEST(StatsAggregatorTest, TCritical95)
{
    EXPECT_NEAR(StatsAggregator::tCritical95(1), 12.706, 1e-3);
    EXPECT_NEAR(StatsAggregator::tCritical95(5), 2.571, 1e-3);
    EXPECT_NEAR(StatsAggregator::tCritical95(30), 2.042, 1e-3);
    EXPECT_NEAR(StatsAggregator::tCritical95(100), 1.96, 1e-3);
}

TEST(StatsAggregatorTest, MeanAndCiHandChecked)
{
    StatsAggregator agg;
    for (double v : {1.0, 2.0, 3.0, 4.0}) {
        WindowSample s;
        s.ipc = v;
        agg.add(s);
    }
    const MetricEstimate e = agg.estimate("ipc");
    EXPECT_EQ(e.n, 4u);
    EXPECT_DOUBLE_EQ(e.mean, 2.5);
    // s = sqrt(5/3), half = t(3) * s / 2 = 3.182 * 0.6455
    EXPECT_NEAR(e.ci_half, 3.182 * std::sqrt(5.0 / 3.0) / 2.0, 1e-3);
}

TEST(StatsAggregatorTest, SingleWindowHasZeroCi)
{
    StatsAggregator agg;
    WindowSample s;
    s.ipc = 1.5;
    agg.add(s);
    const MetricEstimate e = agg.estimate("ipc");
    EXPECT_DOUBLE_EQ(e.mean, 1.5);
    EXPECT_DOUBLE_EQ(e.ci_half, 0.0);
}

// ---- Checkpoints -------------------------------------------------------

TEST(CheckpointTest, RoundTripIsByteExact)
{
    const SystemConfig cfg = sampleConfig("mcf", PolicyKind::SilcFm, 2,
                                          100'000);

    System warm(cfg);
    warm.setFunctionalMode(true);
    warm.setPerCoreBudget(30'000);
    ASSERT_TRUE(warm.runToBudget());
    const Checkpoint a = capture(warm, 30'000);

    // Restoring into a fresh system and re-capturing must reproduce the
    // blob byte for byte: nothing outside the checkpoint affects it.
    System fresh(cfg);
    restore(fresh, a);
    const Checkpoint b = capture(fresh, 30'000);
    EXPECT_EQ(a.blob, b.blob);
    EXPECT_GT(a.blob.size(), 0u);
}

TEST(CheckpointTest, ReplayFromCheckpointIsDeterministic)
{
    const SystemConfig cfg = sampleConfig("milc", PolicyKind::SilcFm, 2,
                                          100'000);

    System warm(cfg);
    warm.setFunctionalMode(true);
    warm.setPerCoreBudget(40'000);
    ASSERT_TRUE(warm.runToBudget());
    const Checkpoint ckpt = capture(warm, 40'000);

    auto replay = [&](uint64_t budget) {
        SystemConfig rcfg = cfg;
        rcfg.instructions_per_core = budget;
        System sys(rcfg);
        restore(sys, ckpt);
        EXPECT_TRUE(sys.runToBudget());
        return std::make_pair(sys.currentCycle(),
                              sys.hierarchy().llcMisses());
    };
    const auto a = replay(10'000);
    const auto b = replay(10'000);
    EXPECT_EQ(a.first, b.first);
    EXPECT_EQ(a.second, b.second);
}

TEST(CheckpointDeath, PolicyMismatchDies)
{
    const SystemConfig cfg = sampleConfig("mcf", PolicyKind::SilcFm, 2,
                                          100'000);
    System warm(cfg);
    warm.setFunctionalMode(true);
    warm.setPerCoreBudget(10'000);
    ASSERT_TRUE(warm.runToBudget());
    const Checkpoint ckpt = capture(warm, 10'000);

    SystemConfig other = sampleConfig("mcf", PolicyKind::Cameo, 2,
                                      100'000);
    System victim(other);
    EXPECT_DEATH(restore(victim, ckpt), "does not match");
}

// ---- Functional warming ------------------------------------------------

TEST(FunctionalWarming, RunsFasterShapeAndFootprintMatch)
{
    const SystemConfig cfg = sampleConfig("mcf", PolicyKind::SilcFm, 2,
                                          100'000);

    System detailed(cfg);
    const SimResult full = detailed.run();

    System functional(cfg);
    functional.setFunctionalMode(true);
    ASSERT_TRUE(functional.runToBudget());
    const SimResult warm = functional.collectResult(true);

    // Functional warming executes the same instruction stream against
    // the same translation layer: the touched-page footprint is exact.
    EXPECT_EQ(warm.footprint_pages, full.footprint_pages);
    EXPECT_EQ(warm.instructions, full.instructions);
    // No DRAM traffic may be generated while warming.
    EXPECT_EQ(warm.nm_total_bytes + warm.fm_total_bytes, 0u);
    // Warming finishes in far fewer ticks than detailed execution.
    EXPECT_LT(warm.ticks, full.ticks / 2);
}

// ---- End-to-end sampling ----------------------------------------------

TEST(SamplingEndToEnd, SampledMetricsWithinReportedCi)
{
    const SystemConfig cfg = sampleConfig("mcf", PolicyKind::SilcFm);

    System detailed(cfg);
    const SimResult full = detailed.run();
    const auto *fullp = dynamic_cast<const core::SilcFmPolicy *>(
        &detailed.policyRef());
    ASSERT_NE(fullp, nullptr);
    const double full_swaps_per_kilo = 1000.0 *
        static_cast<double>(fullp->subblockSwaps()) /
        static_cast<double>(full.instructions);
    const double full_fm_p50 =
        detailed.fm().readDelayHistogram().percentile(0.50);
    const double full_fm_p95 =
        detailed.fm().readDelayHistogram().percentile(0.95);

    SamplingController ctl(cfg, smokeSamplingConfig());
    const SimResult sampled = ctl.run();
    ASSERT_NE(sampled.sampling, nullptr);
    const SamplingReport &rep = *sampled.sampling;
    EXPECT_EQ(rep.checkpoints, 8u);
    EXPECT_EQ(rep.windows, 8u);

    const auto within = [&](const char *name, double full_value) {
        const MetricEstimate *e = rep.find(name);
        ASSERT_NE(e, nullptr) << name;
        EXPECT_LE(std::fabs(full_value - e->mean), e->ci_half)
            << name << ": full " << full_value << " vs sampled "
            << e->mean << " +/- " << e->ci_half;
    };
    within("ipc", full.ipc);
    within("mpki", full.mpki);
    within("avg_miss_latency", full.avg_miss_latency);
    within("access_rate", full.access_rate);
    within("swaps_per_kilo", full_swaps_per_kilo);
    within("fm_read_p50", full_fm_p50);
    within("fm_read_p95", full_fm_p95);

    // The synthesized result mirrors the window means.
    EXPECT_DOUBLE_EQ(sampled.ipc, rep.find("ipc")->mean);
    EXPECT_EQ(sampled.instructions, full.instructions);
    EXPECT_GT(sampled.footprint_pages, 0u);
}

TEST(SamplingEndToEnd, DeterministicAcrossPoolWidths)
{
    const SystemConfig cfg = sampleConfig("gcc", PolicyKind::SilcFm, 2,
                                          200'000);
    SamplingConfig a = smokeSamplingConfig();
    a.threads = 1;
    SamplingConfig b = smokeSamplingConfig();
    b.threads = 3;

    const SimResult ra = SamplingController(cfg, a).run();
    const SimResult rb = SamplingController(cfg, b).run();
    ASSERT_NE(ra.sampling, nullptr);
    ASSERT_NE(rb.sampling, nullptr);
    EXPECT_EQ(ra.ticks, rb.ticks);
    EXPECT_EQ(ra.llc_misses, rb.llc_misses);
    EXPECT_DOUBLE_EQ(ra.ipc, rb.ipc);
    ASSERT_EQ(ra.sampling->metrics.size(), rb.sampling->metrics.size());
    for (size_t i = 0; i < ra.sampling->metrics.size(); ++i) {
        const MetricEstimate &ma = ra.sampling->metrics[i];
        const MetricEstimate &mb = rb.sampling->metrics[i];
        EXPECT_EQ(ma.name, mb.name);
        EXPECT_DOUBLE_EQ(ma.mean, mb.mean);
        EXPECT_DOUBLE_EQ(ma.ci_half, mb.ci_half);
    }
}

TEST(SamplingEndToEnd, EarlyStopAtBatchBoundary)
{
    const SystemConfig cfg = sampleConfig("mcf", PolicyKind::SilcFm);
    SamplingConfig s = smokeSamplingConfig();
    s.min_windows = 1;
    s.ci_target = 10.0; // trivially satisfied after the first batch
    const SimResult r = SamplingController(cfg, s).run();
    ASSERT_NE(r.sampling, nullptr);
    EXPECT_TRUE(r.sampling->early_stopped);
    EXPECT_EQ(r.sampling->windows, 4u); // one kBatch batch
    EXPECT_EQ(r.sampling->checkpoints, 8u);
}

TEST(SamplingEndToEnd, HmaFallsBackToFullRun)
{
    const SystemConfig cfg = sampleConfig("mcf", PolicyKind::Hma, 2,
                                          60'000);
    const SimResult r = runMaybeSampled(cfg, smokeSamplingConfig());
    EXPECT_EQ(r.sampling, nullptr);
    EXPECT_GT(r.ipc, 0.0);
    EXPECT_FALSE(r.hit_tick_limit);
    // And the sampled path still works for supported policies.
    EXPECT_TRUE(System(cfg).policyRef().supportsSampling() == false);
}

TEST(SamplingEndToEnd, SupportedPolicyMatrix)
{
    const auto supports = [](PolicyKind k) {
        System sys(sampleConfig("mcf", k, 2, 50'000));
        return sys.policyRef().supportsSampling();
    };
    EXPECT_TRUE(supports(PolicyKind::SilcFm));
    EXPECT_TRUE(supports(PolicyKind::FmOnly));
    EXPECT_TRUE(supports(PolicyKind::Random));
    EXPECT_TRUE(supports(PolicyKind::Cameo));
    EXPECT_TRUE(supports(PolicyKind::CameoP));
    EXPECT_TRUE(supports(PolicyKind::Pom));
    EXPECT_FALSE(supports(PolicyKind::Hma));
}

// ---- Resumable run loop ------------------------------------------------

TEST(RunToBudget, PausesAtBudgetAndResumes)
{
    const SystemConfig cfg = sampleConfig("mcf", PolicyKind::SilcFm, 2,
                                          40'000);
    System sys(cfg);
    sys.setPerCoreBudget(10'000);
    ASSERT_TRUE(sys.runToBudget());
    const Tick t1 = sys.currentCycle();
    EXPECT_EQ(sys.core(0).retired(), 10'000u);
    EXPECT_EQ(sys.core(1).retired(), 10'000u);

    sys.setPerCoreBudget(40'000);
    ASSERT_TRUE(sys.runToBudget());
    EXPECT_GT(sys.currentCycle(), t1);
    EXPECT_EQ(sys.core(0).retired(), 40'000u);
    const SimResult r = sys.collectResult(true);
    EXPECT_EQ(r.instructions, 80'000u);
    EXPECT_FALSE(r.hit_tick_limit);
}
