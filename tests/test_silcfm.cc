/**
 * @file
 * Unit and property tests for SILC-FM: the metadata structures
 * (set-associative frames, bit vector history table, predictor, aging
 * counters, bandwidth balancer) and the policy itself — every Table I
 * scenario, interleaved swapping, restore, locking/unlocking,
 * associativity, bypassing and mapping integrity.
 */

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "common/rng.hh"
#include "core/activity_monitor.hh"
#include "core/bandwidth_balancer.hh"
#include "core/bitvector_table.hh"
#include "core/predictor.hh"
#include "core/set_metadata.hh"
#include "core/silc_fm.hh"
#include "dram/dram_system.hh"

using namespace silc;
using namespace silc::core;
using silc::policy::Location;
using silc::policy::PolicyEnv;

// ---- NmMetadata ------------------------------------------------------------

TEST(SetMetadata, GeometryAndMapping)
{
    NmMetadata meta(512, 4);
    EXPECT_EQ(meta.frames(), 512u);
    EXPECT_EQ(meta.numSets(), 128u);
    EXPECT_EQ(meta.setOf(700), 700u % 128);
    EXPECT_EQ(meta.frameOf(3, 2), 3u * 4 + 2);
    EXPECT_EQ(meta.setOfFrame(14), 3u);
    EXPECT_EQ(meta.wayOfFrame(14), 2u);
}

TEST(SetMetadata, FindWayMatchesRemap)
{
    NmMetadata meta(16, 4);
    meta.meta(meta.frameOf(2, 1)).remap = 1000;
    EXPECT_EQ(meta.findWay(2, 1000), 1);
    EXPECT_EQ(meta.findWay(2, 999), -1);
    EXPECT_EQ(meta.findWay(1, 1000), -1);
}

TEST(SetMetadata, VictimPrefersInvalidThenLru)
{
    NmMetadata meta(8, 4);
    // Fill ways 0..2, leave way 3 invalid.
    for (uint32_t w = 0; w < 3; ++w) {
        meta.meta(meta.frameOf(0, w)).remap = 100 + w;
        meta.touch(meta.frameOf(0, w));
    }
    EXPECT_EQ(meta.victimWay(0), 3);

    // All valid: LRU (way 1 touched first after refresh of others).
    meta.meta(meta.frameOf(0, 3)).remap = 103;
    meta.touch(meta.frameOf(0, 3));
    meta.touch(meta.frameOf(0, 0));
    meta.touch(meta.frameOf(0, 2));
    EXPECT_EQ(meta.victimWay(0), 1);
}

TEST(SetMetadata, LockedWaysNeverVictims)
{
    NmMetadata meta(4, 4);
    for (uint32_t w = 0; w < 4; ++w) {
        WayMeta &m = meta.meta(meta.frameOf(0, w));
        m.remap = 100 + w;
        m.locked = true;
    }
    EXPECT_EQ(meta.victimWay(0), -1);
    meta.meta(meta.frameOf(0, 2)).locked = false;
    EXPECT_EQ(meta.victimWay(0), 2);
    EXPECT_EQ(meta.lockedWays(), 3u);
}

TEST(SetMetadata, AgingHalvesCounters)
{
    NmMetadata meta(4, 2);
    meta.meta(0).nm_counter = 40;
    meta.meta(0).fm_counter = 7;
    meta.ageCounters();
    EXPECT_EQ(meta.meta(0).nm_counter, 20);
    EXPECT_EQ(meta.meta(0).fm_counter, 3);
}

TEST(SetMetadata, DirectMappedDegenerate)
{
    NmMetadata meta(8, 1);
    EXPECT_EQ(meta.numSets(), 8u);
    meta.meta(5).remap = 2048 + 5;
    EXPECT_EQ(meta.findWay(5, 2048 + 5), 0);
}

TEST(SetMetadata, BadGeometryIsFatal)
{
    EXPECT_DEATH(NmMetadata(7, 4), "divisible");
    EXPECT_DEATH(NmMetadata(8, 0), "associativity");
}

// ---- BitVectorTable -----------------------------------------------------------

TEST(BitVectorTable, SaveAndRecall)
{
    BitVectorTable table(1024);
    SubblockVector bv;
    bv.set(1);
    bv.set(17);
    table.save(0x400, 0x10000, bv);
    EXPECT_EQ(table.lookup(0x400, 0x10000), bv);
    EXPECT_EQ(table.saves(), 1u);
    EXPECT_EQ(table.hits(), 1u);
}

TEST(BitVectorTable, MissReturnsEmpty)
{
    BitVectorTable table(1024);
    EXPECT_TRUE(table.lookup(0x999, 0x888).none());
    EXPECT_EQ(table.hits(), 0u);
    EXPECT_EQ(table.lookups(), 1u);
}

TEST(BitVectorTable, EmptyVectorsNotStored)
{
    BitVectorTable table(1024);
    table.save(0x400, 0x10000, SubblockVector{});
    EXPECT_EQ(table.saves(), 0u);
    EXPECT_TRUE(table.lookup(0x400, 0x10000).none());
}

TEST(BitVectorTable, DistinctSignaturesDistinctSlots)
{
    BitVectorTable table(1u << 16);
    SubblockVector a, b;
    a.set(0);
    b.set(31);
    table.save(0x400, 0x10000, a);
    table.save(0x404, 0x20000, b);
    EXPECT_EQ(table.lookup(0x400, 0x10000), a);
    EXPECT_EQ(table.lookup(0x404, 0x20000), b);
}

TEST(BitVectorTable, PowerOfTwoEnforced)
{
    EXPECT_DEATH(BitVectorTable(1000), "power of two");
}

TEST(BitVectorTable, ResetClears)
{
    BitVectorTable table(256);
    SubblockVector bv;
    bv.set(4);
    table.save(1, 2, bv);
    table.reset();
    EXPECT_TRUE(table.lookup(1, 2).none());
    EXPECT_EQ(table.saves(), 0u);
}

// ---- WayPredictor ----------------------------------------------------------------

TEST(Predictor, ColdEntriesInvalid)
{
    WayPredictor pred(4096);
    EXPECT_FALSE(pred.predict(0x400, 0x123456).valid);
}

TEST(Predictor, RemembersLastOutcome)
{
    WayPredictor pred(4096);
    pred.update(0x400, 0x10000, 2, true);
    WayPrediction p = pred.predict(0x400, 0x10000);
    EXPECT_TRUE(p.valid);
    EXPECT_EQ(p.way, 2);
    EXPECT_TRUE(p.in_fm);
    pred.update(0x400, 0x10000, 1, false);
    p = pred.predict(0x400, 0x10000);
    EXPECT_EQ(p.way, 1);
    EXPECT_FALSE(p.in_fm);
}

TEST(Predictor, SamePageSharesEntry)
{
    // The model indexes by large block, so two subblocks of one page
    // train the same entry.
    WayPredictor pred(4096);
    pred.update(0x400, 0x10000, 3, false);
    WayPrediction p = pred.predict(0x400, 0x10040);
    EXPECT_TRUE(p.valid);
    EXPECT_EQ(p.way, 3);
}

TEST(Predictor, AccuracyBookkeeping)
{
    WayPredictor pred(4096);
    pred.recordOutcome(true, true);
    pred.recordOutcome(false, true);
    EXPECT_EQ(pred.predictions(), 2u);
    EXPECT_EQ(pred.wayHits(), 1u);
    EXPECT_EQ(pred.locationHits(), 2u);
}

// ---- activity monitor ----------------------------------------------------------

TEST(ActivityMonitor, SaturatingIncrement)
{
    AgingCounterOps ops(6);
    EXPECT_EQ(ops.max(), 63);
    EXPECT_EQ(ops.increment(0), 1);
    EXPECT_EQ(ops.increment(62), 63);
    EXPECT_EQ(ops.increment(63), 63);
}

TEST(ActivityMonitor, AgingShiftsRight)
{
    EXPECT_EQ(AgingCounterOps::age(63), 31);
    EXPECT_EQ(AgingCounterOps::age(1), 0);
}

TEST(ActivityMonitor, ScheduleFiresEveryInterval)
{
    AgingSchedule sched(100);
    int sweeps = 0;
    for (int i = 0; i < 1000; ++i) {
        if (sched.onAccess())
            ++sweeps;
    }
    EXPECT_EQ(sweeps, 10);
    EXPECT_EQ(sched.sweeps(), 10u);
    EXPECT_EQ(sched.accesses(), 1000u);
}

// ---- bandwidth balancer -----------------------------------------------------------

TEST(Balancer, EngagesAboveTarget)
{
    BandwidthBalancer bal(true, 0.8, 100);
    for (int i = 0; i < 100; ++i)
        bal.record(i < 90);   // 90% from NM
    EXPECT_TRUE(bal.bypassing());
    EXPECT_DOUBLE_EQ(bal.lastWindowRate(), 0.9);
}

TEST(Balancer, ReleasesBelowTarget)
{
    BandwidthBalancer bal(true, 0.8, 100);
    for (int i = 0; i < 100; ++i)
        bal.record(i < 90);
    ASSERT_TRUE(bal.bypassing());
    for (int i = 0; i < 100; ++i)
        bal.record(i < 50);
    EXPECT_FALSE(bal.bypassing());
}

TEST(Balancer, ExactTargetDoesNotBypass)
{
    BandwidthBalancer bal(true, 0.8, 100);
    for (int i = 0; i < 100; ++i)
        bal.record(i < 80);
    EXPECT_FALSE(bal.bypassing());
}

TEST(Balancer, DisabledNeverBypasses)
{
    BandwidthBalancer bal(false, 0.8, 10);
    for (int i = 0; i < 1000; ++i)
        bal.record(true);
    EXPECT_FALSE(bal.bypassing());
    EXPECT_EQ(bal.windowsElapsed(), 0u);
}

// ---- SilcFmPolicy ------------------------------------------------------------------

namespace {

class SilcFixture : public ::testing::Test
{
  protected:
    SilcFixture()
    {
        dram::DramTimingParams nm_p = dram::hbm2Params();
        dram::DramTimingParams fm_p = dram::ddr3Params();
        nm_ = std::make_unique<dram::DramSystem>(nm_p, 1_MiB, events_);
        fm_ = std::make_unique<dram::DramSystem>(fm_p, 4_MiB, events_);
        env_.nm = nm_.get();
        env_.fm = fm_.get();
        env_.events = &events_;
    }

    SilcFmParams
    defaultParams()
    {
        SilcFmParams p;
        p.hot_threshold = 8;          // easy to reach in unit tests
        p.aging_interval = 1'000'000; // effectively off unless wanted
        p.bypass_window = 1u << 30;   // effectively off unless wanted
        return p;
    }

    std::unique_ptr<SilcFmPolicy>
    make(SilcFmParams p)
    {
        return std::make_unique<SilcFmPolicy>(env_, p);
    }

    Tick
    demand(SilcFmPolicy &policy, Addr a, Tick now, Addr pc = 0x400)
    {
        // The completion callback outlives this frame (it fires from
        // the DRAM event path during drain()), so the landing slot
        // must be owned by the callback, not a captured stack local.
        auto done = std::make_shared<Tick>(kTickNever);
        policy.demandAccess(a, false, 0, pc,
                            [done](Tick t) { *done = t; }, now);
        return *done;
    }

    void
    drain(Tick start = 0)
    {
        for (Tick t = start; t < start + 40'000'000; ++t) {
            nm_->tick(t);
            fm_->tick(t);
            events_.runDue(t);
            if (nm_->idle() && fm_->idle() && events_.empty())
                return;
        }
        FAIL() << "DRAM did not drain";
    }

    void
    checkBijective(const SilcFmPolicy &policy)
    {
        std::set<std::pair<bool, Addr>> seen;
        for (Addr a = 0; a < policy.flatSpaceBytes();
             a += kSubblockSize) {
            const Location loc = policy.locate(a);
            ASSERT_TRUE(
                seen.insert({loc.in_nm, loc.device_addr}).second)
                << "collision at flat " << a;
        }
    }

    /** First FM page that maps to set 0 (page id). */
    uint64_t
    fmPageInSet(const SilcFmPolicy &p, uint64_t set, int nth = 0) const
    {
        const uint64_t nm_pages = 1_MiB / kLargeBlockSize;
        const uint64_t sets = p.metadata().numSets();
        uint64_t page = nm_pages;
        int found = 0;
        while (true) {
            if (page % sets == set) {
                if (found == nth)
                    return page;
                ++found;
            }
            ++page;
        }
    }

    EventQueue events_;
    std::unique_ptr<dram::DramSystem> nm_;
    std::unique_ptr<dram::DramSystem> fm_;
    PolicyEnv env_;
};

} // namespace

TEST_F(SilcFixture, FlatSpaceIsNmPlusFm)
{
    auto p = make(defaultParams());
    EXPECT_EQ(p->flatSpaceBytes(), 5_MiB);
    EXPECT_EQ(p->metadata().frames(), 512u);
    EXPECT_EQ(p->metadata().numSets(), 128u);
}

// Table I row 4 ("mismatch, 0, yes"): untouched native data serviced
// from NM.
TEST_F(SilcFixture, TableI_NativeResidentServicedFromNm)
{
    auto p = make(defaultParams());
    const Addr native = 3 * kLargeBlockSize + 2 * kSubblockSize;
    EXPECT_TRUE(p->locate(native).in_nm);
    demand(*p, native, 0);
    EXPECT_EQ(p->nmServiced(), 1u);
    EXPECT_EQ(p->subblockSwaps(), 0u);
    drain();
}

// Table I row 2 ("match, 0"): FM page has a way but the subblock is
// still in FM; it is swapped in.
TEST_F(SilcFixture, TableI_RemapMatchBitClearSwapsIn)
{
    auto p = make(defaultParams());
    const uint64_t page = fmPageInSet(*p, 0);
    const Addr a = page * kLargeBlockSize;
    const Addr b = a + kSubblockSize;
    demand(*p, a, 0);               // allocates a way, swaps subblock 0
    EXPECT_TRUE(p->locate(a).in_nm);
    EXPECT_FALSE(p->locate(b).in_nm);
    demand(*p, b, 100);             // remap match, bit clear
    EXPECT_TRUE(p->locate(b).in_nm);
    EXPECT_EQ(p->subblockSwaps(), 2u);
    checkBijective(*p);
    drain();
}

// Table I row 1 ("match, 1"): swapped-in subblock serviced from NM.
TEST_F(SilcFixture, TableI_RemapMatchBitSetServicedFromNm)
{
    auto p = make(defaultParams());
    const uint64_t page = fmPageInSet(*p, 0);
    const Addr a = page * kLargeBlockSize;
    demand(*p, a, 0);
    const uint64_t swaps = p->subblockSwaps();
    demand(*p, a, 100);
    EXPECT_EQ(p->subblockSwaps(), swaps);   // no new movement
    EXPECT_EQ(p->nmServiced(), 1u);
    drain();
}

// Table I row 3 ("mismatch, 1, NM address"): the native subblock was
// displaced; servicing it swaps it back.
TEST_F(SilcFixture, TableI_DisplacedNativeSwapsBack)
{
    auto p = make(defaultParams());
    const uint64_t fm_page = fmPageInSet(*p, 0);
    const Addr fm_a = fm_page * kLargeBlockSize;
    demand(*p, fm_a, 0);
    // The way chosen is some frame in set 0; its native page is the
    // frame id itself.
    const int way = p->metadata().findWay(0, fm_page);
    ASSERT_GE(way, 0);
    const uint64_t frame = p->metadata().frameOf(0, way);
    const Addr native = frame * kLargeBlockSize;   // same offset 0
    EXPECT_FALSE(p->locate(native).in_nm);   // displaced to FM
    demand(*p, native, 100);
    EXPECT_TRUE(p->locate(native).in_nm);    // swapped back
    EXPECT_FALSE(p->locate(fm_a).in_nm);     // FM subblock went home
    checkBijective(*p);
    drain();
}

// Table I rows 5/6 ("mismatch, FM address"): a different FM page claims
// the set; the current interleave is restored first.
TEST_F(SilcFixture, TableI_ConflictRestoresThenSwaps)
{
    SilcFmParams params = defaultParams();
    params.associativity = 1;   // force the conflict
    auto p = make(params);
    const uint64_t sets = p->metadata().numSets();
    const uint64_t page_a = fmPageInSet(*p, 7, 0);
    const uint64_t page_b = page_a + sets;   // same set, different page
    const Addr a = page_a * kLargeBlockSize;
    const Addr b = page_b * kLargeBlockSize + 3 * kSubblockSize;
    demand(*p, a, 0);
    ASSERT_TRUE(p->locate(a).in_nm);
    demand(*p, b, 100);
    EXPECT_EQ(p->restores(), 1u);
    EXPECT_FALSE(p->locate(a).in_nm);   // restored home
    EXPECT_TRUE(p->locate(b).in_nm);
    checkBijective(*p);
    drain();
}

TEST_F(SilcFixture, AssociativityAvoidsConflictRestore)
{
    SilcFmParams params = defaultParams();
    params.associativity = 4;
    auto p = make(params);
    const uint64_t sets = p->metadata().numSets();
    const uint64_t page_a = fmPageInSet(*p, 7, 0);
    // Four pages of the same set coexist in four ways.
    for (int i = 0; i < 4; ++i) {
        demand(*p, (page_a + i * sets) * kLargeBlockSize,
               static_cast<Tick>(i) * 100);
    }
    EXPECT_EQ(p->restores(), 0u);
    for (int i = 0; i < 4; ++i) {
        EXPECT_TRUE(
            p->locate((page_a + i * sets) * kLargeBlockSize).in_nm);
    }
    checkBijective(*p);
    drain();
}

TEST_F(SilcFixture, HotBlockLocksAndPinsFully)
{
    SilcFmParams params = defaultParams();
    params.hot_threshold = 4;
    params.lock_full_fetch_min_used = 1;   // paper semantics: full remap
    auto p = make(params);
    const uint64_t page = fmPageInSet(*p, 0);
    // Touch several distinct subblocks so the block is dense enough for
    // the full lock fetch, then cross the threshold.
    for (uint32_t s = 0; s < 10; ++s)
        demand(*p, page * kLargeBlockSize + s * kSubblockSize, s * 50);
    EXPECT_GE(p->locks(), 1u);
    // Fully remapped: every subblock of the page is NM-resident.
    for (uint32_t s = 0; s < kSubblocksPerBlock; ++s) {
        EXPECT_TRUE(
            p->locate(page * kLargeBlockSize + s * kSubblockSize)
                .in_nm);
    }
    EXPECT_TRUE(p->verifyIntegrity());
    checkBijective(*p);
    drain();
}

TEST_F(SilcFixture, SparseHotBlockPinsWithoutFullFetch)
{
    SilcFmParams params = defaultParams();
    params.hot_threshold = 4;
    params.lock_full_fetch_min_used = 8;
    auto p = make(params);
    const uint64_t page = fmPageInSet(*p, 0);
    // Hammer a single subblock: hot but sparse.
    for (int i = 0; i < 8; ++i)
        demand(*p, page * kLargeBlockSize, i * 50);
    ASSERT_GE(p->locks(), 1u);
    // Pinned, but only the used subblock is resident.
    EXPECT_TRUE(p->locate(page * kLargeBlockSize).in_nm);
    EXPECT_FALSE(
        p->locate(page * kLargeBlockSize + 5 * kSubblockSize).in_nm);
    EXPECT_TRUE(p->verifyIntegrity());
    drain();
}

TEST_F(SilcFixture, LockedWayResistsConflicts)
{
    SilcFmParams params = defaultParams();
    params.associativity = 1;
    params.hot_threshold = 4;
    auto p = make(params);
    const uint64_t sets = p->metadata().numSets();
    const uint64_t hot = fmPageInSet(*p, 3, 0);
    const uint64_t cold = hot + sets;
    for (uint32_t s = 0; s < 10; ++s)
        demand(*p, hot * kLargeBlockSize + s * kSubblockSize, s * 50);
    ASSERT_GE(p->locks(), 1u);
    // A conflicting page cannot interleave: all ways locked.
    demand(*p, cold * kLargeBlockSize, 1000);
    EXPECT_GE(p->allWaysLockedEvents(), 1u);
    EXPECT_FALSE(p->locate(cold * kLargeBlockSize).in_nm);
    // The hot page is still fully resident.
    EXPECT_TRUE(p->locate(hot * kLargeBlockSize).in_nm);
    drain();
}

TEST_F(SilcFixture, AgingUnlocksColdBlocks)
{
    SilcFmParams params = defaultParams();
    params.hot_threshold = 4;
    params.aging_interval = 64;
    auto p = make(params);
    const uint64_t page = fmPageInSet(*p, 0);
    for (uint32_t s = 0; s < 10; ++s)
        demand(*p, page * kLargeBlockSize + s * kSubblockSize, s * 50);
    ASSERT_GE(p->locks(), 1u);
    // Unrelated traffic ages the counters until the lock clears.
    const uint64_t other = fmPageInSet(*p, 5);
    for (int i = 0; i < 400; ++i)
        demand(*p, other * kLargeBlockSize, 1000 + i);
    EXPECT_GE(p->unlocks(), 1u);
    EXPECT_TRUE(p->verifyIntegrity());
    drain();
}

TEST_F(SilcFixture, NativeHotPageLocksWithoutRemap)
{
    SilcFmParams params = defaultParams();
    params.hot_threshold = 4;
    auto p = make(params);
    const Addr native = 5 * kLargeBlockSize;
    for (int i = 0; i < 6; ++i)
        demand(*p, native, i * 10);
    EXPECT_GE(p->locks(), 1u);
    EXPECT_TRUE(p->verifyIntegrity());
    drain();
}

TEST_F(SilcFixture, HistoryVectorDrivesBatchFetch)
{
    SilcFmParams params = defaultParams();
    params.associativity = 1;
    params.enable_locking = false;
    params.history_min_bits = 4;
    auto p = make(params);
    const uint64_t sets = p->metadata().numSets();
    const uint64_t page_a = fmPageInSet(*p, 9, 0);
    const uint64_t page_b = page_a + sets;
    // Build a dense usage pattern on page_a.
    for (uint32_t s = 0; s < 6; ++s)
        demand(*p, page_a * kLargeBlockSize + s * kSubblockSize, s * 50);
    // Conflict: page_b evicts page_a, saving its vector.
    demand(*p, page_b * kLargeBlockSize, 1'000);
    ASSERT_GE(p->restores(), 1u);
    // page_a returns: the history vector fetches its subblocks.
    demand(*p, page_a * kLargeBlockSize, 2'000);
    EXPECT_GT(p->historyFetchedSubblocks(), 0u);
    for (uint32_t s = 0; s < 6; ++s) {
        EXPECT_TRUE(
            p->locate(page_a * kLargeBlockSize + s * kSubblockSize)
                .in_nm)
            << "subblock " << s;
    }
    checkBijective(*p);
    drain();
}

TEST_F(SilcFixture, SparseHistoryVectorIsNotFetched)
{
    SilcFmParams params = defaultParams();
    params.associativity = 1;
    params.enable_locking = false;
    params.history_min_bits = 12;
    auto p = make(params);
    const uint64_t sets = p->metadata().numSets();
    const uint64_t page_a = fmPageInSet(*p, 9, 0);
    const uint64_t page_b = page_a + sets;
    for (uint32_t s = 0; s < 3; ++s)   // only 3 bits: sparse
        demand(*p, page_a * kLargeBlockSize + s * kSubblockSize, s * 50);
    demand(*p, page_b * kLargeBlockSize, 1'000);
    demand(*p, page_a * kLargeBlockSize, 2'000);
    EXPECT_EQ(p->historyFetchedSubblocks(), 0u);
    drain();
}

TEST_F(SilcFixture, BypassStopsSwapsAboveTarget)
{
    SilcFmParams params = defaultParams();
    params.bypass_window = 16;
    params.bypass_target = 0.5;
    auto p = make(params);
    // Warm one subblock, then hammer it so the rate crosses the target.
    const uint64_t page = fmPageInSet(*p, 0);
    const Addr hot = page * kLargeBlockSize;
    demand(*p, hot, 0);
    for (int i = 1; i <= 32; ++i)
        demand(*p, hot, i * 10);
    ASSERT_TRUE(p->balancer().bypassing());
    // A new FM page is now serviced from FM without interleaving.
    const uint64_t other = fmPageInSet(*p, 1);
    const uint64_t swaps = p->subblockSwaps();
    demand(*p, other * kLargeBlockSize, 10'000);
    EXPECT_EQ(p->subblockSwaps(), swaps);
    EXPECT_GE(p->bypassedAccesses(), 1u);
    EXPECT_FALSE(p->locate(other * kLargeBlockSize).in_nm);
    drain();
}

TEST_F(SilcFixture, BypassDisabledNeverBypasses)
{
    SilcFmParams params = defaultParams();
    params.enable_bypass = false;
    auto p = make(params);
    const uint64_t page = fmPageInSet(*p, 0);
    for (int i = 0; i < 64; ++i)
        demand(*p, page * kLargeBlockSize, i * 10);
    EXPECT_EQ(p->bypassedAccesses(), 0u);
    drain();
}

TEST_F(SilcFixture, PredictorTrainsOnStableMapping)
{
    auto p = make(defaultParams());
    const uint64_t page = fmPageInSet(*p, 0);
    const Addr a = page * kLargeBlockSize;
    for (int i = 0; i < 20; ++i)
        demand(*p, a, i * 100, 0x777);
    // After the first access the mapping is stable; the page-indexed
    // predictor should be nearly always right.
    EXPECT_GT(p->predictor().locationHits(),
              p->predictor().predictions() * 3 / 4);
    drain();
}

TEST_F(SilcFixture, MetadataTrafficOnDedicatedChannel)
{
    auto p = make(defaultParams());
    demand(*p, 0, 0);
    drain();
    const auto meta = static_cast<size_t>(dram::TrafficClass::Metadata);
    EXPECT_GT(nm_->traffic().read[meta], 0u);
}

TEST_F(SilcFixture, NoMetadataTrafficWhenIdealised)
{
    SilcFmParams params = defaultParams();
    params.model_metadata_traffic = false;
    auto p = make(params);
    demand(*p, 0, 0);
    demand(*p, 2_MiB, 10);
    drain();
    const auto meta = static_cast<size_t>(dram::TrafficClass::Metadata);
    EXPECT_EQ(nm_->traffic().read[meta], 0u);
}

TEST_F(SilcFixture, DemandCompletesWithCallback)
{
    auto p = make(defaultParams());
    Tick done = kTickNever;
    p->demandAccess(0, false, 0, 0x400, [&](Tick t) { done = t; }, 0);
    for (Tick t = 0; t < 1'000'000 && done == kTickNever; ++t) {
        nm_->tick(t);
        fm_->tick(t);
        events_.runDue(t);
    }
    EXPECT_NE(done, kTickNever);
    EXPECT_GT(done, 0u);
}

/** Property sweep: random storms at every associativity keep the
 *  mapping bijective and the metadata invariants intact. */
class SilcStorm : public SilcFixture,
                  public ::testing::WithParamInterface<uint32_t>
{
};

TEST_P(SilcStorm, RandomStormKeepsIntegrity)
{
    SilcFmParams params = defaultParams();
    params.associativity = GetParam();
    params.hot_threshold = 6;
    params.aging_interval = 500;
    params.bypass_window = 256;
    params.history_min_bits = 4;
    auto p = make(params);
    Rng rng(77 + GetParam());
    Tick now = 0;
    for (int i = 0; i < 6000; ++i) {
        const Addr a = rng.below(p->flatSpaceBytes() / 64) * 64;
        demand(*p, a, now, 0x400 + rng.below(32) * 4);
        now += 11;
    }
    EXPECT_TRUE(p->verifyIntegrity());
    checkBijective(*p);
    drain(now);
}

INSTANTIATE_TEST_SUITE_P(Assoc, SilcStorm,
                         ::testing::Values(1u, 2u, 4u, 8u),
                         [](const ::testing::TestParamInfo<uint32_t> &i) {
                             return "way" + std::to_string(i.param);
                         });

/** Zipf-skewed storm: hot pages end up locked, integrity holds. */
TEST_F(SilcFixture, SkewedStormLocksHotPages)
{
    SilcFmParams params = defaultParams();
    params.hot_threshold = 6;
    params.aging_interval = 100'000;
    auto p = make(params);
    Rng rng(5);
    ZipfSampler zipf(p->flatSpaceBytes() / kLargeBlockSize, 1.2);
    Tick now = 0;
    for (int i = 0; i < 20'000; ++i) {
        const uint64_t page = zipf.sample(rng);
        const Addr a = page * kLargeBlockSize +
            rng.below(kSubblocksPerBlock) * kSubblockSize;
        demand(*p, a, now);
        now += 5;
    }
    EXPECT_GT(p->locks(), 0u);
    EXPECT_GT(p->accessRate(), 0.3);
    EXPECT_TRUE(p->verifyIntegrity());
    checkBijective(*p);
    drain(now);
}

// ---- additional policy edges ---------------------------------------------------

TEST_F(SilcFixture, WritebackFollowsCurrentResidency)
{
    auto p = make(defaultParams());
    const uint64_t page = fmPageInSet(*p, 0);
    const Addr a = page * kLargeBlockSize;
    demand(*p, a, 0);   // now NM-resident
    drain();
    const auto wb = static_cast<size_t>(dram::TrafficClass::Writeback);
    const uint64_t nm_before = nm_->traffic().write[wb];
    p->writeback(a, 0, 2'000'000);
    drain(2'000'000);
    EXPECT_EQ(nm_->traffic().write[wb] - nm_before, kSubblockSize);
}

TEST_F(SilcFixture, DirectMappedMatchesPaperExample)
{
    // Figure 2's walkthrough: two subblocks (F, H) of an FM block swap
    // into the corresponding positions of an NM frame; the evicted
    // native subblocks (B, D) are then found at the FM block's home.
    SilcFmParams params = defaultParams();
    params.associativity = 1;
    params.enable_history_fetch = false;
    auto p = make(params);
    const uint64_t fm_page = fmPageInSet(*p, 0);
    const Addr f = fm_page * kLargeBlockSize + 1 * kSubblockSize;
    const Addr h = fm_page * kLargeBlockSize + 3 * kSubblockSize;
    demand(*p, f, 0);
    demand(*p, h, 100);
    EXPECT_TRUE(p->locate(f).in_nm);
    EXPECT_TRUE(p->locate(h).in_nm);
    // Frame 0 hosts the interleave (set 0, way 0); its native page is 0.
    const Addr b = 0 * kLargeBlockSize + 1 * kSubblockSize;
    const Addr d = 0 * kLargeBlockSize + 3 * kSubblockSize;
    EXPECT_FALSE(p->locate(b).in_nm);
    EXPECT_FALSE(p->locate(d).in_nm);
    // Untouched positions of the native page stay put.
    EXPECT_TRUE(p->locate(0).in_nm);
    drain();
}

TEST_F(SilcFixture, NoValidBitNeeded)
{
    // "SILC-FM does not have a valid bit at block granularity because
    // unlike caches, there is always data in NM": every flat address
    // locates somewhere even before any access.
    auto p = make(defaultParams());
    for (Addr a = 0; a < p->flatSpaceBytes(); a += 64 * 1024) {
        const Location loc = p->locate(a);
        if (loc.in_nm)
            EXPECT_LT(loc.device_addr, nm_->capacity());
        else
            EXPECT_LT(loc.device_addr, fm_->capacity());
    }
}

TEST_F(SilcFixture, MetadataAddressesStayInCapacityAcrossSizes)
{
    for (uint32_t assoc : {1u, 2u, 4u}) {
        SilcFmParams params = defaultParams();
        params.associativity = assoc;
        auto p = make(params);
        // Hammer enough distinct sets to cover the metadata range.
        Rng rng(assoc);
        for (int i = 0; i < 500; ++i)
            demand(*p, rng.below(p->flatSpaceBytes() / 64) * 64, i * 3);
        drain();   // would panic inside DramSystem on a range violation
    }
}

TEST_F(SilcFixture, CountersSaturateAtWidth)
{
    SilcFmParams params = defaultParams();
    params.counter_bits = 6;
    params.hot_threshold = 63;
    params.enable_locking = false;
    auto p = make(params);
    const uint64_t page = fmPageInSet(*p, 0);
    for (int i = 0; i < 200; ++i)
        demand(*p, page * kLargeBlockSize, i * 10);
    const int way = p->metadata().findWay(0, page);
    ASSERT_GE(way, 0);
    EXPECT_EQ(p->metadata().meta(p->metadata().frameOf(0, way))
                  .fm_counter,
              63);
    drain();
}

TEST_F(SilcFixture, ThresholdAboveCounterMaxIsFatal)
{
    SilcFmParams params = defaultParams();
    params.counter_bits = 4;   // max 15
    params.hot_threshold = 50;
    EXPECT_DEATH(make(params), "counter maximum");
}

TEST_F(SilcFixture, AccessRateDefinitionMatchesEquationOne)
{
    auto p = make(defaultParams());
    const uint64_t page = fmPageInSet(*p, 0);
    demand(*p, 0, 0);                          // NM native
    demand(*p, page * kLargeBlockSize, 10);    // FM (miss, swaps)
    demand(*p, page * kLargeBlockSize, 20);    // NM (swapped)
    EXPECT_EQ(p->demandRequests(), 3u);
    EXPECT_EQ(p->nmServiced(), 2u);
    EXPECT_NEAR(p->accessRate(), 2.0 / 3.0, 1e-12);
    drain();
}

// ---- Figure 3-style associativity + locking interplay ---------------------------

TEST_F(SilcFixture, LockedAndUnlockedCoexistInOneSet)
{
    // Figure 3 of the paper: a locked hot page occupies one way while
    // unlocked pages keep interleaving through the remaining ways.
    SilcFmParams params = defaultParams();
    params.associativity = 4;
    params.hot_threshold = 4;
    params.lock_full_fetch_min_used = 1;
    auto p = make(params);
    const uint64_t sets = p->metadata().numSets();
    const uint64_t hot = fmPageInSet(*p, 2, 0);

    for (uint32_t s = 0; s < 6; ++s)
        demand(*p, hot * kLargeBlockSize + s * kSubblockSize, s * 20);
    ASSERT_GE(p->locks(), 1u);

    // Three more pages of the same set still get ways.
    for (int i = 1; i <= 3; ++i) {
        const uint64_t page = hot + i * sets;
        demand(*p, page * kLargeBlockSize, 1000 + i * 50);
        EXPECT_TRUE(p->locate(page * kLargeBlockSize).in_nm) << i;
    }
    // The hot page is untouched by the newcomers.
    EXPECT_TRUE(p->locate(hot * kLargeBlockSize).in_nm);
    EXPECT_TRUE(p->verifyIntegrity());
    checkBijective(*p);
    drain();
}

TEST_F(SilcFixture, BypassKeepsResidentBlocksServicedFromNm)
{
    // Section III-E: while bypassing, already-interleaved blocks keep
    // operating from NM; only new swap-ins stop.
    SilcFmParams params = defaultParams();
    params.bypass_window = 8;
    params.bypass_target = 0.4;
    auto p = make(params);
    const uint64_t page = fmPageInSet(*p, 0);
    const Addr hot = page * kLargeBlockSize;
    demand(*p, hot, 0);
    for (int i = 1; i <= 16; ++i)
        demand(*p, hot, i * 10);
    ASSERT_TRUE(p->balancer().bypassing());
    const uint64_t nm_before = p->nmServiced();
    demand(*p, hot, 1000);   // resident: still NM
    EXPECT_EQ(p->nmServiced(), nm_before + 1);
    drain();
}

TEST_F(SilcFixture, LockEvictionUnderFullSetPressure)
{
    // Every way of a set locked, conflicting pages bounced; an aging
    // sweep then unlocks, and the very eviction that was refused must
    // now succeed against the previously-locked way.
    SilcFmParams params = defaultParams();
    params.associativity = 2;
    params.hot_threshold = 4;
    params.aging_interval = 200;
    auto p = make(params);
    const uint64_t sets = p->metadata().numSets();
    const uint64_t hot_a = fmPageInSet(*p, 6, 0);
    const uint64_t hot_b = hot_a + sets;
    const uint64_t cold = hot_a + 2 * sets;

    Tick now = 0;
    for (int round = 0; round < 6; ++round) {
        for (uint32_t s = 0; s < 4; ++s) {
            demand(*p, hot_a * kLargeBlockSize + s * kSubblockSize,
                   now += 10);
            demand(*p, hot_b * kLargeBlockSize + s * kSubblockSize,
                   now += 10);
        }
    }
    ASSERT_GE(p->locks(), 2u);
    ASSERT_EQ(p->metadata().victimWay(6), -1);   // set is sealed

    // Bounced: no way available, serviced from FM, no state movement.
    const uint64_t restores = p->restores();
    demand(*p, cold * kLargeBlockSize, now += 10);
    EXPECT_GE(p->allWaysLockedEvents(), 1u);
    EXPECT_EQ(p->restores(), restores);
    EXPECT_FALSE(p->locate(cold * kLargeBlockSize).in_nm);

    // Unrelated traffic crosses aging sweeps until the locks decay.
    const uint64_t other = fmPageInSet(*p, 40, 0);
    for (int i = 0; i < 900 && p->unlocks() < 2; ++i)
        demand(*p, other * kLargeBlockSize, now += 10);
    ASSERT_GE(p->unlocks(), 2u);

    // Now the eviction goes through: cold takes a way, displacing one
    // of the formerly-locked interleaves back home.
    demand(*p, cold * kLargeBlockSize, now += 10);
    EXPECT_TRUE(p->locate(cold * kLargeBlockSize).in_nm);
    EXPECT_GT(p->restores(), restores);
    EXPECT_TRUE(p->verifyIntegrity());
    checkBijective(*p);
    drain(now);
}

TEST_F(SilcFixture, PartiallyPresentBlockRestoresEverySubblockHome)
{
    // Evicting an interleaved block that is only partially swapped in:
    // exactly the resident subblocks travel, and afterwards every
    // subblock of both the old owner and the displaced natives is
    // findable at its proper home.
    SilcFmParams params = defaultParams();
    params.associativity = 1;
    params.enable_locking = false;
    params.enable_history_fetch = false;
    auto p = make(params);
    const uint64_t sets = p->metadata().numSets();
    const uint64_t page_a = fmPageInSet(*p, 21, 0);
    const uint64_t page_b = page_a + sets;

    const uint32_t present[] = {0, 2, 5};
    Tick now = 0;
    for (uint32_t s : present)
        demand(*p, page_a * kLargeBlockSize + s * kSubblockSize,
               now += 10);
    const int way = p->metadata().findWay(21, page_a);
    ASSERT_GE(way, 0);
    const uint64_t frame = p->metadata().frameOf(21, way);
    ASSERT_EQ(p->metadata().meta(frame).bv.count(), 3u);

    // Conflict evicts the partially-present block.
    demand(*p, page_b * kLargeBlockSize + 7 * kSubblockSize, now += 10);
    EXPECT_EQ(p->restores(), 1u);

    // page_a is wholly back home in FM...
    for (uint32_t s = 0; s < kSubblocksPerBlock; ++s) {
        EXPECT_FALSE(
            p->locate(page_a * kLargeBlockSize + s * kSubblockSize)
                .in_nm)
            << "subblock " << s;
    }
    // ...the frame's natives are all back except the one position
    // page_b now occupies...
    for (uint32_t s = 0; s < kSubblocksPerBlock; ++s) {
        const Addr native = frame * kLargeBlockSize +
            s * kSubblockSize;
        EXPECT_EQ(p->locate(native).in_nm, s != 7) << "subblock " << s;
    }
    // ...and page_b holds exactly its demanded position.
    EXPECT_TRUE(
        p->locate(page_b * kLargeBlockSize + 7 * kSubblockSize).in_nm);
    EXPECT_EQ(p->metadata().meta(frame).bv.count(), 1u);
    checkBijective(*p);
    drain(now);
}

TEST_F(SilcFixture, PredictorMispredictsJustRemappedSubblock)
{
    // The access that swaps a subblock into NM trains the predictor
    // with "this block lives in FM"; the very next access to the block
    // is serviced from NM, so that prediction must score as a location
    // miss (the predictor is timing-only and never affects placement).
    auto p = make(defaultParams());
    const uint64_t page = fmPageInSet(*p, 0);
    const Addr a = page * kLargeBlockSize;

    demand(*p, a, 0, 0x890);   // swap-in; trains in_fm = true
    ASSERT_TRUE(p->locate(a).in_nm);
    const uint64_t predictions = p->predictor().predictions();
    const uint64_t loc_hits = p->predictor().locationHits();

    demand(*p, a, 100, 0x890); // serviced from NM against an FM guess
    EXPECT_EQ(p->predictor().predictions(), predictions + 1);
    EXPECT_EQ(p->predictor().locationHits(), loc_hits);

    // The mapping itself was never disturbed by the mispredict.
    EXPECT_TRUE(p->locate(a).in_nm);
    EXPECT_EQ(p->nmServiced(), 1u);

    // Once retrained, the same block predicts NM correctly.
    demand(*p, a, 200, 0x890);
    EXPECT_EQ(p->predictor().locationHits(), loc_hits + 1);
    drain();
}

TEST_F(SilcFixture, RestoreFreesWayForReuse)
{
    SilcFmParams params = defaultParams();
    params.associativity = 1;
    params.enable_locking = false;
    auto p = make(params);
    const uint64_t sets = p->metadata().numSets();
    const uint64_t a = fmPageInSet(*p, 11, 0);
    const uint64_t b = a + sets;
    demand(*p, a * kLargeBlockSize, 0);
    demand(*p, b * kLargeBlockSize, 100);   // evicts a
    demand(*p, a * kLargeBlockSize, 200);   // evicts b again
    EXPECT_EQ(p->restores(), 2u);
    EXPECT_TRUE(p->locate(a * kLargeBlockSize).in_nm);
    EXPECT_FALSE(p->locate(b * kLargeBlockSize).in_nm);
    checkBijective(*p);
    drain();
}
