/**
 * @file
 * The sequential-vs-parallel differential oracle for the windowed run
 * loop (sim/domain.hh): the acceptance bar is byte-identical
 * `silc.results.v1` output — including the embedded telemetry time
 * series, whose per-epoch queue-depth and bus-utilization probes see
 * mid-run device state — across every SILC_SIM_THREADS value.
 * Randomized-timing trials sweep DRAM timing parameters, channel
 * counts, policies and workloads so the window horizon derivation is
 * exercised well away from the defaults.  Also covers the shared
 * thread-count env knob helper (common/env.hh).
 */

#include <cstdlib>
#include <random>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "common/env.hh"
#include "sim/experiment.hh"
#include "sim/parallel.hh"
#include "sim/result_writer.hh"
#include "sim/system.hh"

namespace silc {
namespace sim {
namespace {

/** Run one config and serialize the result the way the benches do. */
std::string
runJson(SystemConfig cfg, uint32_t sim_threads)
{
    cfg.sim_threads = sim_threads;
    System system(cfg);
    const SimResult r = system.run();
    std::ostringstream os;
    writeResultJson(os, r);
    return os.str();
}

/** Small fig7-class config: default scaled machine, telemetry on. */
SystemConfig
fig7Config(const std::string &workload, PolicyKind kind)
{
    ExperimentOptions opts;
    opts.cores = 4;
    opts.instructions_per_core = 40'000;
    opts.telemetry = true;
    opts.epoch_ticks = 25'000;
    return makeConfig(workload, kind, opts);
}

/** Small fig8-class config: the bandwidth-bound machine shape (full
 *  HBM2 + DDR3 channel counts, lbm). */
SystemConfig
fig8Config()
{
    ExperimentOptions opts;
    opts.cores = 8;
    opts.instructions_per_core = 30'000;
    opts.nm_bytes = 8 * 1024 * 1024;
    opts.fm_bytes = 32 * 1024 * 1024;
    opts.telemetry = true;
    opts.epoch_ticks = 20'000;
    SystemConfig cfg = makeConfig("lbm", PolicyKind::SilcFm, opts);
    cfg.nm_timing = dram::hbm2Params();
    cfg.fm_timing = dram::ddr3Params();
    cfg.fm_timing.channels = 4;
    return cfg;
}

TEST(SimParallelWindow, Fig7ByteIdenticalAcrossThreadCounts)
{
    for (PolicyKind kind :
         {PolicyKind::SilcFm, PolicyKind::FmOnly, PolicyKind::Hma}) {
        const SystemConfig cfg = fig7Config("mcf", kind);
        const std::string seq = runJson(cfg, 1);
        EXPECT_EQ(seq, runJson(cfg, 2))
            << "threads=2 diverged, policy=" << policyKindName(kind);
        EXPECT_EQ(seq, runJson(cfg, 4))
            << "threads=4 diverged, policy=" << policyKindName(kind);
    }
}

TEST(SimParallelWindow, Fig8ByteIdenticalAcrossThreadCounts)
{
    const SystemConfig cfg = fig8Config();
    const std::string seq = runJson(cfg, 1);
    EXPECT_EQ(seq, runJson(cfg, 2));
    EXPECT_EQ(seq, runJson(cfg, 4));
}

TEST(SimParallelWindow, RandomizedTimingDifferential)
{
    // Deterministic sweep over the horizon-relevant knobs: CAS latency
    // (sets the lookahead), CPU:mem clock ratio (sets scan alignment),
    // channel counts (sets the lane partition) and the telemetry epoch
    // (sets the window caps).
    std::mt19937 rng(20260809);
    const char *workloads[] = {"mcf", "lbm", "milc", "gcc"};
    const PolicyKind kinds[] = {PolicyKind::SilcFm, PolicyKind::Cameo,
                                PolicyKind::Pom, PolicyKind::Hma,
                                PolicyKind::Random};

    for (int trial = 0; trial < 6; ++trial) {
        ExperimentOptions opts;
        opts.cores = 2 + static_cast<uint32_t>(rng() % 3);
        opts.instructions_per_core = 15'000 + rng() % 10'000;
        opts.telemetry = true;
        opts.epoch_ticks = 5'000 + rng() % 40'000;
        SystemConfig cfg = makeConfig(
            workloads[rng() % 4],
            kinds[rng() % (sizeof(kinds) / sizeof(kinds[0]))], opts);

        cfg.nm_timing.t_cas = 6 + rng() % 9;
        cfg.fm_timing.t_cas = 8 + rng() % 10;
        cfg.nm_timing.cpu_cycles_per_mem_cycle = 2 + rng() % 4;
        cfg.fm_timing.cpu_cycles_per_mem_cycle = 3 + rng() % 4;
        cfg.nm_timing.channels = 1u << (rng() % 3);  // 1, 2 or 4
        cfg.fm_timing.channels = 1u << (rng() % 2);  // 1 or 2
        cfg.nm_timing.queue_depth = 8 + rng() % 56;
        cfg.fm_timing.queue_depth = 8 + rng() % 56;

        const uint32_t threads = 2 + rng() % 3;
        SCOPED_TRACE("trial " + std::to_string(trial) + " " +
                     cfg.workload + "/" + policyKindName(cfg.policy) +
                     " threads=" + std::to_string(threads));
        EXPECT_EQ(runJson(cfg, 1), runJson(cfg, threads));
    }
}

TEST(SimParallelWindow, DifferentialCheckerCleanUnderWindowedLoop)
{
    // The untimed SILC-FM oracle runs in lockstep and panics on any
    // metadata divergence; a pass means the windowed loop presented the
    // policy with exactly the sequential access stream.
    SystemConfig cfg = fig7Config("mcf", PolicyKind::SilcFm);
    cfg.check = true;
    cfg.sim_threads = 4;
    System system(cfg);
    const SimResult r = system.run();
    EXPECT_FALSE(r.hit_tick_limit);
}

TEST(SimParallelWindow, WindowStatsDumped)
{
    SystemConfig cfg = fig7Config("mcf", PolicyKind::SilcFm);
    cfg.sim_threads = 2;
    System system(cfg);
    (void)system.run();
    std::ostringstream os;
    system.dumpStats(os);
    EXPECT_NE(os.str().find("simpar.windows"), std::string::npos);
    // The windowed counters must never leak into the results document.
    std::ostringstream rj;
    cfg.sim_threads = 2;
    writeResultJson(rj, System(cfg).run());
    EXPECT_EQ(rj.str().find("simpar"), std::string::npos);
}

TEST(SimParallelWindow, ZeroSimThreadsIsFatal)
{
    SystemConfig cfg = fig7Config("mcf", PolicyKind::SilcFm);
    cfg.sim_threads = 0;
    EXPECT_DEATH({ System system(cfg); }, "sim_threads");
}

// ---- common/env.hh: the shared validated thread-count knob ----------

TEST(EnvKnobs, UnsetReturnsFallback)
{
    ::unsetenv("SILC_TEST_KNOB");
    EXPECT_EQ(envThreadCount("SILC_TEST_KNOB", 7u), 7u);
    EXPECT_EQ(envPositiveCount("SILC_TEST_KNOB", 42), 42u);
}

TEST(EnvKnobs, ValidValueParses)
{
    ::setenv("SILC_TEST_KNOB", "12", 1);
    EXPECT_EQ(envThreadCount("SILC_TEST_KNOB", 1u), 12u);
    ::unsetenv("SILC_TEST_KNOB");
}

TEST(EnvKnobs, RejectsZeroJunkAndOverflow)
{
    ::setenv("SILC_TEST_KNOB", "0", 1);
    EXPECT_DEATH(envThreadCount("SILC_TEST_KNOB", 1u), "positive");
    ::setenv("SILC_TEST_KNOB", "4abc", 1);
    EXPECT_DEATH(envThreadCount("SILC_TEST_KNOB", 1u), "positive");
    ::setenv("SILC_TEST_KNOB", "", 1);
    EXPECT_DEATH(envThreadCount("SILC_TEST_KNOB", 1u), "positive");
    ::setenv("SILC_TEST_KNOB", "-3", 1);
    EXPECT_DEATH(envThreadCount("SILC_TEST_KNOB", 1u), "positive");
    ::setenv("SILC_TEST_KNOB", "100000", 1);
    EXPECT_DEATH(envThreadCount("SILC_TEST_KNOB", 1u), "maximum");
    ::unsetenv("SILC_TEST_KNOB");
}

TEST(EnvKnobs, FooterFormattingIsLocaleStableFixedPoint)
{
    EXPECT_EQ(fixedDecimal(0.0, 2), "0.00");
    EXPECT_EQ(fixedDecimal(1.234, 2), "1.23");
    EXPECT_EQ(fixedDecimal(1.235, 2), "1.24");  // ties round up
    EXPECT_EQ(fixedDecimal(1234.5, 1), "1234.5");
    EXPECT_EQ(fixedDecimal(0.05, 1), "0.1");
    EXPECT_EQ(fixedDecimal(12.0, 0), "12");
    EXPECT_EQ(fixedDecimal(-1.0, 2), "0.00");  // clamped, never "-"
}

} // namespace
} // namespace sim
} // namespace silc
