/**
 * @file
 * Unit tests for the sim-layer pieces not covered by the integration
 * suite: virtual-to-physical translation, SimResult helpers, experiment
 * configuration building and config validation.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "sim/experiment.hh"
#include "sim/metrics.hh"
#include "sim/system.hh"
#include "sim/translation.hh"

using namespace silc;
using namespace silc::sim;

// ---- translation -----------------------------------------------------------

TEST(Translation, FirstTouchAllocatesOnce)
{
    Translation t(1_MiB, 1);
    const Addr p1 = t.translate(0, 0x1000'0000);
    const Addr p2 = t.translate(0, 0x1000'0000);
    EXPECT_EQ(p1, p2);
    EXPECT_EQ(t.pagesAllocated(), 1u);
}

TEST(Translation, OffsetsPreservedWithinPage)
{
    Translation t(1_MiB, 1);
    const Addr base = t.translate(0, 0x1000'0000);
    const Addr off = t.translate(0, 0x1000'0000 + 100);
    EXPECT_EQ(off, base + 100);
    EXPECT_EQ(t.pagesAllocated(), 1u);
}

TEST(Translation, DistinctPagesDistinctFrames)
{
    Translation t(4_MiB, 1);
    std::set<uint64_t> frames;
    for (int i = 0; i < 512; ++i) {
        const Addr paddr =
            t.translate(0, 0x1000'0000 + i * kLargeBlockSize);
        EXPECT_TRUE(frames.insert(paddr >> kLargeBlockBits).second);
    }
}

TEST(Translation, CoresAreIsolated)
{
    Translation t(1_MiB, 1);
    const Addr a = t.translate(0, 0x1000'0000);
    const Addr b = t.translate(1, 0x1000'0000);
    EXPECT_NE(a >> kLargeBlockBits, b >> kLargeBlockBits);
    EXPECT_EQ(t.pagesAllocatedFor(0), 1u);
    EXPECT_EQ(t.pagesAllocatedFor(1), 1u);
}

TEST(Translation, PlacementIsRandomised)
{
    // With a shuffled free list the first few allocations should not be
    // the first few frames in order.
    Translation t(16_MiB, 123);
    bool nonsequential = false;
    Addr prev = t.translate(0, 0);
    for (int i = 1; i < 16; ++i) {
        const Addr cur =
            t.translate(0, static_cast<Addr>(i) * kLargeBlockSize);
        if (cur >> kLargeBlockBits !=
            (prev >> kLargeBlockBits) + 1) {
            nonsequential = true;
        }
        prev = cur;
    }
    EXPECT_TRUE(nonsequential);
}

TEST(Translation, DeterministicPerSeed)
{
    Translation a(4_MiB, 9), b(4_MiB, 9), c(4_MiB, 10);
    EXPECT_EQ(a.translate(0, 0x5000), b.translate(0, 0x5000));
    // A different seed gives a different shuffle (overwhelmingly).
    bool differs = false;
    for (int i = 0; i < 32; ++i) {
        const Addr va = 0x5000 + i * kLargeBlockSize;
        Translation c2(4_MiB, 10);
        (void)c2;
        if (a.translate(0, va) != c.translate(0, va))
            differs = true;
    }
    EXPECT_TRUE(differs);
}

TEST(Translation, ExhaustionIsFatal)
{
    Translation t(4 * kLargeBlockSize, 1);
    for (int i = 0; i < 4; ++i)
        t.translate(0, static_cast<Addr>(i) * kLargeBlockSize);
    EXPECT_DEATH(t.translate(0, 100 * kLargeBlockSize),
                 "out of physical memory");
}

// ---- metrics ----------------------------------------------------------------

TEST(Metrics, NmDemandFraction)
{
    SimResult r;
    r.nm_demand_bytes = 300;
    r.fm_demand_bytes = 100;
    EXPECT_DOUBLE_EQ(r.nmDemandFraction(), 0.75);
    SimResult empty;
    EXPECT_DOUBLE_EQ(empty.nmDemandFraction(), 0.0);
}

TEST(Metrics, SecondsConversion)
{
    SimResult r;
    r.ticks = 3'200'000'000ull;
    EXPECT_DOUBLE_EQ(r.seconds(), 1.0);
    EXPECT_DOUBLE_EQ(r.seconds(1.6e9), 2.0);
}

TEST(Metrics, GeomeanProperties)
{
    EXPECT_DOUBLE_EQ(geomean({5.0}), 5.0);
    // Scale invariance: geomean(k*x) = k * geomean(x).
    const double g1 = geomean({1.2, 1.5, 0.8});
    const double g2 = geomean({2.4, 3.0, 1.6});
    EXPECT_NEAR(g2, 2.0 * g1, 1e-12);
}

TEST(Metrics, GeomeanEdgeCases)
{
    // Empty input is defined as 0, not NaN.
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
    // The log-domain accumulation must not overflow where a naive
    // product of large speedups would (1e200^3 >> DBL_MAX).
    const double big = geomean({1e200, 1e200, 1e200});
    EXPECT_TRUE(std::isfinite(big));
    EXPECT_NEAR(big, 1e200, 1e188);
    // ... and symmetrically must not underflow to zero.
    const double tiny = geomean({1e-200, 1e-200, 1e-200});
    EXPECT_GT(tiny, 0.0);
    EXPECT_NEAR(tiny, 1e-200, 1e-212);
}

TEST(Metrics, SecondsZeroTicks)
{
    SimResult r;
    EXPECT_DOUBLE_EQ(r.seconds(), 0.0);
    EXPECT_DOUBLE_EQ(r.seconds(1.0), 0.0);
}

TEST(Metrics, NmDemandFractionZeroDenominators)
{
    // All-FM traffic: fraction is 0 without dividing by zero.
    SimResult fm_only;
    fm_only.fm_demand_bytes = 512;
    EXPECT_DOUBLE_EQ(fm_only.nmDemandFraction(), 0.0);
    // All-NM traffic: fraction is exactly 1.
    SimResult nm_only;
    nm_only.nm_demand_bytes = 512;
    EXPECT_DOUBLE_EQ(nm_only.nmDemandFraction(), 1.0);
}

// ---- experiment options -------------------------------------------------------

TEST(Experiment, MakeConfigAppliesOptions)
{
    ExperimentOptions opts;
    opts.cores = 3;
    opts.instructions_per_core = 1234;
    opts.nm_bytes = 2_MiB;
    opts.fm_bytes = 8_MiB;
    opts.seed = 77;
    SystemConfig cfg = makeConfig("gcc", PolicyKind::Cameo, opts);
    EXPECT_EQ(cfg.cores, 3u);
    EXPECT_EQ(cfg.instructions_per_core, 1234u);
    EXPECT_EQ(cfg.nm_bytes, 2_MiB);
    EXPECT_EQ(cfg.fm_bytes, 8_MiB);
    EXPECT_EQ(cfg.seed, 77u);
    EXPECT_EQ(cfg.workload, "gcc");
    EXPECT_EQ(cfg.policy, PolicyKind::Cameo);
}

TEST(Experiment, ScaledKnobsTrackInstructionCount)
{
    ExperimentOptions small, large;
    small.instructions_per_core = 400'000;
    large.instructions_per_core = 4'000'000;
    SystemConfig a = makeConfig("gcc", PolicyKind::SilcFm, small);
    SystemConfig b = makeConfig("gcc", PolicyKind::SilcFm, large);
    EXPECT_LT(a.silc.aging_interval, b.silc.aging_interval);
    EXPECT_LT(a.hma.epoch_ticks, b.hma.epoch_ticks);
}

TEST(Experiment, RunnerCachesBaselinePerWorkload)
{
    ExperimentOptions opts;
    opts.cores = 1;
    opts.instructions_per_core = 20'000;
    opts.nm_bytes = 2_MiB;
    opts.fm_bytes = 8_MiB;
    ExperimentRunner runner(opts);
    const Tick a = runner.baselineTicks("gcc");
    const Tick b = runner.baselineTicks("gcc");
    EXPECT_EQ(a, b);
    const Tick c = runner.baselineTicks("mcf");
    EXPECT_NE(a, c);
}

// ---- config validation ----------------------------------------------------------

TEST(SystemConfigValidation, CapacityRatioEnforced)
{
    SystemConfig cfg = SystemConfig::defaults();
    cfg.nm_bytes = 3 * 1024 * 1024;
    cfg.fm_bytes = 16 * 1024 * 1024;   // not a multiple of 3MiB
    EXPECT_DEATH(cfg.validate(), "multiple");
}

TEST(SystemConfigValidation, FmOnlyIgnoresRatio)
{
    SystemConfig cfg = SystemConfig::defaults();
    cfg.policy = PolicyKind::FmOnly;
    cfg.nm_bytes = 3 * 1024 * 1024;
    cfg.fm_bytes = 16 * 1024 * 1024;
    cfg.validate();   // must not die
}

TEST(SystemConfigValidation, ZeroCoresFatal)
{
    SystemConfig cfg = SystemConfig::defaults();
    cfg.cores = 0;
    EXPECT_DEATH(cfg.validate(), "core");
}

TEST(SystemConfigValidation, ZeroBudgetFatal)
{
    SystemConfig cfg = SystemConfig::defaults();
    cfg.instructions_per_core = 0;
    EXPECT_DEATH(cfg.validate(), "budget");
}

TEST(SystemConfigValidation, DefaultBandwidthRatioIsFourToOne)
{
    // Section III-E's bypass math (target 0.8 = N/(N+1)) requires the
    // configured system to keep NM:FM peak bandwidth at 4:1.
    SystemConfig cfg = SystemConfig::defaults();
    const double ratio = cfg.nm_timing.peakBytesPerTick() /
        cfg.fm_timing.peakBytesPerTick();
    EXPECT_DOUBLE_EQ(ratio, 4.0);
}

// ---- stats dump integration ------------------------------------------------------

#include <sstream>

TEST(Experiment, EnvOverridesApply)
{
    // fromEnv honours SILC_* variables (set locally for this test).
    setenv("SILC_CORES", "3", 1);
    setenv("SILC_INSTR", "12345", 1);
    setenv("SILC_SEED", "42", 1);
    ExperimentOptions o = ExperimentOptions::fromEnv();
    EXPECT_EQ(o.cores, 3u);
    EXPECT_EQ(o.instructions_per_core, 12345u);
    EXPECT_EQ(o.seed, 42u);
    unsetenv("SILC_CORES");
    unsetenv("SILC_INSTR");
    unsetenv("SILC_SEED");
}

TEST(Experiment, NmFmEnvInMiB)
{
    setenv("SILC_NM_MIB", "2", 1);
    setenv("SILC_FM_MIB", "8", 1);
    ExperimentOptions o = ExperimentOptions::fromEnv();
    EXPECT_EQ(o.nm_bytes, 2_MiB);
    EXPECT_EQ(o.fm_bytes, 8_MiB);
    unsetenv("SILC_NM_MIB");
    unsetenv("SILC_FM_MIB");
}
