/**
 * @file
 * Integration tests: full System runs for every scheme, checking
 * termination, metric sanity, determinism, and cross-scheme orderings
 * the paper predicts.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/experiment.hh"
#include "sim/system.hh"
#include "trace/profiles.hh"

using namespace silc;
using namespace silc::sim;

namespace {

SystemConfig
tinyConfig(const std::string &workload, PolicyKind kind)
{
    ExperimentOptions opts;
    opts.cores = 2;
    opts.instructions_per_core = 40'000;
    opts.nm_bytes = 4 * 1024 * 1024;
    opts.fm_bytes = 16 * 1024 * 1024;
    return makeConfig(workload, kind, opts);
}

} // namespace

class AllSchemes : public ::testing::TestWithParam<PolicyKind>
{
};

TEST_P(AllSchemes, RunsToCompletion)
{
    System system(tinyConfig("mcf", GetParam()));
    SimResult r = system.run();
    EXPECT_FALSE(r.hit_tick_limit);
    EXPECT_GT(r.ticks, 0u);
    EXPECT_EQ(r.instructions, 80'000u);
    EXPECT_GT(r.ipc, 0.0);
    EXPECT_LE(r.ipc, 4.0);
}

TEST_P(AllSchemes, AccessRateInUnitRange)
{
    System system(tinyConfig("milc", GetParam()));
    SimResult r = system.run();
    EXPECT_GE(r.access_rate, 0.0);
    EXPECT_LE(r.access_rate, 1.0);
}

TEST_P(AllSchemes, DeterministicAcrossRuns)
{
    SimResult a = System(tinyConfig("gcc", GetParam())).run();
    SimResult b = System(tinyConfig("gcc", GetParam())).run();
    EXPECT_EQ(a.ticks, b.ticks);
    EXPECT_EQ(a.llc_misses, b.llc_misses);
    EXPECT_EQ(a.nm_total_bytes, b.nm_total_bytes);
    EXPECT_EQ(a.fm_total_bytes, b.fm_total_bytes);
}

TEST_P(AllSchemes, EnergyPositive)
{
    System system(tinyConfig("lbm", GetParam()));
    SimResult r = system.run();
    EXPECT_GT(r.energy_total_j, 0.0);
    EXPECT_GT(r.edp, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, AllSchemes,
    ::testing::Values(PolicyKind::FmOnly, PolicyKind::Random,
                      PolicyKind::Hma, PolicyKind::Cameo,
                      PolicyKind::CameoP, PolicyKind::Pom,
                      PolicyKind::SilcFm),
    [](const ::testing::TestParamInfo<PolicyKind> &info) {
        return std::string(policyKindName(info.param));
    });

TEST(SystemIntegration, FmOnlyUsesNoNm)
{
    System system(tinyConfig("mcf", PolicyKind::FmOnly));
    SimResult r = system.run();
    EXPECT_EQ(r.nm_total_bytes, 0u);
    EXPECT_GT(r.fm_total_bytes, 0u);
    EXPECT_DOUBLE_EQ(r.access_rate, 0.0);
}

TEST(SystemIntegration, RandomServicesSomeFromNm)
{
    System system(tinyConfig("mcf", PolicyKind::Random));
    SimResult r = system.run();
    // NM is 1/5 of the flat space; random placement should put roughly
    // that fraction of demand there.
    EXPECT_GT(r.access_rate, 0.05);
    EXPECT_LT(r.access_rate, 0.5);
}

TEST(SystemIntegration, SilcFmBeatsNoMigrationOnHotWorkload)
{
    // The headline claim (Fig. 6): interleaved subblock placement beats
    // static placement on a bandwidth-bound workload.  Needs enough
    // instructions for the working set to be re-referenced at the LLC
    // miss level, so this test runs longer than the others.
    ExperimentOptions opts;
    opts.cores = 8;   // the bandwidth-bound regime the paper targets
    opts.instructions_per_core = 1'200'000;
    opts.nm_bytes = 4 * 1024 * 1024;
    opts.fm_bytes = 16 * 1024 * 1024;
    SimResult rand_r =
        System(makeConfig("milc", PolicyKind::Random, opts)).run();
    SimResult silc_r =
        System(makeConfig("milc", PolicyKind::SilcFm, opts)).run();
    EXPECT_LT(silc_r.ticks, rand_r.ticks);
    EXPECT_GT(silc_r.access_rate, rand_r.access_rate);
}

TEST(SystemIntegration, SilcFmIntegrityAfterRun)
{
    SystemConfig cfg = tinyConfig("milc", PolicyKind::SilcFm);
    System system(cfg);
    system.run();
    auto &silc_policy =
        dynamic_cast<core::SilcFmPolicy &>(system.policyRef());
    EXPECT_TRUE(silc_policy.verifyIntegrity());
}

TEST(SystemIntegration, MpkiClassesOrdered)
{
    // Table III: lbm (high) must show substantially more LLC MPKI than
    // dealii (low).
    SimResult low = System(tinyConfig("dealii", PolicyKind::FmOnly)).run();
    SimResult high = System(tinyConfig("lbm", PolicyKind::FmOnly)).run();
    EXPECT_GT(high.mpki, low.mpki);
}

TEST(SystemIntegration, SpeedupUsesSharedBaseline)
{
    ExperimentOptions opts;
    opts.cores = 2;
    opts.instructions_per_core = 30'000;
    opts.nm_bytes = 4 * 1024 * 1024;
    opts.fm_bytes = 16 * 1024 * 1024;
    ExperimentRunner runner(opts);
    SimResult r = runner.run("omnet", PolicyKind::SilcFm);
    const double s = runner.speedup(r);
    EXPECT_GT(s, 0.5);
    EXPECT_LT(s, 10.0);
    // Cached baseline: second query must be identical.
    EXPECT_EQ(runner.baselineTicks("omnet"), runner.baselineTicks("omnet"));
}

TEST(SystemIntegration, PolicyKindNamesRoundTrip)
{
    for (PolicyKind k :
         {PolicyKind::FmOnly, PolicyKind::Random, PolicyKind::Hma,
          PolicyKind::Cameo, PolicyKind::CameoP, PolicyKind::Pom,
          PolicyKind::SilcFm}) {
        EXPECT_EQ(policyKindFromName(policyKindName(k)), k);
    }
}

TEST(SystemIntegration, GeomeanMatchesHandComputation)
{
    EXPECT_DOUBLE_EQ(geomean({4.0, 1.0}), 2.0);
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
    EXPECT_NEAR(geomean({1.0, 2.0, 4.0}), 2.0, 1e-12);
}

TEST(SystemIntegration, TranslationFootprintReported)
{
    System system(tinyConfig("mcf", PolicyKind::SilcFm));
    SimResult r = system.run();
    EXPECT_GT(r.footprint_pages, 0u);
}

// ---- trace replay through the full system ----------------------------------------

#include <cstdio>

#include "trace/file_trace.hh"

TEST(SystemIntegration, RecordedTraceReplaysIdentically)
{
    const std::string path =
        std::string(::testing::TempDir()) + "/silc_system.trace";
    {
        trace::SyntheticGenerator gen(trace::findProfile("gcc"),
                                      7919 + 13);   // core 0's seed
        trace::TraceWriter writer(path);
        writer.record(gen, 50'000);
    }
    SystemConfig synth = tinyConfig("gcc", PolicyKind::SilcFm);
    synth.cores = 1;
    synth.seed = 1;   // core 0 seed = 1*7919 + 13
    synth.instructions_per_core = 40'000;
    SimResult a = System(synth).run();

    SystemConfig replay = synth;
    replay.trace_file = path;
    SimResult b = System(replay).run();

    EXPECT_EQ(a.ticks, b.ticks);
    EXPECT_EQ(a.llc_misses, b.llc_misses);
    std::remove(path.c_str());
}

TEST(SystemIntegration, StatsDumpCoversComponents)
{
    SystemConfig cfg = tinyConfig("gcc", PolicyKind::SilcFm);
    System system(cfg);
    system.run();
    std::ostringstream os;
    system.dumpStats(os);
    const std::string text = os.str();
    for (const char *needle :
         {"core0.retired", "l2.misses", "llc.avgMissLatency",
          "nm.rowHits", "fm.demandBytes", "policy.accessRate"}) {
        EXPECT_NE(text.find(needle), std::string::npos) << needle;
    }
    // Values render next to descriptions.
    EXPECT_NE(text.find("# instructions retired"), std::string::npos);
}
