/**
 * @file
 * Tests for the silc::telemetry subsystem: epoch delta/rate/ratio math
 * in the Sampler, Distribution percentile extraction, exact sink output
 * bytes, Recorder lifecycle on a real EventQueue, and the structured
 * JSON result export (sim/result_writer.hh) end to end on a mini run.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/event_queue.hh"
#include "common/stats.hh"
#include "sim/experiment.hh"
#include "sim/parallel.hh"
#include "sim/result_writer.hh"
#include "sim/system.hh"
#include "telemetry/json.hh"
#include "telemetry/recorder.hh"
#include "telemetry/sampler.hh"
#include "telemetry/sink.hh"

using namespace silc;
using namespace silc::telemetry;

// ---------------------------------------------------------------- JSON

TEST(TelemetryJson, EscapesControlAndQuoteCharacters)
{
    EXPECT_EQ(jsonEscape("plain"), "plain");
    EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
    EXPECT_EQ(jsonEscape("back\\slash"), "back\\\\slash");
    EXPECT_EQ(jsonEscape("tab\there"), "tab\\there");
    EXPECT_EQ(jsonEscape("new\nline"), "new\\nline");
    EXPECT_EQ(jsonEscape(std::string_view("\x01", 1)), "\\u0001");
    EXPECT_EQ(jsonString("run/id"), "\"run/id\"");
}

TEST(TelemetryJson, DoubleFormattingIsShortRoundTrip)
{
    EXPECT_EQ(jsonDouble(0.0), "0");
    EXPECT_EQ(jsonDouble(1.0), "1");
    EXPECT_EQ(jsonDouble(0.5), "0.5");
    EXPECT_EQ(jsonDouble(-2.25), "-2.25");
    // Non-finite values have no JSON representation.
    EXPECT_EQ(jsonDouble(std::nan("")), "null");
    EXPECT_EQ(jsonDouble(INFINITY), "null");
    // Round trip: parsing the text recovers the exact bits.
    const double v = 0.1 + 0.2;
    EXPECT_EQ(std::stod(jsonDouble(v)), v);
}

// ------------------------------------------------------------- Sampler

TEST(Sampler, GaugeReadsRawValueEachEpoch)
{
    double live = 3.0;
    Sampler s(100);
    s.addGauge("g", [&] { return live; });

    EXPECT_EQ(s.sample(100).values[0], 3.0);
    live = 7.5;
    EXPECT_EQ(s.sample(200).values[0], 7.5);
}

TEST(Sampler, CounterDerivesPerEpochDeltas)
{
    uint64_t count = 0;
    Sampler s(100);
    s.addCounter("c", [&] { return static_cast<double>(count); });

    count = 10;
    EXPECT_EQ(s.sample(100).values[0], 10.0);
    count = 25;
    EXPECT_EQ(s.sample(200).values[0], 15.0);
    // No movement: delta is zero, not the cumulative value.
    EXPECT_EQ(s.sample(300).values[0], 0.0);
}

TEST(Sampler, RateDividesDeltaByElapsedTicks)
{
    uint64_t retired = 0;
    Sampler s(100);
    s.addRate("ipc", [&] { return static_cast<double>(retired); });

    retired = 50;
    EpochRecord r0 = s.sample(100);
    EXPECT_EQ(r0.elapsed, 100u);
    EXPECT_DOUBLE_EQ(r0.values[0], 0.5);

    // A short tail epoch uses its actual elapsed ticks.
    retired = 80;
    EpochRecord r1 = s.sample(150);
    EXPECT_EQ(r1.elapsed, 50u);
    EXPECT_DOUBLE_EQ(r1.values[0], 30.0 / 50.0);
}

TEST(Sampler, RatioUsesDeltasOfBothCounters)
{
    uint64_t hits = 0, total = 0;
    Sampler s(100);
    s.addRatio("hitRate", [&] { return static_cast<double>(hits); },
               [&] { return static_cast<double>(total); });

    hits = 8;
    total = 10;
    EXPECT_DOUBLE_EQ(s.sample(100).values[0], 0.8);

    // Second epoch: 2 more hits out of 10 more requests — the per-epoch
    // ratio, not the cumulative 10/20.
    hits = 10;
    total = 20;
    EXPECT_DOUBLE_EQ(s.sample(200).values[0], 0.2);

    // Idle epoch: denominator unmoved reads 0, not NaN.
    EXPECT_EQ(s.sample(300).values[0], 0.0);
}

TEST(Sampler, EpochRecordsCarryIndexTickAndElapsed)
{
    Sampler s(100);
    s.addGauge("g", [] { return 0.0; });

    EpochRecord r0 = s.sample(100);
    EpochRecord r1 = s.sample(200);
    EXPECT_EQ(r0.index, 0u);
    EXPECT_EQ(r1.index, 1u);
    EXPECT_EQ(r1.tick, 200u);
    EXPECT_EQ(r1.elapsed, 100u);
    EXPECT_EQ(s.epochsSampled(), 2u);
    EXPECT_EQ(s.lastSampleTick(), 200u);
}

TEST(Sampler, StatSetScalarsBecomeCounters)
{
    stats::StatSet set;
    stats::Scalar swaps;
    set.add("swaps", swaps);

    Sampler s(100);
    s.addStatSet(set, "silcfm");
    ASSERT_EQ(s.names().size(), 1u);
    EXPECT_EQ(s.names()[0], "silcfm.swaps");

    swaps += 4;
    EXPECT_EQ(s.sample(100).values[0], 4.0);
    swaps += 2;
    EXPECT_EQ(s.sample(200).values[0], 2.0);
}

TEST(SamplerDeath, DuplicateProbeNamePanics)
{
    Sampler s(100);
    s.addGauge("dup", [] { return 0.0; });
    EXPECT_DEATH(s.addGauge("dup", [] { return 0.0; }), "dup");
}

// --------------------------------------------------- Distribution p50/p95

TEST(DistributionPercentile, UniformFillInterpolatesLinearly)
{
    // 100 samples spread one per bucket over [0, 100).
    stats::Distribution d(0.0, 100.0, 100);
    for (int i = 0; i < 100; ++i)
        d.sample(i + 0.5);

    EXPECT_NEAR(d.percentile(0.50), 50.0, 1.0);
    EXPECT_NEAR(d.percentile(0.95), 95.0, 1.0);
    EXPECT_NEAR(d.percentile(0.99), 99.0, 1.0);
    EXPECT_NEAR(d.percentile(0.0), 0.0, 1.0);
}

TEST(DistributionPercentile, EdgeCases)
{
    stats::Distribution empty(0.0, 10.0, 10);
    EXPECT_EQ(empty.percentile(0.5), 0.0);

    stats::Distribution d(0.0, 10.0, 10);
    d.sample(-5.0);  // underflow clamps to min
    d.sample(50.0);  // overflow clamps to max
    EXPECT_EQ(d.percentile(0.0), 0.0);
    EXPECT_EQ(d.percentile(1.0), 10.0);
    // Out-of-range p clamps instead of reading out of bounds.
    EXPECT_EQ(d.percentile(-1.0), d.percentile(0.0));
    EXPECT_EQ(d.percentile(2.0), d.percentile(1.0));
}

TEST(DistributionPercentile, RenderIncludesPercentiles)
{
    stats::Distribution d(0.0, 10.0, 10);
    d.sample(5.0);
    const std::string r = d.render();
    EXPECT_NE(r.find("p50="), std::string::npos);
    EXPECT_NE(r.find("p95="), std::string::npos);
    EXPECT_NE(r.find("p99="), std::string::npos);
}

TEST(Sampler, DistributionRegistersPercentileGauges)
{
    stats::Distribution d(0.0, 100.0, 100);
    Sampler s(100);
    s.addDistribution("lat", d);
    ASSERT_EQ(s.names().size(), 3u);
    EXPECT_EQ(s.names()[0], "lat.p50");
    EXPECT_EQ(s.names()[1], "lat.p95");
    EXPECT_EQ(s.names()[2], "lat.p99");

    for (int i = 0; i < 100; ++i)
        d.sample(i + 0.5);
    EpochRecord rec = s.sample(100);
    EXPECT_NEAR(rec.values[0], 50.0, 1.0);
    EXPECT_NEAR(rec.values[1], 95.0, 1.0);
    EXPECT_NEAR(rec.values[2], 99.0, 1.0);
}

// --------------------------------------------------------------- Sinks

namespace {

SeriesHeader
twoProbeHeader()
{
    SeriesHeader h;
    h.run_id = "mcf/silcfm";
    h.epoch_ticks = 100;
    h.probes = {"a", "b"};
    return h;
}

EpochRecord
record(uint64_t index, Tick tick, Tick elapsed, std::vector<double> vals)
{
    EpochRecord r;
    r.index = index;
    r.tick = tick;
    r.elapsed = elapsed;
    r.values = std::move(vals);
    return r;
}

} // namespace

TEST(Sinks, JsonLinesExactBytes)
{
    std::ostringstream os;
    JsonLinesSink sink(os);
    const SeriesHeader h = twoProbeHeader();
    sink.begin(h);
    sink.epoch(h, record(0, 100, 100, {1.0, 0.5}));
    sink.epoch(h, record(1, 150, 50, {0.0, 2.25}));
    sink.end();

    EXPECT_EQ(os.str(),
              "{\"type\":\"header\",\"run\":\"mcf/silcfm\","
              "\"epoch_ticks\":100,\"probes\":[\"a\",\"b\"]}\n"
              "{\"type\":\"epoch\",\"epoch\":0,\"tick\":100,"
              "\"elapsed\":100,\"values\":[1,0.5]}\n"
              "{\"type\":\"epoch\",\"epoch\":1,\"tick\":150,"
              "\"elapsed\":50,\"values\":[0,2.25]}\n");
}

TEST(Sinks, CsvExactBytes)
{
    std::ostringstream os;
    CsvSink sink(os);
    const SeriesHeader h = twoProbeHeader();
    sink.begin(h);
    sink.epoch(h, record(0, 100, 100, {1.0, 0.5}));
    sink.end();

    EXPECT_EQ(os.str(), "epoch,tick,elapsed,a,b\n0,100,100,1,0.5\n");
}

TEST(Sinks, MemorySinkRebuildsSeries)
{
    MemorySink sink;
    const SeriesHeader h = twoProbeHeader();
    sink.begin(h);
    sink.epoch(h, record(0, 100, 100, {1.0, 0.5}));
    sink.epoch(h, record(1, 200, 100, {2.0, 0.25}));

    const TimeSeries &ts = sink.series();
    EXPECT_EQ(ts.header.run_id, "mcf/silcfm");
    ASSERT_EQ(ts.epochs.size(), 2u);
    EXPECT_EQ(ts.probeIndex("b"), 1);
    EXPECT_EQ(ts.probeIndex("nope"), -1);
    EXPECT_EQ(ts.epochs[1].values[0], 2.0);
}

// ------------------------------------------------------------ Recorder

TEST(Recorder, SamplesOnEpochBoundariesAndCapturesTail)
{
    TelemetryConfig cfg;
    cfg.enabled = true;
    cfg.epoch_ticks = 100;

    uint64_t count = 0;
    Recorder rec(cfg, "unit/test");
    rec.sampler().addCounter("c",
                             [&] { return static_cast<double>(count); });

    EventQueue events;
    rec.start(events);

    // Drive the queue past two full epochs into a partial third.
    events.schedule(50, [&](Tick) { count = 5; });
    events.schedule(150, [&](Tick) { count = 12; });
    events.schedule(225, [&](Tick) { count = 20; });
    // Tick-by-tick like the simulator's main loop (a single runDue(230)
    // would forbid the Recorder's self-rescheduling at 200).
    for (Tick t = 0; t <= 230; ++t)
        events.runDue(t);
    rec.finish(230);

    auto ts = rec.series();
    ASSERT_TRUE(ts != nullptr);
    ASSERT_EQ(ts->epochs.size(), 3u);
    EXPECT_EQ(ts->epochs[0].tick, 100u);
    EXPECT_EQ(ts->epochs[0].values[0], 5.0);
    EXPECT_EQ(ts->epochs[1].tick, 200u);
    EXPECT_EQ(ts->epochs[1].values[0], 7.0);
    // The tail epoch covers 200..230 only.
    EXPECT_EQ(ts->epochs[2].tick, 230u);
    EXPECT_EQ(ts->epochs[2].elapsed, 30u);
    EXPECT_EQ(ts->epochs[2].values[0], 8.0);

    // finish() is idempotent.
    rec.finish(500);
    EXPECT_EQ(ts->epochs.size(), 3u);
}

// --------------------------------------------- End-to-end on a System

namespace {

sim::SystemConfig
telemetryConfig(const std::string &workload, sim::PolicyKind kind)
{
    sim::ExperimentOptions opts;
    opts.cores = 2;
    opts.instructions_per_core = 40'000;
    opts.nm_bytes = 1 * 1024 * 1024;
    opts.fm_bytes = 4 * 1024 * 1024;
    opts.telemetry = true;
    opts.epoch_ticks = 20'000;
    return makeConfig(workload, kind, opts);
}

} // namespace

TEST(TelemetryEndToEnd, MiniRunRecordsSilcFmSeries)
{
    sim::System system(telemetryConfig("mcf", sim::PolicyKind::SilcFm));
    sim::SimResult r = system.run();

    ASSERT_TRUE(r.telemetry != nullptr);
    const TimeSeries &ts = *r.telemetry;
    EXPECT_EQ(ts.header.run_id, "mcf/silcfm");
    EXPECT_EQ(ts.header.epoch_ticks, 20'000u);
    ASSERT_GE(ts.epochs.size(), 2u);

    // The paper-facing probes are present.
    const int hit = ts.probeIndex("policy.hitRate");
    const int swaps = ts.probeIndex("silcfm.swaps");
    const int nmq = ts.probeIndex("nm.ch0.readQ");
    const int rob = ts.probeIndex("cpu.robOccupancy");
    ASSERT_GE(hit, 0);
    ASSERT_GE(swaps, 0);
    ASSERT_GE(nmq, 0);
    ASSERT_GE(rob, 0);

    // Epoch hit rates are rates; the run did real work, so at least one
    // epoch saw NM service.
    double max_hit = 0.0;
    for (const auto &e : ts.epochs) {
        ASSERT_EQ(e.values.size(), ts.header.probes.size());
        EXPECT_GE(e.values[hit], 0.0);
        EXPECT_LE(e.values[hit], 1.0);
        max_hit = std::max(max_hit, e.values[hit]);
    }
    EXPECT_GT(max_hit, 0.0);

    // Deterministic: the same config reproduces the same series.
    sim::System again(telemetryConfig("mcf", sim::PolicyKind::SilcFm));
    sim::SimResult r2 = again.run();
    ASSERT_TRUE(r2.telemetry != nullptr);
    ASSERT_EQ(r2.telemetry->epochs.size(), ts.epochs.size());
    for (size_t e = 0; e < ts.epochs.size(); ++e)
        EXPECT_EQ(r2.telemetry->epochs[e].values, ts.epochs[e].values);
}

TEST(TelemetryEndToEnd, DisabledRunCarriesNoSeries)
{
    sim::SystemConfig cfg =
        telemetryConfig("mcf", sim::PolicyKind::SilcFm);
    cfg.telemetry.enabled = false;
    sim::System system(cfg);
    sim::SimResult r = system.run();
    EXPECT_TRUE(r.telemetry == nullptr);
}

// ------------------------------------------------------- ResultWriter

TEST(ResultWriter, JsonOutputPathPrecedence)
{
    const char *argv1[] = {"bench", "--json", "cli.json"};
    EXPECT_EQ(sim::jsonOutputPath(3, const_cast<char *const *>(argv1)),
              "cli.json");
    const char *argv2[] = {"bench", "--json=eq.json"};
    EXPECT_EQ(sim::jsonOutputPath(2, const_cast<char *const *>(argv2)),
              "eq.json");

    setenv("SILC_JSON", "env.json", 1);
    const char *argv3[] = {"bench"};
    EXPECT_EQ(sim::jsonOutputPath(1, const_cast<char *const *>(argv3)),
              "env.json");
    // CLI wins over the environment.
    EXPECT_EQ(sim::jsonOutputPath(2, const_cast<char *const *>(argv2)),
              "eq.json");
    unsetenv("SILC_JSON");
    EXPECT_EQ(sim::jsonOutputPath(1, const_cast<char *const *>(argv3)),
              "");
}

TEST(ResultWriter, SerializesSchemaAndRuns)
{
    sim::ExperimentOptions opts;
    opts.cores = 2;
    sim::ResultWriter writer("unused.json", opts);

    sim::SimResult r;
    r.scheme = "silcfm";
    r.workload = "mcf";
    r.cores = 2;
    r.ticks = 1000;
    r.ipc = 1.5;
    writer.add(r);
    EXPECT_EQ(writer.runs(), 1u);

    std::ostringstream os;
    writer.serialize(os);
    const std::string doc = os.str();
    EXPECT_NE(doc.find("\"schema\":\"silc.results.v1\""),
              std::string::npos);
    EXPECT_NE(doc.find("\"scheme\":\"silcfm\""), std::string::npos);
    EXPECT_NE(doc.find("\"ipc\":1.5"), std::string::npos);
    EXPECT_NE(doc.find("\"options\":{\"cores\":2"), std::string::npos);
    // No telemetry attached: the key is omitted entirely.
    EXPECT_EQ(doc.find("\"telemetry\""), std::string::npos);
}

TEST(ResultWriter, EmbedsTelemetrySeries)
{
    sim::System system(telemetryConfig("mcf", sim::PolicyKind::SilcFm));
    sim::SimResult r = system.run();
    ASSERT_TRUE(r.telemetry != nullptr);

    sim::ResultWriter writer("unused.json", sim::ExperimentOptions{});
    writer.add(r);
    std::ostringstream os;
    writer.serialize(os);
    const std::string doc = os.str();
    EXPECT_NE(doc.find("\"telemetry\":{\"run\":\"mcf/silcfm\""),
              std::string::npos);
    EXPECT_NE(doc.find("\"probes\":["), std::string::npos);
    EXPECT_NE(doc.find("\"epochs\":["), std::string::npos);
    EXPECT_NE(doc.find("policy.hitRate"), std::string::npos);
}

TEST(ResultWriter, ParallelRunnerWritesSubmissionOrderJson)
{
    const std::string path = ::testing::TempDir() + "silc_runner.json";
    {
        sim::ExperimentOptions opts;
        opts.cores = 2;
        opts.instructions_per_core = 30'000;
        opts.nm_bytes = 1 * 1024 * 1024;
        opts.fm_bytes = 4 * 1024 * 1024;
        opts.epoch_ticks = 20'000;
        sim::ParallelRunner runner(opts, 2);
        runner.setJsonPath(path);
        runner.submit("mcf", sim::PolicyKind::SilcFm);
        runner.submit("milc", sim::PolicyKind::Cameo);
        // Destructor drains the pool and writes the document.
    }

    std::ifstream in(path);
    ASSERT_TRUE(in.is_open());
    std::stringstream buf;
    buf << in.rdbuf();
    const std::string doc = buf.str();
    // Submission order is preserved: mcf/silcfm before milc/cameo.
    const size_t first = doc.find("\"workload\":\"mcf\"");
    const size_t second = doc.find("\"workload\":\"milc\"");
    ASSERT_NE(first, std::string::npos);
    ASSERT_NE(second, std::string::npos);
    EXPECT_LT(first, second);
    EXPECT_NE(doc.find("\"schema\":\"silc.results.v1\""),
              std::string::npos);
    // setJsonPath turned telemetry on for both runs.
    EXPECT_NE(doc.find("\"telemetry\""), std::string::npos);
    std::remove(path.c_str());
}
